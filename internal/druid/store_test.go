package druid

import (
	"reflect"
	"testing"

	"prestolite/internal/types"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	tab, err := s.CreateTable("events", []Column{
		{Name: "country", Type: types.Varchar},
		{Name: "device", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
		{Name: "revenue", Type: types.Double},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Ingest([][]any{
		{"us", "ios", int64(10), 1.5},
		{"us", "android", int64(20), 2.5},
		{"de", "ios", int64(5), 0.5},
		{nil, "web", int64(1), 0.1},
	}); err != nil {
		t.Fatal(err)
	}
	// Second segment (real-time ingestion appends segments).
	if err := tab.Ingest([][]any{
		{"us", "ios", int64(7), 0.9},
		{"jp", "android", int64(3), 0.3},
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSelectWithInvertedIndex(t *testing.T) {
	s := testStore(t)
	res, err := s.Execute(Query{
		Table:   "events",
		Filters: []Filter{{Column: "country", Op: "eq", Values: []any{"us"}}},
		Columns: []string{"device", "clicks"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "ios" || res.Rows[0][1] != int64(10) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestFilterOps(t *testing.T) {
	s := testStore(t)
	cases := []struct {
		f    Filter
		want int
	}{
		{Filter{Column: "clicks", Op: "gt", Values: []any{int64(5)}}, 3},
		{Filter{Column: "clicks", Op: "lte", Values: []any{int64(5)}}, 3},
		{Filter{Column: "country", Op: "in", Values: []any{"de", "jp"}}, 2},
		{Filter{Column: "country", Op: "neq", Values: []any{"us"}}, 2}, // null country never matches
		{Filter{Column: "revenue", Op: "gte", Values: []any{1.5}}, 2},
	}
	for _, c := range cases {
		res, err := s.Execute(Query{Table: "events", Filters: []Filter{c.f}, Columns: []string{"clicks"}})
		if err != nil {
			t.Fatalf("%+v: %v", c.f, err)
		}
		if len(res.Rows) != c.want {
			t.Errorf("filter %+v: got %d rows, want %d", c.f, len(res.Rows), c.want)
		}
	}
}

func TestGroupByAggregation(t *testing.T) {
	s := testStore(t)
	res, err := s.Execute(Query{
		Table:        "events",
		GroupBy:      []string{"country"},
		Aggregations: []Aggregation{{Func: "sum", Column: "clicks", Name: "total"}, {Func: "count", Name: "n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[any][]any{}
	for _, r := range res.Rows {
		got[r[0]] = r[1:]
	}
	if !reflect.DeepEqual(got["us"], []any{int64(37), int64(3)}) {
		t.Errorf("us = %v", got["us"])
	}
	if !reflect.DeepEqual(got["de"], []any{int64(5), int64(1)}) {
		t.Errorf("de = %v", got["de"])
	}
	if !reflect.DeepEqual(got[nil], []any{int64(1), int64(1)}) {
		t.Errorf("null group = %v", got[nil])
	}
}

func TestGlobalAggregationAndLimit(t *testing.T) {
	s := testStore(t)
	res, err := s.Execute(Query{
		Table:        "events",
		Filters:      []Filter{{Column: "device", Op: "eq", Values: []any{"ios"}}},
		Aggregations: []Aggregation{{Func: "sum", Column: "revenue", Name: "rev"}, {Func: "avg", Column: "clicks", Name: "ac"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	rev := res.Rows[0][0].(float64)
	if rev < 2.89 || rev > 2.91 {
		t.Errorf("rev = %v", rev)
	}

	limited, err := s.Execute(Query{Table: "events", Columns: []string{"device"}, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Rows) != 2 {
		t.Errorf("limit rows = %v", limited.Rows)
	}
}

func TestStoreErrors(t *testing.T) {
	s := testStore(t)
	if _, err := s.Execute(Query{Table: "missing"}); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := s.Execute(Query{Table: "events", Filters: []Filter{{Column: "nope", Op: "eq", Values: []any{int64(1)}}}}); err == nil {
		t.Error("bad filter column accepted")
	}
	if _, err := s.Execute(Query{Table: "events", Columns: []string{"nope"}}); err == nil {
		t.Error("bad select column accepted")
	}
	if _, err := s.Execute(Query{Table: "events", Aggregations: []Aggregation{{Func: "sum", Column: "nope"}}}); err == nil {
		t.Error("bad agg column accepted")
	}
	if _, err := s.CreateTable("events", nil); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := s.CreateTable("bad", []Column{{Name: "x", Type: types.NewArray(types.Bigint)}}); err == nil {
		t.Error("array column accepted")
	}
}

func TestHTTPServerRoundTrip(t *testing.T) {
	s := testStore(t)
	srv := NewServer(s)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewHTTPClient(srv.Addr())
	tables, err := client.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0] != "events" {
		t.Fatalf("tables = %v", tables)
	}
	cols, err := client.Schema("events")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 4 || cols[0].Name != "country" || cols[2].Type != types.Bigint {
		t.Fatalf("schema = %v", cols)
	}
	res, err := client.Execute(Query{
		Table:        "events",
		Filters:      []Filter{{Column: "country", Op: "eq", Values: []any{"us"}}},
		GroupBy:      []string{"device"},
		Aggregations: []Aggregation{{Func: "sum", Column: "clicks", Name: "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := client.Schema("missing"); err == nil {
		t.Error("missing table schema accepted")
	}
	if _, err := client.Execute(Query{Table: "missing"}); err == nil {
		t.Error("missing table query accepted")
	}
}

func TestBitmap(t *testing.T) {
	b := NewBitmap(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(64) || b.Get(63) {
		t.Error("get/set wrong")
	}
	if b.Count() != 3 {
		t.Errorf("count = %d", b.Count())
	}
	o := NewBitmap(130)
	o.Set(64)
	o.Set(100)
	c := b.Clone()
	c.And(o)
	if c.Count() != 1 || !c.Get(64) {
		t.Error("and wrong")
	}
	c.Or(b)
	if c.Count() != 3 {
		t.Error("or wrong")
	}
	all := NewBitmap(130)
	all.SetAll()
	if all.Count() != 130 {
		t.Errorf("setall count = %d", all.Count())
	}
	var seen []int
	b.ForEach(func(i int) bool { seen = append(seen, i); return true })
	if !reflect.DeepEqual(seen, []int{0, 64, 129}) {
		t.Errorf("foreach = %v", seen)
	}
	var first []int
	b.ForEach(func(i int) bool { first = append(first, i); return false })
	if len(first) != 1 {
		t.Errorf("early stop = %v", first)
	}
}
