// Package druid implements the real-time OLAP substrate of §IV.B: an
// in-memory columnar store with dictionary encoding, bitmap inverted
// indexes and pre-aggregation-friendly segments, plus a native query engine
// answering filtered/grouped/limited aggregation queries at interactive
// latency. It stands in for Apache Druid / Apache Pinot in the Fig 16
// experiment: the interesting property — native aggregation over indexed
// segments is much faster than streaming raw rows out — is preserved.
package druid

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"prestolite/internal/expr"
	"prestolite/internal/fault"
	"prestolite/internal/types"
)

// Column is a typed druid column. Strings are dictionary-encoded and
// inverted-indexed; numerics are stored flat.
type Column struct {
	Name string
	Type *types.Type // Bigint, Double or Varchar
}

// Table holds sealed immutable segments plus at most one open mutable
// segment accepting real-time appends (see lifecycle.go).
type Table struct {
	Name    string
	Columns []Column

	store *Store // back-pointer for lifecycle metrics; nil in tests

	mu       sync.RWMutex
	cfg      SegmentConfig
	segments []*segment // sealed (and compacted) segments
	open     *openSegment
	srcNext  map[string]int64 // per-source delivered watermark (AppendFrom)
	// version counts every visible-data mutation (append, watermark
	// advance, seal, compaction) — the snapshot version result-cache keys
	// are stamped with (§VII).
	version int64
	// pending accumulates lifecycle events recorded under the lock;
	// public entry points drain and publish them after unlocking so
	// listeners never run inside the table lock.
	pending []TableEvent
}

// TableEvent describes one lifecycle transition, delivered to Store
// OnChange listeners (hybrid-table cache invalidation subscribes here).
type TableEvent struct {
	Table string
	Kind  EventKind
	// Version is the table's snapshot version after the transition.
	Version int64
}

// EventKind enumerates lifecycle transitions.
type EventKind int

const (
	// EventAppend fires when rows land (including watermark-advancing
	// AppendFrom deliveries).
	EventAppend EventKind = iota
	// EventSeal fires when the open segment seals into an immutable one.
	EventSeal
	// EventCompact fires when small sealed segments merge.
	EventCompact
)

// segment is one horizontal shard with columnar storage. Sealed segments
// are immutable; frozen views of the open segment share its buffers but
// carry no inverted indexes (index == nil).
type segment struct {
	n         int
	compacted bool
	longs     map[string][]int64
	doubles   map[string][]float64
	strs      map[string]*strColumn
	nulls     map[string][]bool
}

// strColumn is dictionary-encoded with a per-value inverted index.
type strColumn struct {
	dict  []string
	ids   []int32 // -1 = null
	index map[string]*Bitmap
}

// Store is the embedded druid instance.
type Store struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	metrics atomic.Pointer[storeMetrics]
	clock   fault.Clock

	listenerMu sync.RWMutex
	listeners  []func(TableEvent)
}

// OnChange registers a listener invoked after every table lifecycle
// transition (append, seal, compact). Listeners run synchronously, outside
// all store and table locks, in registration order.
func (s *Store) OnChange(fn func(TableEvent)) {
	s.listenerMu.Lock()
	defer s.listenerMu.Unlock()
	s.listeners = append(s.listeners, fn)
}

// publish delivers events to listeners. Callers must hold no locks.
func (s *Store) publish(events []TableEvent) {
	if len(events) == 0 {
		return
	}
	s.listenerMu.RLock()
	fns := s.listeners
	s.listenerMu.RUnlock()
	for _, ev := range events {
		for _, fn := range fns {
			fn(ev)
		}
	}
}

// TableVersion returns the table's snapshot version: bumped on every
// append, watermark advance, seal and compaction. ok is false when the
// table does not exist.
func (s *Store) TableVersion(name string) (int64, bool) {
	s.mu.RLock()
	t, ok := s.tables[name]
	s.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return t.Version(), true
}

// Version returns the table's snapshot version.
func (t *Table) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// NewStore creates an empty store on the real clock.
func NewStore() *Store {
	return &Store{tables: map[string]*Table{}, clock: fault.RealClock{}}
}

// SetClock injects the time source Ingest stamps appends with — and so the
// base of every SealAge decision. Chaos and replay harnesses point it at
// the same fault.Clock the rest of the cluster runs on.
func (s *Store) SetClock(c fault.Clock) {
	if c != nil {
		s.clock = c
	}
}

// clockOrReal is the table-level accessor: tables created without a store
// back-pointer (unit tests) fall back to real time.
func (t *Table) clockOrReal() fault.Clock {
	if t.store != nil && t.store.clock != nil {
		return t.store.clock
	}
	return fault.RealClock{}
}

// CreateTable registers a table.
func (s *Store) CreateTable(name string, cols []Column) (*Table, error) {
	for _, c := range cols {
		switch c.Type.Kind {
		case types.KindBigint, types.KindDouble, types.KindVarchar:
		default:
			return nil, fmt.Errorf("druid: unsupported column type %s for %s", c.Type, c.Name)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[name]; exists {
		return nil, fmt.Errorf("druid: table %q already exists", name)
	}
	t := &Table{Name: name, Columns: cols, store: s, cfg: DefaultSegmentConfig()}
	s.tables[name] = t
	return t, nil
}

// GetTable resolves a table.
func (s *Store) GetTable(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("druid: table %q does not exist", name)
	}
	return t, nil
}

// Tables lists table names, sorted.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Ingest appends rows through the mutable-segment lifecycle: rows land in
// the table's open segment (queryable immediately) which seals into an
// immutable indexed segment on the row-count/age thresholds, instead of the
// old one-immutable-segment-per-call behaviour that left bulk loaders with
// thousands of tiny segments.
func (t *Table) Ingest(rows [][]any) error {
	return t.Append(rows, t.clockOrReal().Now())
}

func errRowWidth(table string, ri, got, want int) error {
	return fmt.Errorf("druid: table %s row %d: %d values for %d columns", table, ri, got, want)
}

func errCellType(col string, ri int, want string, got any) error {
	return fmt.Errorf("druid: column %s row %d: want %s, got %T", col, ri, want, got)
}

// ---------------------------------------------------------------------------
// Native query engine.

// Filter is a native predicate.
type Filter struct {
	Column string
	Op     string // eq, neq, lt, lte, gt, gte, in
	Values []any
}

// Aggregation is a native aggregate.
type Aggregation struct {
	Func   string // count, sum, min, max, avg (count with empty Column = count(*))
	Column string
	Name   string
}

// Query is the native query shape: scan/select or grouped aggregation.
type Query struct {
	Table        string
	Filters      []Filter
	GroupBy      []string
	Aggregations []Aggregation
	// Columns selects raw columns when there are no aggregations.
	Columns []string
	Limit   int64 // <= 0: unlimited
}

// Result carries rows with boxed values.
type Result struct {
	Columns []string
	Types   []string
	Rows    [][]any
}

// Execute runs a native query.
func (s *Store) Execute(q Query) (*Result, error) {
	t, err := s.GetTable(q.Table)
	if err != nil {
		return nil, err
	}
	segs := t.snapshotSegments()

	colType := map[string]*types.Type{}
	for _, c := range t.Columns {
		colType[c.Name] = c.Type
	}
	for _, f := range q.Filters {
		if colType[f.Column] == nil {
			return nil, fmt.Errorf("druid: unknown filter column %q", f.Column)
		}
	}

	if len(q.Aggregations) == 0 {
		return s.executeSelect(t, segs, q, colType)
	}
	return s.executeGroupBy(t, segs, q, colType)
}

// selection computes the matching-row bitmap for a segment, using inverted
// indexes for string equality/in filters.
func (seg *segment) selection(filters []Filter, colType map[string]*types.Type) (*Bitmap, error) {
	sel := NewBitmap(seg.n)
	sel.SetAll()
	for _, f := range filters {
		fb := NewBitmap(seg.n)
		ct := colType[f.Column]
		sc := seg.strs[f.Column]
		if ct.Kind == types.KindVarchar && (f.Op == "eq" || f.Op == "in") && sc != nil && sc.index != nil {
			// Inverted index path: union the per-value bitmaps. Frozen views
			// of the open segment have no indexes yet and take the scan path.
			for _, v := range f.Values {
				str, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("druid: filter on %s: want string, got %T", f.Column, v)
				}
				if bm, exists := sc.index[str]; exists {
					fb.Or(bm)
				}
			}
		} else {
			// Scan path.
			for i := 0; i < seg.n; i++ {
				v := seg.value(f.Column, ct, i)
				if v == nil {
					continue
				}
				if matchFilter(f, v) {
					fb.Set(i)
				}
			}
		}
		sel.And(fb)
	}
	return sel, nil
}

func matchFilter(f Filter, v any) bool {
	switch f.Op {
	case "in":
		for _, w := range f.Values {
			if expr.CompareValues(v, w) == 0 {
				return true
			}
		}
		return false
	default:
		c := expr.CompareValues(v, f.Values[0])
		switch f.Op {
		case "eq":
			return c == 0
		case "neq":
			return c != 0
		case "lt":
			return c < 0
		case "lte":
			return c <= 0
		case "gt":
			return c > 0
		case "gte":
			return c >= 0
		}
	}
	return false
}

func (seg *segment) value(col string, t *types.Type, i int) any {
	if seg.nulls[col][i] {
		return nil
	}
	switch t.Kind {
	case types.KindBigint:
		return seg.longs[col][i]
	case types.KindDouble:
		return seg.doubles[col][i]
	default:
		sc := seg.strs[col]
		return sc.dict[sc.ids[i]]
	}
}

func (s *Store) executeSelect(t *Table, segs []*segment, q Query, colType map[string]*types.Type) (*Result, error) {
	cols := q.Columns
	if len(cols) == 0 {
		for _, c := range t.Columns {
			cols = append(cols, c.Name)
		}
	}
	res := &Result{Columns: cols}
	for _, c := range cols {
		ct := colType[c]
		if ct == nil {
			return nil, fmt.Errorf("druid: unknown column %q", c)
		}
		res.Types = append(res.Types, ct.String())
	}
	for _, seg := range segs {
		sel, err := seg.selection(q.Filters, colType)
		if err != nil {
			return nil, err
		}
		done := false
		sel.ForEach(func(i int) bool {
			row := make([]any, len(cols))
			for ci, c := range cols {
				row[ci] = seg.value(c, colType[c], i)
			}
			res.Rows = append(res.Rows, row)
			if q.Limit > 0 && int64(len(res.Rows)) >= q.Limit {
				done = true
				return false
			}
			return true
		})
		if done {
			break
		}
	}
	return res, nil
}

func (s *Store) executeGroupBy(t *Table, segs []*segment, q Query, colType map[string]*types.Type) (*Result, error) {
	type groupAgg struct {
		keys   []any
		states []expr.AggState
	}
	fns := make([]*expr.AggregateFunction, len(q.Aggregations))
	argTypes := make([][]*types.Type, len(q.Aggregations))
	for i, a := range q.Aggregations {
		var at []*types.Type
		if a.Column != "" {
			ct := colType[a.Column]
			if ct == nil {
				return nil, fmt.Errorf("druid: unknown aggregation column %q", a.Column)
			}
			at = []*types.Type{ct}
		}
		fn, err := expr.ResolveAggregate(a.Func, at)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
		argTypes[i] = at
	}
	for _, g := range q.GroupBy {
		if colType[g] == nil {
			return nil, fmt.Errorf("druid: unknown group column %q", g)
		}
	}
	groups := map[string]*groupAgg{}
	var order []string
	for _, seg := range segs {
		sel, err := seg.selection(q.Filters, colType)
		if err != nil {
			return nil, err
		}
		sel.ForEach(func(i int) bool {
			keys := make([]any, len(q.GroupBy))
			var kb strings.Builder
			for ki, g := range q.GroupBy {
				keys[ki] = seg.value(g, colType[g], i)
				fmt.Fprintf(&kb, "%T\x00%v\x01", keys[ki], keys[ki])
			}
			k := kb.String()
			ga, ok := groups[k]
			if !ok {
				ga = &groupAgg{keys: keys, states: make([]expr.AggState, len(fns))}
				for fi, fn := range fns {
					ga.states[fi] = fn.NewState(argTypes[fi])
				}
				groups[k] = ga
				order = append(order, k)
			}
			for fi, a := range q.Aggregations {
				if a.Column == "" {
					ga.states[fi].Add(nil)
					continue
				}
				ga.states[fi].Add([]any{seg.value(a.Column, colType[a.Column], i)})
			}
			return true
		})
	}
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		ga := &groupAgg{states: make([]expr.AggState, len(fns))}
		for fi, fn := range fns {
			ga.states[fi] = fn.NewState(argTypes[fi])
		}
		groups[""] = ga
		order = append(order, "")
	}
	res := &Result{}
	for _, g := range q.GroupBy {
		res.Columns = append(res.Columns, g)
		res.Types = append(res.Types, colType[g].String())
	}
	for i, a := range q.Aggregations {
		name := a.Name
		if name == "" {
			name = a.Func
		}
		res.Columns = append(res.Columns, name)
		res.Types = append(res.Types, fns[i].FinalType(argTypes[i]).String())
	}
	// Deterministic output: sort groups by key string.
	sort.Strings(order)
	for _, k := range order {
		ga := groups[k]
		row := make([]any, 0, len(res.Columns))
		row = append(row, ga.keys...)
		for _, st := range ga.states {
			row = append(row, st.Final())
		}
		res.Rows = append(res.Rows, row)
		if q.Limit > 0 && int64(len(res.Rows)) >= q.Limit {
			break
		}
	}
	return res, nil
}
