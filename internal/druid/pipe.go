package druid

import (
	"bytes"
	"encoding/gob"
	"io"
	"net/http"
)

// pipeEncode gob-encodes v into an in-memory reader for an HTTP body.
func pipeEncode(v any) io.Reader {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(v) // in-memory write; type errors surface when the server decodes
	return &buf
}

func readError(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) // best-effort error detail
	return string(bytes.TrimSpace(data))
}
