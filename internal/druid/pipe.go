package druid

import (
	"bytes"
	"encoding/gob"
	"io"
	"net/http"
)

// pipeEncode gob-encodes v into an in-memory reader for an HTTP body.
func pipeEncode(v any) io.Reader {
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(v)
	return &buf
}

func readError(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return string(bytes.TrimSpace(data))
}
