package druid

import "math/bits"

// Bitmap is a fixed-capacity bitset used for the inverted indexes ("in
// memory bitmap indices, inverted indices ... enabling sub-second query
// latency", §IV.B).
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap creates an empty bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Set marks row i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether row i is set.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Len returns the row capacity.
func (b *Bitmap) Len() int { return b.n }

// Count returns the number of set rows.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects in place.
func (b *Bitmap) And(o *Bitmap) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions in place.
func (b *Bitmap) Or(o *Bitmap) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// SetAll marks every row.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if rem := b.n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << uint(rem)) - 1
	}
}

// Clone copies the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w, n: b.n}
}

// ForEach calls fn for every set row in ascending order; stops early if fn
// returns false.
func (b *Bitmap) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi<<6 + bit) {
				return
			}
			w &= w - 1
		}
	}
}
