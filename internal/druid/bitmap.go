package druid

import "math/bits"

// Bitmap is a growable bitset used for the inverted indexes ("in
// memory bitmap indices, inverted indices ... enabling sub-second query
// latency", §IV.B).
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap creates an empty bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// grow extends the row capacity to at least n.
func (b *Bitmap) grow(n int) {
	if n <= b.n {
		return
	}
	if need := (n + 63) / 64; need > len(b.words) {
		w := make([]uint64, need)
		copy(w, b.words)
		b.words = w
	}
	b.n = n
}

// Set marks row i, growing the bitmap if i is beyond its capacity (mutable
// segments append rows after their index bitmaps were created).
func (b *Bitmap) Set(i int) {
	if i >= b.n {
		b.grow(i + 1)
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Get reports whether row i is set; rows beyond the capacity are unset.
func (b *Bitmap) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Len returns the row capacity.
func (b *Bitmap) Len() int { return b.n }

// Count returns the number of set rows.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects in place. Rows beyond the other bitmap's capacity are
// treated as unset there, so they clear here.
func (b *Bitmap) And(o *Bitmap) {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] &= o.words[i]
		} else {
			b.words[i] = 0
		}
	}
}

// Or unions in place, growing to the other bitmap's capacity if larger.
func (b *Bitmap) Or(o *Bitmap) {
	if o.n > b.n {
		b.grow(o.n)
	}
	for i := range o.words {
		b.words[i] |= o.words[i]
	}
}

// SetAll marks every row.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if rem := b.n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << uint(rem)) - 1
	}
}

// Clear unsets every row, keeping the capacity.
func (b *Bitmap) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone copies the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w, n: b.n}
}

// ForEach calls fn for every set row in ascending order; stops early if fn
// returns false.
func (b *Bitmap) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi<<6 + bit) {
				return
			}
			w &= w - 1
		}
	}
}
