package druid

import (
	"sync"
	"testing"
	"time"

	"prestolite/internal/fault"
	"prestolite/internal/obs"
	"prestolite/internal/types"
)

func lifecycleTable(t *testing.T, cfg SegmentConfig) *Table {
	t.Helper()
	s := NewStore()
	tab, err := s.CreateTable("events", []Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetSegmentConfig(cfg)
	return tab
}

func eventRow(i int) []any {
	return []any{int64(i), []string{"us", "de", "jp"}[i%3], int64(i % 7)}
}

// Regression: many small Ingest calls must not create one segment per call.
func TestIngestSmallBatchesSegmentCount(t *testing.T) {
	tab := lifecycleTable(t, SegmentConfig{SealRows: 1000})
	for i := 0; i < 500; i++ {
		if err := tab.Ingest([][]any{eventRow(i), eventRow(i + 1000)}); err != nil {
			t.Fatal(err)
		}
	}
	// 1000 rows in 500 calls: exactly one seal, nothing open.
	st := tab.Stats()
	if got := tab.SegmentCount(); got != 1 {
		t.Fatalf("500 small ingest calls produced %d segments (%+v), want 1", got, st)
	}
	if st.Rows != 1000 {
		t.Fatalf("rows = %d, want 1000", st.Rows)
	}
}

func TestSealOnRowThresholdMidBatch(t *testing.T) {
	tab := lifecycleTable(t, SegmentConfig{SealRows: 100})
	rows := make([][]any, 250)
	for i := range rows {
		rows[i] = eventRow(i)
	}
	if err := tab.Ingest(rows); err != nil {
		t.Fatal(err)
	}
	st := tab.Stats()
	if st.Sealed != 2 || st.Open != 1 || st.OpenRows != 50 {
		t.Fatalf("250 rows at SealRows=100: %+v, want 2 sealed + 50 open", st)
	}
}

func TestSealOnAge(t *testing.T) {
	tab := lifecycleTable(t, SegmentConfig{SealRows: 1000, SealAge: time.Second})
	base := time.Unix(1700000000, 0)
	if err := tab.Append([][]any{eventRow(0)}, base); err != nil {
		t.Fatal(err)
	}
	tab.Maintain(base.Add(500 * time.Millisecond))
	if st := tab.Stats(); st.Open != 1 || st.Sealed != 0 {
		t.Fatalf("maintain before SealAge sealed early: %+v", st)
	}
	tab.Maintain(base.Add(2 * time.Second))
	if st := tab.Stats(); st.Open != 0 || st.Sealed != 1 {
		t.Fatalf("maintain after SealAge did not seal: %+v", st)
	}
}

// TestSealOnAgeInjectedClock proves Ingest stamps the open segment from the
// store's injected clock, not the wall clock: the manual clock starts in
// 1970, so if Ingest read real time the segment would be "born in the
// future" and the age-based Maintain below could never seal it.
func TestSealOnAgeInjectedClock(t *testing.T) {
	s := NewStore()
	clk := fault.NewManualClock(time.Unix(0, 0))
	s.SetClock(clk)
	tab, err := s.CreateTable("events", []Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetSegmentConfig(SegmentConfig{SealRows: 1000, SealAge: time.Second})
	if err := tab.Ingest([][]any{eventRow(0)}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(500 * time.Millisecond)
	tab.Maintain(clk.Now())
	if st := tab.Stats(); st.Open != 1 || st.Sealed != 0 {
		t.Fatalf("maintain before SealAge sealed early: %+v", st)
	}
	clk.Advance(2 * time.Second)
	tab.Maintain(clk.Now())
	if st := tab.Stats(); st.Open != 0 || st.Sealed != 1 {
		t.Fatalf("maintain after SealAge did not seal on the injected clock: %+v", st)
	}
}

func TestCompaction(t *testing.T) {
	tab := lifecycleTable(t, SegmentConfig{SealRows: 10, CompactBelowRows: 100, CompactBatch: 4})
	// Six sealed segments of 10 rows each.
	for s := 0; s < 6; s++ {
		rows := make([][]any, 10)
		for i := range rows {
			rows[i] = eventRow(s*10 + i)
		}
		if err := tab.Ingest(rows); err != nil {
			t.Fatal(err)
		}
	}
	if st := tab.Stats(); st.Sealed != 6 {
		t.Fatalf("setup: %+v", st)
	}
	now := time.Unix(1700000000, 0)
	tab.Maintain(now) // merges 4 → one compacted + 2 sealed
	st := tab.Stats()
	if st.Sealed != 2 || st.Compacted != 1 || st.Rows != 60 {
		t.Fatalf("first compaction: %+v, want 2 sealed + 1 compacted, 60 rows", st)
	}
	tab.Maintain(now) // remaining 2 sealed + the 40-row compacted all below 100 → one segment
	st = tab.Stats()
	if st.Compacted != 1 || st.Sealed != 0 || st.Rows != 60 {
		t.Fatalf("second compaction: %+v, want 1 compacted, 60 rows", st)
	}
	// A single small segment is never "compacted" alone.
	tab.Maintain(now)
	if got := tab.SegmentCount(); got != 1 {
		t.Fatalf("compaction of a lone segment changed count to %d", got)
	}

	// Queries over the compacted segment still use the rebuilt inverted index
	// and return every row.
	res, err := tab.store.Execute(Query{
		Table:        "events",
		Filters:      []Filter{{Column: "country", Op: "eq", Values: []any{"us"}}},
		Aggregations: []Aggregation{{Func: "count", Name: "n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0]; got != int64(20) {
		t.Fatalf("count(country='us') over compacted = %v, want 20", got)
	}
}

// Rows in the open mutable segment are visible to queries immediately,
// including string filters (scan path: the frozen view has no indexes).
func TestOpenSegmentVisibleToQueries(t *testing.T) {
	tab := lifecycleTable(t, SegmentConfig{SealRows: 1000000})
	for i := 0; i < 30; i++ {
		if err := tab.Ingest([][]any{eventRow(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := tab.Stats(); st.Open != 1 || st.Sealed != 0 {
		t.Fatalf("expected all rows open: %+v", st)
	}
	res, err := tab.store.Execute(Query{
		Table:        "events",
		Filters:      []Filter{{Column: "country", Op: "eq", Values: []any{"de"}}},
		Aggregations: []Aggregation{{Func: "sum", Column: "clicks", Name: "s"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 0; i < 30; i++ {
		if i%3 == 1 {
			want += int64(i % 7)
		}
	}
	if got := res.Rows[0][0]; got != want {
		t.Fatalf("sum over open segment = %v, want %d", got, want)
	}
}

func TestAppendValidation(t *testing.T) {
	tab := lifecycleTable(t, SegmentConfig{})
	if err := tab.Ingest([][]any{{int64(1), "us"}}); err == nil {
		t.Error("short row accepted")
	}
	if err := tab.Ingest([][]any{{int64(1), "us", "oops"}}); err == nil {
		t.Error("wrong cell type accepted")
	}
	// A rejected batch must not leave partial rows behind.
	if st := tab.Stats(); st.Rows != 0 {
		t.Errorf("rejected batches left %d rows", st.Rows)
	}
	// Nulls are fine.
	if err := tab.Ingest([][]any{{int64(1), nil, nil}}); err != nil {
		t.Errorf("null row rejected: %v", err)
	}
}

// Concurrent appends and queries: every query sees a consistent prefix and
// never errors. Run with -race (make test-race) to prove the frozen-view
// sharing is sound.
func TestConcurrentAppendAndQuery(t *testing.T) {
	tab := lifecycleTable(t, SegmentConfig{SealRows: 64, CompactBelowRows: 200, CompactBatch: 4})
	const total = 3000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		now := time.Unix(1700000000, 0)
		for i := 0; i < total; i++ {
			if err := tab.Append([][]any{eventRow(i)}, now); err != nil {
				t.Error(err)
				return
			}
			if i%500 == 0 {
				tab.Maintain(now)
			}
		}
	}()
	prev := int64(0)
	go func() {
		defer wg.Done()
		for q := 0; q < 200; q++ {
			res, err := tab.store.Execute(Query{
				Table:        "events",
				Aggregations: []Aggregation{{Func: "count", Name: "n"}},
			})
			if err != nil {
				t.Error(err)
				return
			}
			n := res.Rows[0][0].(int64)
			if n < prev || n > total {
				t.Errorf("query %d: count %d (prev %d)", q, n, prev)
				return
			}
			prev = n
		}
	}()
	wg.Wait()
	tab.Maintain(time.Unix(1700001000, 0))
	res, err := tab.store.Execute(Query{Table: "events", Aggregations: []Aggregation{{Func: "count", Name: "n"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0]; got != int64(total) {
		t.Fatalf("final count = %v, want %d", got, total)
	}
}

func TestStoreObsMetrics(t *testing.T) {
	s := NewStore()
	tab, err := s.CreateTable("m", []Column{{Name: "v", Type: types.Bigint}})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetSegmentConfig(SegmentConfig{SealRows: 10, CompactBelowRows: 100, CompactBatch: 8})
	reg := obs.NewRegistry()
	s.RegisterObsMetrics(reg)
	base := time.Unix(1700000000, 0)
	rows := make([][]any, 25)
	for i := range rows {
		rows[i] = []any{int64(i)}
	}
	if err := tab.Append(rows, base); err != nil {
		t.Fatal(err)
	}
	// 25 rows at SealRows=10: two row-count seals plus 5 open rows.
	snap := reg.Snapshot()
	if got := snap.Counters["druid_segments_sealed"]; got != 2 {
		t.Errorf("druid_segments_sealed = %d, want 2", got)
	}
	if got := snap.Gauges["druid_open_segments"]; got != 1 {
		t.Errorf("druid_open_segments = %v, want 1", got)
	}
	if got := snap.Gauges["druid_sealed_segments"]; got != 2 {
		t.Errorf("druid_sealed_segments = %v, want 2", got)
	}
	// Maintenance an hour later: age-seals the tail, then merges all three
	// small segments into one compacted segment.
	tab.Maintain(base.Add(time.Hour))
	snap = reg.Snapshot()
	if got := snap.Counters["druid_segments_sealed"]; got != 3 {
		t.Errorf("after maintain: druid_segments_sealed = %d, want 3", got)
	}
	if got := snap.Counters["druid_compactions"]; got != 1 {
		t.Errorf("druid_compactions = %d, want 1", got)
	}
	if got := snap.Counters["druid_segments_compacted"]; got != 3 {
		t.Errorf("druid_segments_compacted = %d, want 3", got)
	}
	if got := snap.Gauges["druid_compacted_segments"]; got != 1 {
		t.Errorf("druid_compacted_segments gauge = %v, want 1", got)
	}
	if got := snap.Gauges["druid_open_segments"]; got != 0 {
		t.Errorf("druid_open_segments after maintain = %v, want 0", got)
	}
}
