package druid

import (
	"reflect"
	"testing"
)

// Edge cases not reachable through store_test.go's query paths.

func TestBitmapEmptyAndOr(t *testing.T) {
	empty := NewBitmap(0)
	if empty.Len() != 0 || empty.Count() != 0 {
		t.Fatalf("empty bitmap: len=%d count=%d", empty.Len(), empty.Count())
	}
	empty.ForEach(func(int) bool { t.Fatal("ForEach visited a row of an empty bitmap"); return false })

	// AND with an empty bitmap clears everything (rows beyond the other's
	// capacity are unset there).
	b := NewBitmap(130)
	b.Set(0)
	b.Set(129)
	b.And(NewBitmap(0))
	if b.Count() != 0 {
		t.Errorf("AND with empty: count = %d, want 0", b.Count())
	}
	if b.Len() != 130 {
		t.Errorf("AND with empty changed capacity: %d", b.Len())
	}

	// OR with an empty bitmap is a no-op; OR into an empty bitmap grows it.
	c := NewBitmap(130)
	c.Set(64)
	c.Or(NewBitmap(0))
	if c.Count() != 1 || !c.Get(64) {
		t.Errorf("OR with empty changed bits: count=%d", c.Count())
	}
	e := NewBitmap(0)
	e.Or(c)
	if e.Len() != 130 || e.Count() != 1 || !e.Get(64) {
		t.Errorf("OR into empty: len=%d count=%d", e.Len(), e.Count())
	}
}

func TestBitmapMismatchedLengths(t *testing.T) {
	long := NewBitmap(200)
	long.Set(10)
	long.Set(150)
	short := NewBitmap(64)
	short.Set(10)
	short.Set(63)

	// AND against a shorter bitmap: bits beyond its capacity clear.
	a := long.Clone()
	a.And(short)
	if a.Count() != 1 || !a.Get(10) || a.Get(150) {
		t.Errorf("AND short: count=%d get(10)=%v get(150)=%v", a.Count(), a.Get(10), a.Get(150))
	}

	// OR against a longer bitmap grows the receiver.
	o := short.Clone()
	o.Or(long)
	if o.Len() != 200 {
		t.Errorf("OR long: len = %d, want 200", o.Len())
	}
	if o.Count() != 3 || !o.Get(150) || !o.Get(63) {
		t.Errorf("OR long: count=%d", o.Count())
	}
}

func TestBitmapOutOfRangeSetAndGet(t *testing.T) {
	b := NewBitmap(10)
	// Set beyond the capacity grows instead of panicking (mutable segments
	// append rows after the per-value bitmaps were created).
	b.Set(100)
	if b.Len() != 101 {
		t.Errorf("len after out-of-range set = %d, want 101", b.Len())
	}
	if !b.Get(100) {
		t.Error("out-of-range set bit not readable")
	}
	// Out-of-range (and negative) Get is simply false.
	if b.Get(5000) || b.Get(-1) {
		t.Error("Get beyond capacity reported a set bit")
	}
	// SetAll respects the grown capacity.
	b.SetAll()
	if b.Count() != 101 {
		t.Errorf("SetAll after grow: count = %d, want 101", b.Count())
	}
}

func TestBitmapIterationAfterClear(t *testing.T) {
	b := NewBitmap(130)
	b.Set(1)
	b.Set(64)
	b.Set(129)
	b.Clear()
	if b.Count() != 0 {
		t.Fatalf("count after clear = %d", b.Count())
	}
	b.ForEach(func(i int) bool { t.Errorf("ForEach visited row %d after Clear", i); return true })
	if b.Len() != 130 {
		t.Errorf("Clear changed capacity: %d", b.Len())
	}
	// The bitmap stays usable after Clear.
	b.Set(7)
	b.Set(128)
	var seen []int
	b.ForEach(func(i int) bool { seen = append(seen, i); return true })
	if !reflect.DeepEqual(seen, []int{7, 128}) {
		t.Errorf("foreach after clear+set = %v", seen)
	}
}
