package druid

import (
	"encoding/gob"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"prestolite/internal/fault"
	"prestolite/internal/types"
)

// Server exposes the store over HTTP (the broker endpoint a Presto-Druid
// connector talks to). The wire format is gob: this is our own substrate,
// and gob preserves int64/float64 boxing exactly.
type Server struct {
	store *Store
	http  *http.Server
	ln    net.Listener
	addr  string
	once  sync.Once
}

func init() {
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
}

// NewServer wraps a store.
func NewServer(store *Store) *Server {
	return &Server{store: store}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port).
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("druid: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/druid/v2/query", s.handleQuery)
	mux.HandleFunc("/druid/v2/tables", s.handleTables)
	mux.HandleFunc("/druid/v2/schema", s.handleSchema)
	s.http = &http.Server{Handler: mux}
	go s.http.Serve(ln)
	return nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.addr }

// Close shuts the server down.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		if s.http != nil {
			err = s.http.Close()
		}
	})
	return err
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q Query
	if err := gob.NewDecoder(r.Body).Decode(&q); err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.store.Execute(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-gob")
	_ = gob.NewEncoder(w).Encode(res) // client went away mid-response; nothing to send it
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	_ = gob.NewEncoder(w).Encode(s.store.Tables()) // client went away mid-response; nothing to send it
}

// SchemaResponse describes one table.
type SchemaResponse struct {
	Columns []string
	Types   []string
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("table")
	t, err := s.store.GetTable(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	resp := SchemaResponse{}
	for _, c := range t.Columns {
		resp.Columns = append(resp.Columns, c.Name)
		resp.Types = append(resp.Types, c.Type.String())
	}
	_ = gob.NewEncoder(w).Encode(resp) // client went away mid-response; nothing to send it
}

// ---------------------------------------------------------------------------

// Client talks to a druid server; it is what the connector embeds.
type Client interface {
	Execute(q Query) (*Result, error)
	Tables() ([]string, error)
	Schema(table string) ([]Column, error)
}

// HTTPClient is a Client over the broker HTTP API.
type HTTPClient struct {
	BaseURL string
	HTTP    *http.Client
}

// NewHTTPClient targets a server address ("host:port").
func NewHTTPClient(addr string) *HTTPClient {
	return &HTTPClient{BaseURL: "http://" + addr, HTTP: http.DefaultClient}
}

// Execute implements Client.
func (c *HTTPClient) Execute(q Query) (*Result, error) {
	resp, err := c.HTTP.Post(c.BaseURL+"/druid/v2/query", "application/x-gob", pipeEncode(q))
	if err != nil {
		return nil, fmt.Errorf("druid: query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("druid: query failed: %s", readError(resp))
	}
	var res Result
	if err := gob.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("druid: decode result: %w", err)
	}
	return &res, nil
}

// Tables implements Client.
func (c *HTTPClient) Tables() ([]string, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/druid/v2/tables")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []string
	if err := gob.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Schema implements Client.
func (c *HTTPClient) Schema(table string) ([]Column, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/druid/v2/schema?table=" + table)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("druid: schema: %s", readError(resp))
	}
	var sr SchemaResponse
	if err := gob.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	out := make([]Column, len(sr.Columns))
	for i := range sr.Columns {
		t, err := types.Parse(sr.Types[i])
		if err != nil {
			return nil, err
		}
		out[i] = Column{Name: sr.Columns[i], Type: t}
	}
	return out, nil
}

// Versioner is an optional Client capability: clients with access to the
// store's snapshot versions expose them so the connector can implement
// connector.SnapshotVersioner. HTTPClient deliberately does not implement
// it — a remote broker has no version endpoint, so queries through it are
// simply never result-cached.
type Versioner interface {
	TableVersion(table string) (int64, bool)
}

// LatencyClient wraps a Client, charging a fixed round-trip latency per
// request. Benchmarks use it for both the native and the connector path so
// comparisons include the broker RTT every production client pays.
type LatencyClient struct {
	Inner   Client
	Latency time.Duration
	// Clock charges the latency; nil means real time, which is what the
	// benchmarks measuring broker RTT want.
	Clock fault.Clock
}

func (c *LatencyClient) sleep() {
	if c.Clock != nil {
		c.Clock.Sleep(c.Latency)
		return
	}
	//lint:ignore clockdet the simulated broker RTT is the benchmark's measured subject; callers that replay under CHAOS_SEED inject a Clock instead
	time.Sleep(c.Latency)
}

// Execute implements Client.
func (c *LatencyClient) Execute(q Query) (*Result, error) {
	c.sleep()
	return c.Inner.Execute(q)
}

// Tables implements Client.
func (c *LatencyClient) Tables() ([]string, error) {
	c.sleep()
	return c.Inner.Tables()
}

// Schema implements Client.
func (c *LatencyClient) Schema(table string) ([]Column, error) {
	c.sleep()
	return c.Inner.Schema(table)
}

// TableVersion implements Versioner by delegation when the inner client
// supports it. Version probes charge no latency: the coordinator checks
// them on the cache fast path, where a simulated RTT would erase the very
// win being measured.
func (c *LatencyClient) TableVersion(table string) (int64, bool) {
	if v, ok := c.Inner.(Versioner); ok {
		return v.TableVersion(table)
	}
	return 0, false
}

// EmbeddedClient serves queries from an in-process store (used when the
// connector and store share a process, e.g. benchmarks).
type EmbeddedClient struct {
	Store *Store
}

// Execute implements Client.
func (c *EmbeddedClient) Execute(q Query) (*Result, error) { return c.Store.Execute(q) }

// Tables implements Client.
func (c *EmbeddedClient) Tables() ([]string, error) { return c.Store.Tables(), nil }

// TableVersion implements Versioner.
func (c *EmbeddedClient) TableVersion(table string) (int64, bool) {
	return c.Store.TableVersion(table)
}

// Schema implements Client.
func (c *EmbeddedClient) Schema(table string) ([]Column, error) {
	t, err := c.Store.GetTable(table)
	if err != nil {
		return nil, err
	}
	return t.Columns, nil
}
