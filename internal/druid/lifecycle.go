// Segment lifecycle: mutable → sealed → compacted. Real-time ingestion
// appends rows into one open mutable segment per table (no inverted indexes;
// queries scan a frozen prefix view), which seals into an immutable indexed
// segment on a row-count or age threshold; small sealed segments are merged
// by background compaction. All three states are visible to concurrent
// queries: Execute snapshots the sealed list plus a frozen view of the open
// segment under the table lock.
package druid

import (
	"time"

	"prestolite/internal/obs"
	"prestolite/internal/types"
)

// SegmentConfig tunes the lifecycle thresholds.
type SegmentConfig struct {
	// SealRows seals the open segment once it holds this many rows.
	SealRows int
	// SealAge seals a non-empty open segment once its first append is this
	// old (checked by Maintain).
	SealAge time.Duration
	// CompactBelowRows marks sealed segments smaller than this as compaction
	// candidates.
	CompactBelowRows int
	// CompactBatch bounds how many candidates one compaction merges.
	CompactBatch int
}

// DefaultSegmentConfig matches the bulk-load shape the store always had
// (50k-row ingest batches become one sealed segment each) while keeping
// streaming appends out of the per-call-segment trap.
func DefaultSegmentConfig() SegmentConfig {
	return SegmentConfig{
		SealRows:         50000,
		SealAge:          10 * time.Second,
		CompactBelowRows: 5000,
		CompactBatch:     8,
	}
}

func (c SegmentConfig) withDefaults() SegmentConfig {
	d := DefaultSegmentConfig()
	if c.SealRows <= 0 {
		c.SealRows = d.SealRows
	}
	if c.SealAge <= 0 {
		c.SealAge = d.SealAge
	}
	if c.CompactBelowRows <= 0 {
		c.CompactBelowRows = d.CompactBelowRows
	}
	if c.CompactBatch <= 1 {
		c.CompactBatch = d.CompactBatch
	}
	return c
}

// SetSegmentConfig overrides the table's lifecycle thresholds (zero fields
// fall back to defaults).
func (t *Table) SetSegmentConfig(cfg SegmentConfig) {
	t.mu.Lock()
	t.cfg = cfg.withDefaults()
	t.mu.Unlock()
}

// openSegment is the table's single mutable segment: columnar buffers with
// dictionary encoding but no inverted indexes (those are built at seal time).
// Appends happen under the table write lock; queries read a frozen prefix
// view taken under the read lock, so in-flight appends past the frozen row
// count are invisible to them.
type openSegment struct {
	n           int
	firstAppend time.Time
	longs       map[string][]int64
	doubles     map[string][]float64
	strs        map[string]*openStrColumn
	nulls       map[string][]bool
}

// openStrColumn is the mutable form of strColumn: dictionary plus ids, no
// per-value bitmaps yet.
type openStrColumn struct {
	dict    []string
	dictIdx map[string]int32
	ids     []int32 // -1 = null
}

func newOpenSegment(cols []Column, now time.Time) *openSegment {
	o := &openSegment{
		firstAppend: now,
		longs:       map[string][]int64{},
		doubles:     map[string][]float64{},
		strs:        map[string]*openStrColumn{},
		nulls:       map[string][]bool{},
	}
	for _, c := range cols {
		switch c.Type.Kind {
		case types.KindVarchar:
			o.strs[c.Name] = &openStrColumn{dictIdx: map[string]int32{}}
		}
	}
	return o
}

// appendRow adds one pre-validated row. Caller holds the table write lock.
func (o *openSegment) appendRow(cols []Column, row []any) {
	for ci, col := range cols {
		null := row[ci] == nil
		o.nulls[col.Name] = append(o.nulls[col.Name], null)
		switch col.Type.Kind {
		case types.KindBigint:
			var v int64
			if !null {
				v = row[ci].(int64)
			}
			o.longs[col.Name] = append(o.longs[col.Name], v)
		case types.KindDouble:
			var v float64
			if !null {
				v = row[ci].(float64)
			}
			o.doubles[col.Name] = append(o.doubles[col.Name], v)
		case types.KindVarchar:
			sc := o.strs[col.Name]
			if null {
				sc.ids = append(sc.ids, -1)
				break
			}
			s := row[ci].(string)
			id, seen := sc.dictIdx[s]
			if !seen {
				id = int32(len(sc.dict))
				sc.dictIdx[s] = id
				sc.dict = append(sc.dict, s)
			}
			sc.ids = append(sc.ids, id)
		}
	}
	o.n++
}

// freeze returns an immutable segment view of the first n rows. The view
// shares the open buffers: appends only write past n (or reallocate), so the
// view's prefix never changes under it. The view carries no inverted indexes
// (index == nil routes string filters down the scan path).
func (o *openSegment) freeze() *segment {
	seg := &segment{
		n:       o.n,
		longs:   map[string][]int64{},
		doubles: map[string][]float64{},
		strs:    map[string]*strColumn{},
		nulls:   map[string][]bool{},
	}
	for name, vals := range o.longs {
		seg.longs[name] = vals[:o.n]
	}
	for name, vals := range o.doubles {
		seg.doubles[name] = vals[:o.n]
	}
	for name, sc := range o.strs {
		seg.strs[name] = &strColumn{dict: sc.dict[:len(sc.dict)], ids: sc.ids[:o.n]}
	}
	for name, vals := range o.nulls {
		seg.nulls[name] = vals[:o.n]
	}
	return seg
}

// seal converts the open segment into an immutable segment with inverted
// indexes built. The buffers transfer ownership — the open segment is
// discarded afterwards, so no writer ever touches them again.
func (o *openSegment) seal() *segment {
	seg := o.freeze()
	for _, sc := range seg.strs {
		sc.index = map[string]*Bitmap{}
		for v := range sc.dict {
			sc.index[sc.dict[v]] = NewBitmap(seg.n)
		}
		for i, id := range sc.ids {
			if id >= 0 {
				sc.index[sc.dict[id]].Set(i)
			}
		}
	}
	return seg
}

// ---------------------------------------------------------------------------
// Table-level lifecycle.

// Append validates and appends rows into the open mutable segment, sealing
// it whenever the row threshold is crossed mid-batch. now is the append
// timestamp driving the age-based seal. Rows are visible to queries as soon
// as Append returns.
func (t *Table) Append(rows [][]any, now time.Time) error {
	if len(rows) == 0 {
		return nil
	}
	// Validate outside the lock so a bad row rejects the whole batch before
	// any row lands.
	if err := t.validateRows(rows); err != nil {
		return err
	}
	t.mu.Lock()
	t.appendLocked(rows, now)
	events := t.drainEventsLocked()
	t.mu.Unlock()
	t.publishEvents(events)
	return nil
}

// recordEventLocked bumps the snapshot version and queues a lifecycle event
// for publication after the lock is released. Caller holds the write lock.
func (t *Table) recordEventLocked(kind EventKind) {
	t.version++
	t.pending = append(t.pending, TableEvent{Table: t.Name, Kind: kind, Version: t.version})
}

// drainEventsLocked takes the queued events. Caller holds the write lock.
func (t *Table) drainEventsLocked() []TableEvent {
	events := t.pending
	t.pending = nil
	return events
}

// publishEvents delivers drained events through the store. Caller must hold
// no locks.
func (t *Table) publishEvents(events []TableEvent) {
	if t.store != nil {
		t.store.publish(events)
	}
}

// AppendFrom appends a batch delivered from an offset-addressed source —
// rows covering offsets [next, next+len(rows)) of source — skipping any
// prefix the table has already seen from that source. The per-source
// watermark advances atomically with the append, so a delivery retried
// after a crash between the downstream append and the upstream offset
// commit lands exactly once. Returns how many rows were actually appended.
func (t *Table) AppendFrom(source string, next int64, rows [][]any, now time.Time) (int, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	if err := t.validateRows(rows); err != nil {
		return 0, err
	}
	t.mu.Lock()
	skip := 0
	if seen, ok := t.srcNext[source]; ok && seen > next {
		skip = int(seen - next)
		if skip > len(rows) {
			skip = len(rows)
		}
	}
	if skip < len(rows) {
		t.appendLocked(rows[skip:], now)
	}
	if t.srcNext == nil {
		t.srcNext = map[string]int64{}
	}
	if end := next + int64(len(rows)); end > t.srcNext[source] {
		t.srcNext[source] = end
		if skip >= len(rows) {
			// The rows were all duplicates but the watermark still advanced;
			// record that as an append-kind event so watermark-driven
			// invalidation fires.
			t.recordEventLocked(EventAppend)
		}
	}
	events := t.drainEventsLocked()
	t.mu.Unlock()
	t.publishEvents(events)
	return len(rows) - skip, nil
}

// SourceWatermark returns the next offset the table expects from source (0
// when the source has never delivered).
func (t *Table) SourceWatermark(source string) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.srcNext[source]
}

// validateRows type-checks a batch against the table schema.
func (t *Table) validateRows(rows [][]any) error {
	for ri, row := range rows {
		if len(row) != len(t.Columns) {
			return errRowWidth(t.Name, ri, len(row), len(t.Columns))
		}
		for ci, col := range t.Columns {
			if row[ci] == nil {
				continue
			}
			switch col.Type.Kind {
			case types.KindBigint:
				if _, ok := row[ci].(int64); !ok {
					return errCellType(col.Name, ri, "int64", row[ci])
				}
			case types.KindDouble:
				if _, ok := row[ci].(float64); !ok {
					return errCellType(col.Name, ri, "float64", row[ci])
				}
			case types.KindVarchar:
				if _, ok := row[ci].(string); !ok {
					return errCellType(col.Name, ri, "string", row[ci])
				}
			}
		}
	}
	return nil
}

// appendLocked adds pre-validated rows to the open segment, sealing whenever
// the row threshold is crossed mid-batch. Caller holds the write lock.
func (t *Table) appendLocked(rows [][]any, now time.Time) {
	for _, row := range rows {
		if t.open == nil {
			t.open = newOpenSegment(t.Columns, now)
		}
		t.open.appendRow(t.Columns, row)
		if t.open.n >= t.cfg.SealRows {
			t.sealLocked()
		}
	}
	t.recordEventLocked(EventAppend)
}

// sealLocked moves the open segment to the sealed list. Caller holds the
// write lock.
func (t *Table) sealLocked() {
	if t.open == nil || t.open.n == 0 {
		return
	}
	t.segments = append(t.segments, t.open.seal())
	t.open = nil
	t.recordEventLocked(EventSeal)
	if m := t.metrics(); m != nil {
		m.seals.Inc()
	}
}

// Maintain runs the background lifecycle steps: age-based sealing and
// compaction of small sealed segments. Ingestion consumers call it
// periodically; it is safe (and cheap) to call concurrently with queries
// and appends.
func (t *Table) Maintain(now time.Time) {
	t.mu.Lock()
	if t.open != nil && t.open.n > 0 && now.Sub(t.open.firstAppend) >= t.cfg.SealAge {
		t.sealLocked()
	}
	t.compactLocked()
	events := t.drainEventsLocked()
	t.mu.Unlock()
	t.publishEvents(events)
}

// compactLocked merges small sealed segments (fewer than CompactBelowRows
// rows) into one compacted segment, up to CompactBatch at a time. A single
// small segment is left alone — compaction needs at least two candidates to
// make progress. Caller holds the write lock.
func (t *Table) compactLocked() {
	var candidates []int
	for i, seg := range t.segments {
		if seg.n < t.cfg.CompactBelowRows {
			candidates = append(candidates, i)
			if len(candidates) == t.cfg.CompactBatch {
				break
			}
		}
	}
	if len(candidates) < 2 {
		return
	}
	merged := t.mergeSegments(candidates)
	kept := make([]*segment, 0, len(t.segments)-len(candidates)+1)
	drop := map[int]bool{}
	for _, i := range candidates {
		drop[i] = true
	}
	for i, seg := range t.segments {
		if !drop[i] {
			kept = append(kept, seg)
		}
	}
	t.segments = append(kept, merged)
	t.recordEventLocked(EventCompact)
	if m := t.metrics(); m != nil {
		m.compactions.Inc()
		m.compactedSegments.Add(int64(len(candidates)))
	}
}

// mergeSegments concatenates the given sealed segments into one compacted
// segment with a merged dictionary and rebuilt inverted indexes.
func (t *Table) mergeSegments(idxs []int) *segment {
	total := 0
	for _, i := range idxs {
		total += t.segments[i].n
	}
	merged := &segment{
		n:         total,
		compacted: true,
		longs:     map[string][]int64{},
		doubles:   map[string][]float64{},
		strs:      map[string]*strColumn{},
		nulls:     map[string][]bool{},
	}
	for _, col := range t.Columns {
		switch col.Type.Kind {
		case types.KindBigint:
			vals := make([]int64, 0, total)
			for _, i := range idxs {
				vals = append(vals, t.segments[i].longs[col.Name]...)
			}
			merged.longs[col.Name] = vals
		case types.KindDouble:
			vals := make([]float64, 0, total)
			for _, i := range idxs {
				vals = append(vals, t.segments[i].doubles[col.Name]...)
			}
			merged.doubles[col.Name] = vals
		case types.KindVarchar:
			sc := &strColumn{ids: make([]int32, 0, total), index: map[string]*Bitmap{}}
			dictIdx := map[string]int32{}
			for _, i := range idxs {
				src := t.segments[i].strs[col.Name]
				for _, id := range src.ids {
					if id < 0 {
						sc.ids = append(sc.ids, -1)
						continue
					}
					v := src.dict[id]
					nid, seen := dictIdx[v]
					if !seen {
						nid = int32(len(sc.dict))
						dictIdx[v] = nid
						sc.dict = append(sc.dict, v)
						sc.index[v] = NewBitmap(total)
					}
					sc.index[v].Set(len(sc.ids))
					sc.ids = append(sc.ids, nid)
				}
			}
			merged.strs[col.Name] = sc
		}
		nulls := make([]bool, 0, total)
		for _, i := range idxs {
			nulls = append(nulls, t.segments[i].nulls[col.Name]...)
		}
		merged.nulls[col.Name] = nulls
	}
	return merged
}

// snapshotSegments returns the immutable segment list a query iterates:
// sealed/compacted segments plus a frozen view of the open segment.
func (t *Table) snapshotSegments() []*segment {
	t.mu.RLock()
	defer t.mu.RUnlock()
	segs := make([]*segment, 0, len(t.segments)+1)
	segs = append(segs, t.segments...)
	if t.open != nil && t.open.n > 0 {
		segs = append(segs, t.open.freeze())
	}
	return segs
}

// SegmentStats is the lifecycle census of one table.
type SegmentStats struct {
	Open      int // 0 or 1
	OpenRows  int
	Sealed    int // sealed but not compacted
	Compacted int
	Rows      int // total rows across all states
}

// Stats reports the table's segment census.
func (t *Table) Stats() SegmentStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var s SegmentStats
	if t.open != nil && t.open.n > 0 {
		s.Open = 1
		s.OpenRows = t.open.n
		s.Rows += t.open.n
	}
	for _, seg := range t.segments {
		if seg.compacted {
			s.Compacted++
		} else {
			s.Sealed++
		}
		s.Rows += seg.n
	}
	return s
}

// SegmentCount returns the total number of segments (open + sealed +
// compacted) — the regression guard against one-segment-per-Ingest-call.
func (t *Table) SegmentCount() int {
	s := t.Stats()
	return s.Open + s.Sealed + s.Compacted
}

// ---------------------------------------------------------------------------
// Observability.

// storeMetrics holds the lifecycle counters shared by every table of a
// store; nil until RegisterObsMetrics wires a registry in.
type storeMetrics struct {
	seals             *obs.Counter
	compactions       *obs.Counter
	compactedSegments *obs.Counter
}

// RegisterObsMetrics publishes the store's lifecycle metrics: seal and
// compaction counters plus computed open/sealed/compacted segment gauges.
// Implements obs.MetricsSource.
func (s *Store) RegisterObsMetrics(reg *obs.Registry) {
	m := &storeMetrics{
		seals:             reg.Counter("druid_segments_sealed"),
		compactions:       reg.Counter("druid_compactions"),
		compactedSegments: reg.Counter("druid_segments_compacted"),
	}
	s.metrics.Store(m)
	census := func(pick func(SegmentStats) int) func() float64 {
		return func() float64 {
			total := 0
			s.mu.RLock()
			tables := make([]*Table, 0, len(s.tables))
			for _, t := range s.tables {
				tables = append(tables, t)
			}
			s.mu.RUnlock()
			for _, t := range tables {
				total += pick(t.Stats())
			}
			return float64(total)
		}
	}
	reg.GaugeFunc("druid_open_segments", census(func(st SegmentStats) int { return st.Open }))
	reg.GaugeFunc("druid_sealed_segments", census(func(st SegmentStats) int { return st.Sealed }))
	reg.GaugeFunc("druid_compacted_segments", census(func(st SegmentStats) int { return st.Compacted }))
}

// metrics resolves the store's metric sink (nil when no registry is wired).
func (t *Table) metrics() *storeMetrics {
	if t.store == nil {
		return nil
	}
	return t.store.metrics.Load()
}
