package cache

import (
	"container/list"
	"sync"
	"time"

	"prestolite/internal/fault"
	"prestolite/internal/obs"
)

// ResultCache is the coordinator-side fragment-result cache (tier 2 of the
// hierarchy): finished query results keyed by canonicalized plan text plus
// the snapshot versions of every table the plan scans. Because the versions
// are part of the key, a metastore bump or druid seal makes the old entry
// unreachable — invalidation is implicit; TTL and byte bounds only cap
// residency of keys that will never be asked for again.
type ResultCache[V any] struct {
	mu       sync.Mutex
	capacity int
	maxBytes int64
	ttl      time.Duration
	items    map[string]*list.Element
	order    *list.List // front = most recent
	bytes    int64
	clock    fault.Clock

	Metrics Metrics
}

type resultEntry[V any] struct {
	key     string
	value   V
	size    int64
	expires time.Time
}

// NewResultCache creates a result cache holding at most capacity entries and
// maxBytes total (callers supply per-entry sizes at Put). ttl <= 0 disables
// expiry; maxBytes <= 0 disables the byte bound.
func NewResultCache[V any](capacity int, maxBytes int64, ttl time.Duration) *ResultCache[V] {
	if capacity <= 0 {
		capacity = 1024
	}
	return &ResultCache[V]{
		capacity: capacity,
		maxBytes: maxBytes,
		ttl:      ttl,
		items:    map[string]*list.Element{},
		order:    list.New(),
		clock:    fault.RealClock{},
	}
}

// Get returns the cached result, if present and fresh.
func (c *ResultCache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero V
	el, ok := c.items[key]
	if !ok {
		c.Metrics.Misses.Add(1)
		return zero, false
	}
	entry := el.Value.(*resultEntry[V])
	if c.ttl > 0 && c.clock.Now().After(entry.expires) {
		c.removeLocked(el)
		c.Metrics.Misses.Add(1)
		return zero, false
	}
	c.order.MoveToFront(el)
	c.Metrics.Hits.Add(1)
	return entry.value, true
}

// Put inserts or refreshes a result of the given size in bytes.
func (c *ResultCache[V]) Put(key string, value V, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		entry := el.Value.(*resultEntry[V])
		c.bytes += size - entry.size
		entry.value, entry.size = value, size
		entry.expires = c.clock.Now().Add(c.ttl)
		c.order.MoveToFront(el)
	} else {
		entry := &resultEntry[V]{key: key, value: value, size: size, expires: c.clock.Now().Add(c.ttl)}
		c.items[key] = c.order.PushFront(entry)
		c.bytes += size
	}
	for c.order.Len() > c.capacity || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.order.Len() > 1) {
		c.removeLocked(c.order.Back())
		c.Metrics.Evictions.Add(1)
	}
}

func (c *ResultCache[V]) removeLocked(el *list.Element) {
	entry := el.Value.(*resultEntry[V])
	c.order.Remove(el)
	delete(c.items, entry.key)
	c.bytes -= entry.size
}

// InvalidateAll empties the cache (the explicit-invalidation escape hatch,
// e.g. POST /v1/cache/invalidate) and returns the number dropped.
func (c *ResultCache[V]) InvalidateAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := c.order.Len()
	c.items = map[string]*list.Element{}
	c.order.Init()
	c.bytes = 0
	return dropped
}

// Len returns the current entry count.
func (c *ResultCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the resident result bytes.
func (c *ResultCache[V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// SetClock overrides the TTL time source (tests, chaos replay).
func (c *ResultCache[V]) SetClock(clk fault.Clock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clk
}

// RegisterObs publishes counters plus resident bytes under prefix
// (e.g. "coordinator.cache.result").
func (c *ResultCache[V]) RegisterObs(reg *obs.Registry, prefix string) {
	c.Metrics.RegisterObs(reg, prefix)
	reg.GaugeFunc(prefix+".bytes", func() float64 { return float64(c.Bytes()) })
}
