// Package cache implements the caching layer of §VII: a generic LRU with
// TTL and hit/miss metrics, the coordinator-side file list cache (sealed
// directories only, §VII.A) and the worker-side file handle + footer cache
// (§VII.B).
package cache

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prestolite/internal/fault"
	"prestolite/internal/fsys"
	"prestolite/internal/obs"
)

// Metrics counts cache effectiveness; experiments read these to reproduce
// the "listFile calls reduced to less than 40%" and "90% of getFileInfo
// calls reduced" results.
type Metrics struct {
	Hits      atomic.Int64
	Misses    atomic.Int64
	Bypasses  atomic.Int64 // open partitions skip the cache entirely
	Evictions atomic.Int64 // capacity- or byte-pressure evictions, not TTL expiry
}

// HitRate returns hits / (hits + misses), 0 when empty.
func (m *Metrics) HitRate() float64 {
	h, mi := m.Hits.Load(), m.Misses.Load()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}

// RegisterObs publishes the cache counters and hit rate into an observability
// registry under prefix (e.g. "hive.cache.footer"), so they show up in
// /v1/stats snapshots and EXPLAIN ANALYZE cache footers. The existing
// atomics stay the source of truth; the registry reads them at snapshot
// time.
func (m *Metrics) RegisterObs(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".hits", func() float64 { return float64(m.Hits.Load()) })
	reg.GaugeFunc(prefix+".misses", func() float64 { return float64(m.Misses.Load()) })
	reg.GaugeFunc(prefix+".bypasses", func() float64 { return float64(m.Bypasses.Load()) })
	reg.GaugeFunc(prefix+".evictions", func() float64 { return float64(m.Evictions.Load()) })
	reg.GaugeFunc(prefix+".hit_rate", m.HitRate)
}

// LRU is a thread-safe LRU cache with optional TTL. Time flows through a
// fault.Clock so TTL expiry is deterministic under CHAOS_SEED replay.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	items    map[K]*list.Element
	order    *list.List // front = most recent

	Metrics Metrics
	clock   fault.Clock
}

type lruEntry[K comparable, V any] struct {
	key     K
	value   V
	expires time.Time
}

// NewLRU creates a cache; ttl <= 0 disables expiry.
func NewLRU[K comparable, V any](capacity int, ttl time.Duration) *LRU[K, V] {
	if capacity <= 0 {
		capacity = 1024
	}
	return &LRU[K, V]{
		capacity: capacity,
		ttl:      ttl,
		items:    map[K]*list.Element{},
		order:    list.New(),
		clock:    fault.RealClock{},
	}
}

// Get returns the cached value, if present and fresh.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero V
	el, ok := c.items[key]
	if !ok {
		c.Metrics.Misses.Add(1)
		return zero, false
	}
	entry := el.Value.(*lruEntry[K, V])
	if c.ttl > 0 && c.clock.Now().After(entry.expires) {
		c.order.Remove(el)
		delete(c.items, key)
		c.Metrics.Misses.Add(1)
		return zero, false
	}
	c.order.MoveToFront(el)
	c.Metrics.Hits.Add(1)
	return entry.value, true
}

// Put inserts or refreshes a value.
func (c *LRU[K, V]) Put(key K, value V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		entry := el.Value.(*lruEntry[K, V])
		entry.value = value
		entry.expires = c.clock.Now().Add(c.ttl)
		c.order.MoveToFront(el)
		return
	}
	entry := &lruEntry[K, V]{key: key, value: value, expires: c.clock.Now().Add(c.ttl)}
	c.items[key] = c.order.PushFront(entry)
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[K, V]).key)
		c.Metrics.Evictions.Add(1)
	}
}

// Invalidate drops a key.
func (c *LRU[K, V]) Invalidate(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// InvalidateFunc drops every entry whose key matches pred and returns the
// number dropped. Used for prefix invalidation when an ingest or seal event
// touches a directory: every path-derived key under it must go.
func (c *LRU[K, V]) InvalidateFunc(pred func(K) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for key, el := range c.items {
		if pred(key) {
			c.order.Remove(el)
			delete(c.items, key)
			dropped++
		}
	}
	return dropped
}

// InvalidateAll empties the cache and returns the number of entries dropped.
func (c *LRU[K, V]) InvalidateAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := c.order.Len()
	c.items = map[K]*list.Element{}
	c.order.Init()
	return dropped
}

// Len returns the current entry count.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// SetClock overrides the TTL time source for tests and chaos replay.
func (c *LRU[K, V]) SetClock(clk fault.Clock) { c.clock = clk }

// ---------------------------------------------------------------------------
// File list cache (§VII.A): the coordinator caches directory listings to
// avoid listFile RPCs against the NameNode. Only sealed directories are
// cached; open partitions (near-real-time ingestion keeps writing files)
// bypass the cache to guarantee data freshness.

// FileListCache fronts FileSystem.ListFiles.
type FileListCache struct {
	fs  fsys.FileSystem
	lru *LRU[string, []fsys.FileInfo]

	// Metrics includes bypasses for open partitions.
	Metrics *Metrics
}

// NewFileListCache wraps fs.
func NewFileListCache(fs fsys.FileSystem, capacity int, ttl time.Duration) *FileListCache {
	c := &FileListCache{fs: fs, lru: NewLRU[string, []fsys.FileInfo](capacity, ttl)}
	c.Metrics = &c.lru.Metrics
	return c
}

// List lists dir. sealed=false (open partition) always goes to the
// filesystem and is never cached.
func (c *FileListCache) List(dir string, sealed bool) ([]fsys.FileInfo, error) {
	if !sealed {
		c.Metrics.Bypasses.Add(1)
		return c.fs.ListFiles(dir)
	}
	if files, ok := c.lru.Get(dir); ok {
		return files, nil
	}
	files, err := c.fs.ListFiles(dir)
	if err != nil {
		return nil, err
	}
	c.lru.Put(dir, files)
	return files, nil
}

// Invalidate drops a directory (called when a partition is rewritten).
func (c *FileListCache) Invalidate(dir string) { c.lru.Invalidate(dir) }

// InvalidatePrefix drops every cached listing under prefix. Seal and ingest
// events fire this so a just-sealed partition's listing is re-read instead of
// served stale until TTL.
func (c *FileListCache) InvalidatePrefix(prefix string) int {
	return c.lru.InvalidateFunc(func(dir string) bool { return strings.HasPrefix(dir, prefix) })
}

// SetClock overrides the TTL time source (tests, chaos replay).
func (c *FileListCache) SetClock(clk fault.Clock) { c.lru.SetClock(clk) }

// ---------------------------------------------------------------------------
// File handle + footer cache (§VII.B): workers cache file descriptors
// (avoiding getFileInfo calls) and the decoded footers, which have a very
// high hit rate "as they are the indexes to the data itself".

// FooterCache caches per-path file metadata and footer payloads.
type FooterCache[F any] struct {
	infos   *LRU[string, fsys.FileInfo]
	footers *LRU[string, F]

	// InfoMetrics and FooterMetrics expose the two hit rates separately.
	InfoMetrics   *Metrics
	FooterMetrics *Metrics
}

// NewFooterCache creates a worker-side cache.
func NewFooterCache[F any](capacity int, ttl time.Duration) *FooterCache[F] {
	c := &FooterCache[F]{
		infos:   NewLRU[string, fsys.FileInfo](capacity, ttl),
		footers: NewLRU[string, F](capacity, ttl),
	}
	c.InfoMetrics = &c.infos.Metrics
	c.FooterMetrics = &c.footers.Metrics
	return c
}

// GetFileInfo stats through the cache.
func (c *FooterCache[F]) GetFileInfo(fs fsys.FileSystem, path string) (fsys.FileInfo, error) {
	if info, ok := c.infos.Get(path); ok {
		return info, nil
	}
	info, err := fs.GetFileInfo(path)
	if err != nil {
		return fsys.FileInfo{}, err
	}
	c.infos.Put(path, info)
	return info, nil
}

// GetFooter loads a footer through the cache.
func (c *FooterCache[F]) GetFooter(path string, load func() (F, error)) (F, error) {
	if f, ok := c.footers.Get(path); ok {
		return f, nil
	}
	f, err := load()
	if err != nil {
		var zero F
		return zero, err
	}
	c.footers.Put(path, f)
	return f, nil
}

// Invalidate drops one path from both the info and footer tiers.
func (c *FooterCache[F]) Invalidate(path string) {
	c.infos.Invalidate(path)
	c.footers.Invalidate(path)
}

// InvalidatePrefix drops every info and footer entry whose path starts with
// prefix (a table or partition directory being rewritten or sealed).
func (c *FooterCache[F]) InvalidatePrefix(prefix string) int {
	pred := func(path string) bool { return strings.HasPrefix(path, prefix) }
	return c.infos.InvalidateFunc(pred) + c.footers.InvalidateFunc(pred)
}

// SetClock overrides the TTL time source (tests, chaos replay).
func (c *FooterCache[F]) SetClock(clk fault.Clock) {
	c.infos.SetClock(clk)
	c.footers.SetClock(clk)
}
