package cache

import (
	"container/list"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"

	"prestolite/internal/obs"
)

// ChunkKey identifies one decompressed parquet column chunk: the file, the
// leaf column, the row group within the file, and whether the bytes are the
// chunk's dictionary page or its data pages. This mirrors the Alluxio local
// cache's page keys: caching below the decoder but above the filesystem, so
// a hit skips both the ReadAt and the decompression.
type ChunkKey struct {
	Path     string
	Column   string
	RowGroup int
	Dict     bool
}

// ChunkCache is the worker-local data cache for hot column-chunk reads
// (tier 1 of the hierarchy). It is sharded to keep lock hold times short
// under the many concurrent driver goroutines of a scan, and bounded by
// total bytes rather than entry count because chunk sizes vary by orders of
// magnitude. Eviction is LRU per shard.
//
// Cached values are the decompressed chunk bodies. Decoders slice into them
// without mutating, so a single copy is safely shared across queries.
type ChunkCache struct {
	shards   [chunkShards]chunkShard
	maxBytes int64 // per-shard budget = maxBytes / chunkShards

	Metrics Metrics
	bytes   atomic.Int64
}

const chunkShards = 16

type chunkShard struct {
	mu    sync.Mutex
	items map[ChunkKey]*list.Element
	order *list.List // front = most recent
}

type chunkEntry struct {
	key  ChunkKey
	body []byte
}

// NewChunkCache creates a chunk cache bounded at maxBytes total (across all
// shards). maxBytes <= 0 selects a 64 MiB default.
func NewChunkCache(maxBytes int64) *ChunkCache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	c := &ChunkCache{maxBytes: maxBytes}
	for i := range c.shards {
		c.shards[i].items = map[ChunkKey]*list.Element{}
		c.shards[i].order = list.New()
	}
	return c
}

func (c *ChunkCache) shard(k ChunkKey) *chunkShard {
	h := fnv.New64a()
	h.Write([]byte(k.Path))
	h.Write([]byte{0})
	h.Write([]byte(k.Column))
	h.Write([]byte{0, byte(k.RowGroup), byte(k.RowGroup >> 8)})
	if k.Dict {
		h.Write([]byte{1})
	}
	return &c.shards[h.Sum64()%chunkShards]
}

// Get returns the cached decompressed body for k. The returned slice is
// shared: callers must treat it as read-only.
func (c *ChunkCache) Get(k ChunkKey) ([]byte, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		c.Metrics.Misses.Add(1)
		return nil, false
	}
	s.order.MoveToFront(el)
	c.Metrics.Hits.Add(1)
	return el.Value.(*chunkEntry).body, true
}

// Put stores body under k, evicting least-recently-used chunks from the
// shard until it fits its byte budget. Bodies larger than the whole shard
// budget are not cached at all (they would evict everything for one entry
// that cannot stay resident anyway).
func (c *ChunkCache) Put(k ChunkKey, body []byte) {
	budget := c.maxBytes / chunkShards
	if int64(len(body)) > budget {
		c.Metrics.Bypasses.Add(1)
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		old := el.Value.(*chunkEntry)
		c.bytes.Add(int64(len(body)) - int64(len(old.body)))
		old.body = body
		s.order.MoveToFront(el)
	} else {
		s.items[k] = s.order.PushFront(&chunkEntry{key: k, body: body})
		c.bytes.Add(int64(len(body)))
	}
	// Evict against the shard's share of the byte budget. Shard bytes are
	// not tracked separately; approximate with the global counter scaled by
	// shard count, which converges because keys hash uniformly.
	for c.bytes.Load() > c.maxBytes && s.order.Len() > 1 {
		oldest := s.order.Back()
		entry := oldest.Value.(*chunkEntry)
		s.order.Remove(oldest)
		delete(s.items, entry.key)
		c.bytes.Add(-int64(len(entry.body)))
		c.Metrics.Evictions.Add(1)
	}
}

// GetChunk and PutChunk adapt the cache to the parquet reader's ChunkCache
// interface without parquet importing this package.

// GetChunk implements parquet.ChunkCache.
func (c *ChunkCache) GetChunk(path, column string, rowGroup int, dict bool) ([]byte, bool) {
	return c.Get(ChunkKey{Path: path, Column: column, RowGroup: rowGroup, Dict: dict})
}

// PutChunk implements parquet.ChunkCache.
func (c *ChunkCache) PutChunk(path, column string, rowGroup int, dict bool, body []byte) {
	c.Put(ChunkKey{Path: path, Column: column, RowGroup: rowGroup, Dict: dict}, body)
}

// InvalidatePrefix drops every chunk whose path starts with prefix and
// returns the count. Fired when ingest/seal/compaction rewrites files under
// a table or partition directory.
func (c *ChunkCache) InvalidatePrefix(prefix string) int {
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.items {
			if strings.HasPrefix(k.Path, prefix) {
				entry := el.Value.(*chunkEntry)
				s.order.Remove(el)
				delete(s.items, k)
				c.bytes.Add(-int64(len(entry.body)))
				dropped++
			}
		}
		s.mu.Unlock()
	}
	return dropped
}

// Len returns the total entry count across shards.
func (c *ChunkCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the resident decompressed bytes.
func (c *ChunkCache) Bytes() int64 { return c.bytes.Load() }

// RegisterObs publishes hit/miss/evict counters plus resident bytes under
// prefix (e.g. "hive.cache.chunk"), alongside the standard Metrics gauges.
func (c *ChunkCache) RegisterObs(reg *obs.Registry, prefix string) {
	c.Metrics.RegisterObs(reg, prefix)
	reg.GaugeFunc(prefix+".bytes", func() float64 { return float64(c.bytes.Load()) })
}
