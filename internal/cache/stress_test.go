package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"prestolite/internal/fault"
)

// TestLRUConcurrentStress hammers one LRU from parallel readers, writers and
// invalidators. Run under -race this is the memory-safety proof for the
// shared coordinator/worker caches; the final Len bound proves capacity is
// never exceeded regardless of interleaving.
func TestLRUConcurrentStress(t *testing.T) {
	const (
		workers = 8
		ops     = 2000
		keys    = 64
		cap     = 32
	)
	c := NewLRU[string, int](cap, time.Minute)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%keys)
				switch i % 4 {
				case 0, 1:
					c.Get(k)
				case 2:
					c.Put(k, i)
				case 3:
					if i%64 == 3 {
						c.Invalidate(k)
					} else if i%512 == 7 {
						c.InvalidateFunc(func(key string) bool { return key < "k2" })
					} else {
						c.Get(k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > cap {
		t.Errorf("len %d exceeds capacity %d", c.Len(), cap)
	}
	total := c.Metrics.Hits.Load() + c.Metrics.Misses.Load()
	if total == 0 {
		t.Error("no gets recorded")
	}
}

// TestChunkCacheConcurrentStress runs parallel GetChunk/PutChunk/Invalidate
// against the sharded chunk cache, then checks the byte accounting is exact:
// after a full InvalidatePrefix sweep the resident byte counter must return
// to zero — any drift means an eviction or invalidation leaked its size.
func TestChunkCacheConcurrentStress(t *testing.T) {
	const (
		workers = 8
		ops     = 2000
	)
	c := NewChunkCache(1 << 20) // 1 MiB, small enough to force evictions
	body := make([]byte, 2048)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				path := fmt.Sprintf("/warehouse/t%d/part-%d.parquet", w%2, i%40)
				col := fmt.Sprintf("c%d", i%4)
				switch i % 3 {
				case 0:
					if b, ok := c.GetChunk(path, col, i%8, false); ok && len(b) != len(body) {
						t.Errorf("corrupt body length %d", len(b))
						return
					}
				case 1:
					c.PutChunk(path, col, i%8, i%16 == 1, body)
				case 2:
					if i%128 == 2 {
						c.InvalidatePrefix(fmt.Sprintf("/warehouse/t%d/", w%2))
					} else {
						c.GetChunk(path, col, i%8, false)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() < 0 {
		t.Errorf("negative resident bytes %d", c.Bytes())
	}
	c.InvalidatePrefix("/")
	if c.Len() != 0 {
		t.Errorf("len %d after full invalidation", c.Len())
	}
	if c.Bytes() != 0 {
		t.Errorf("resident bytes %d after full invalidation, want 0", c.Bytes())
	}
}

// TestChunkCacheBasics covers the single-threaded contract: hit after put,
// dict and data pages are distinct keys, oversized bodies bypass, and byte
// pressure evicts the least recently used chunk.
func TestChunkCacheBasics(t *testing.T) {
	c := NewChunkCache(16 * 4096)
	body := []byte("decompressed-bytes")
	c.PutChunk("/t/f1", "col", 0, false, body)
	if got, ok := c.GetChunk("/t/f1", "col", 0, false); !ok || string(got) != string(body) {
		t.Fatalf("miss after put: %q %v", got, ok)
	}
	if _, ok := c.GetChunk("/t/f1", "col", 0, true); ok {
		t.Error("dict page must not alias data page")
	}
	if _, ok := c.GetChunk("/t/f1", "col", 1, false); ok {
		t.Error("row groups must not alias")
	}
	// A body larger than a whole shard's budget is refused, not cached.
	huge := make([]byte, 16*4096)
	c.PutChunk("/t/huge", "col", 0, false, huge)
	if _, ok := c.GetChunk("/t/huge", "col", 0, false); ok {
		t.Error("oversized body should bypass the cache")
	}
	if c.Metrics.Bypasses.Load() == 0 {
		t.Error("bypass not counted")
	}
	if n := c.InvalidatePrefix("/t/"); n != 1 {
		t.Errorf("invalidated %d, want 1", n)
	}
}

// TestChunkCacheEviction fills past the byte budget and checks eviction both
// happens and is counted.
func TestChunkCacheEviction(t *testing.T) {
	c := NewChunkCache(32 * 1024)
	body := make([]byte, 1024)
	for i := 0; i < 256; i++ {
		c.PutChunk("/t/f", fmt.Sprintf("c%d", i), 0, false, body)
	}
	if c.Bytes() > 32*1024 {
		t.Errorf("resident %d bytes exceeds budget", c.Bytes())
	}
	if c.Metrics.Evictions.Load() == 0 {
		t.Error("expected evictions under byte pressure")
	}
}

// TestResultCache covers the version-stamped result cache: TTL expiry on the
// injected clock, byte-bound eviction, and explicit full invalidation.
func TestResultCache(t *testing.T) {
	c := NewResultCache[string](8, 100, time.Minute)
	clk := fault.NewManualClock(time.Unix(5000, 0))
	c.SetClock(clk)

	c.Put("q1@v1", "rows", 10)
	if v, ok := c.Get("q1@v1"); !ok || v != "rows" {
		t.Fatalf("miss after put: %q %v", v, ok)
	}
	// A version bump is a different key — the stale entry is simply never hit.
	if _, ok := c.Get("q1@v2"); ok {
		t.Error("bumped version must miss")
	}
	clk.Advance(2 * time.Minute)
	if _, ok := c.Get("q1@v1"); ok {
		t.Error("expired entry served")
	}
	// Byte bound: 3 entries of 40 bytes exceed 100; oldest goes.
	c.Put("a", "x", 40)
	c.Put("b", "y", 40)
	c.Put("c", "z", 40)
	if _, ok := c.Get("a"); ok {
		t.Error("oldest entry should be evicted by byte pressure")
	}
	if c.Metrics.Evictions.Load() == 0 {
		t.Error("eviction not counted")
	}
	if n := c.InvalidateAll(); n == 0 {
		t.Error("invalidate-all dropped nothing")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("len=%d bytes=%d after invalidate-all", c.Len(), c.Bytes())
	}
}

// TestResultCacheConcurrentStress runs parallel Get/Put/InvalidateAll under
// -race.
func TestResultCacheConcurrentStress(t *testing.T) {
	c := NewResultCache[int](64, 1<<20, time.Minute)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("q%d", (w+i)%128)
				switch i % 3 {
				case 0:
					c.Get(k)
				case 1:
					c.Put(k, i, 256)
				case 2:
					if i%512 == 2 {
						c.InvalidateAll()
					} else {
						c.Get(k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() < 0 {
		t.Errorf("negative bytes %d", c.Bytes())
	}
}
