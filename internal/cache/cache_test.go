package cache

import (
	"errors"
	"io"
	"testing"
	"time"

	"prestolite/internal/fault"
	"prestolite/internal/fsys"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU[string, int](2, 0)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	// "a" is now most recent; inserting "c" evicts "b".
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should be evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	c.Invalidate("a")
	if _, ok := c.Get("a"); ok {
		t.Error("a should be invalidated")
	}
	// Update existing key.
	c.Put("c", 30)
	if v, _ := c.Get("c"); v != 30 {
		t.Errorf("c = %d", v)
	}
}

func TestLRUTTL(t *testing.T) {
	c := NewLRU[string, int](10, time.Minute)
	clk := fault.NewManualClock(time.Unix(1000, 0))
	c.SetClock(clk)
	c.Put("k", 1)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	clk.Advance(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Error("expired entry served")
	}
}

func TestMetrics(t *testing.T) {
	c := NewLRU[string, int](10, 0)
	c.Put("k", 1)
	c.Get("k")
	c.Get("k")
	c.Get("missing")
	if h := c.Metrics.Hits.Load(); h != 2 {
		t.Errorf("hits = %d", h)
	}
	if m := c.Metrics.Misses.Load(); m != 1 {
		t.Errorf("misses = %d", m)
	}
	if hr := c.Metrics.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Errorf("hit rate = %f", hr)
	}
	empty := NewLRU[string, int](10, 0)
	if empty.Metrics.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}

// countingFS counts ListFiles/GetFileInfo calls.
type countingFS struct {
	lists int
	infos int
	fail  bool
}

func (f *countingFS) ListFiles(dir string) ([]fsys.FileInfo, error) {
	f.lists++
	if f.fail {
		return nil, errors.New("boom")
	}
	return []fsys.FileInfo{{Path: dir + "/f1", Size: 1}}, nil
}
func (f *countingFS) Open(path string) (fsys.File, error) { return &fsys.BytesFile{}, nil }
func (f *countingFS) GetFileInfo(path string) (fsys.FileInfo, error) {
	f.infos++
	return fsys.FileInfo{Path: path, Size: 1}, nil
}
func (f *countingFS) Create(path string) (io.WriteCloser, error) {
	return nil, errors.New("read only")
}

func TestFileListCacheSealedVsOpen(t *testing.T) {
	fs := &countingFS{}
	c := NewFileListCache(fs, 16, time.Minute)
	for i := 0; i < 5; i++ {
		if _, err := c.List("/sealed", true); err != nil {
			t.Fatal(err)
		}
	}
	if fs.lists != 1 {
		t.Errorf("sealed dir listed %d times, want 1", fs.lists)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.List("/open", false); err != nil {
			t.Fatal(err)
		}
	}
	if fs.lists != 6 {
		t.Errorf("open dir should bypass cache: %d lists", fs.lists)
	}
	if c.Metrics.Bypasses.Load() != 5 {
		t.Errorf("bypasses = %d", c.Metrics.Bypasses.Load())
	}
	// Errors are not cached.
	fs.fail = true
	if _, err := c.List("/other", true); err == nil {
		t.Error("error should propagate")
	}
	// Invalidation forces a reload.
	fs.fail = false
	c.Invalidate("/sealed")
	c.List("/sealed", true)
	if fs.lists != 8 { // 6 + failed /other + reload
		t.Errorf("lists = %d", fs.lists)
	}
}

func TestFooterCache(t *testing.T) {
	fs := &countingFS{}
	c := NewFooterCache[string](16, time.Minute)
	for i := 0; i < 4; i++ {
		if _, err := c.GetFileInfo(fs, "/f"); err != nil {
			t.Fatal(err)
		}
	}
	if fs.infos != 1 {
		t.Errorf("getFileInfo called %d times", fs.infos)
	}
	loads := 0
	for i := 0; i < 4; i++ {
		v, err := c.GetFooter("/f", func() (string, error) {
			loads++
			return "footer", nil
		})
		if err != nil || v != "footer" {
			t.Fatal(v, err)
		}
	}
	if loads != 1 {
		t.Errorf("footer loaded %d times", loads)
	}
	if _, err := c.GetFooter("/bad", func() (string, error) { return "", errors.New("io") }); err == nil {
		t.Error("load error should propagate")
	}
}
