package planner

import (
	"fmt"

	"prestolite/internal/expr"
	"prestolite/internal/sql"
	"prestolite/internal/types"
)

// aggItem is one distinct aggregate call discovered in the query.
type aggItem struct {
	fn       *expr.AggregateFunction
	funcName string
	distinct bool
	argAsts  []sql.Expr
	args     []expr.RowExpression // analyzed against source scope
	key      string               // dedupe key
	name     string               // output name ("count(*)")
}

// planAggregation plans GROUP BY / aggregate queries:
//
//	source → Project(group keys + agg args) → Aggregate → [Having Filter]
//	       → Project(select) [→ Sort → Limit → trim]
func (a *Analyzer) planAggregation(q *sql.Query, plan Node, srcScope *scope) (Node, *scope, error) {
	// 1. Group-by expressions (ordinals refer to select items).
	var groupAsts []sql.Expr
	for _, g := range q.GroupBy {
		if lit, ok := g.(*sql.Literal); ok {
			n, isInt := lit.Value.(int64)
			if !isInt {
				return nil, nil, fmt.Errorf("planner: GROUP BY literal must be an integer position")
			}
			if n < 1 || int(n) > len(q.Items) {
				return nil, nil, fmt.Errorf("planner: GROUP BY position %d is out of range", n)
			}
			item := q.Items[n-1]
			if item.Star {
				return nil, nil, fmt.Errorf("planner: GROUP BY position %d refers to *", n)
			}
			if containsAggregate(item.Expr) {
				return nil, nil, fmt.Errorf("planner: GROUP BY position %d refers to an aggregate", n)
			}
			groupAsts = append(groupAsts, item.Expr)
			continue
		}
		if containsAggregate(g) {
			return nil, nil, fmt.Errorf("planner: GROUP BY cannot contain aggregates")
		}
		groupAsts = append(groupAsts, g)
	}
	groupExprs := make([]expr.RowExpression, len(groupAsts))
	for i, g := range groupAsts {
		e, err := a.analyzeExpr(g, srcScope, false)
		if err != nil {
			return nil, nil, err
		}
		groupExprs[i] = e
	}

	// 2. Collect aggregate calls from select, having and order-by.
	collector := &aggCollector{analyzer: a, srcScope: srcScope, groupAsts: groupAsts}
	rewrittenItems := make([]sql.SelectItem, len(q.Items))
	for i, it := range q.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("planner: SELECT * cannot be combined with GROUP BY")
		}
		re, err := collector.rewrite(it.Expr)
		if err != nil {
			return nil, nil, err
		}
		rewrittenItems[i] = sql.SelectItem{Expr: re, Alias: it.Alias}
	}
	var rewrittenHaving sql.Expr
	if q.Having != nil {
		var err error
		rewrittenHaving, err = collector.rewrite(q.Having)
		if err != nil {
			return nil, nil, err
		}
	}

	// 3. Pre-aggregation projection: group keys then deduped agg args.
	preExprs := append([]expr.RowExpression{}, groupExprs...)
	preNames := make([]string, len(groupExprs))
	for i, g := range groupAsts {
		preNames[i] = exprName(g)
	}
	argChannel := map[string]int{}
	for i, g := range groupAsts {
		argChannel[g.String()] = i
	}
	var aggs []Aggregation
	for _, item := range collector.aggs {
		argChans := make([]int, len(item.args))
		argTypes := make([]*types.Type, len(item.args))
		for j, arg := range item.args {
			key := item.argAsts[j].String()
			ch, ok := argChannel[key]
			if !ok {
				ch = len(preExprs)
				preExprs = append(preExprs, arg)
				preNames = append(preNames, exprName(item.argAsts[j]))
				argChannel[key] = ch
			}
			argChans[j] = ch
			argTypes[j] = arg.TypeOf()
		}
		aggs = append(aggs, Aggregation{
			FuncName:   item.funcName,
			Args:       argChans,
			ArgTypes:   argTypes,
			Distinct:   item.distinct,
			OutputName: item.name,
			InterType:  item.fn.IntermediateType(argTypes),
			FinalType:  item.fn.FinalType(argTypes),
		})
	}

	plan = &Project{Child: plan, Exprs: preExprs, Names: preNames}
	groupChans := make([]int, len(groupExprs))
	for i := range groupExprs {
		groupChans[i] = i
	}
	plan = &Aggregate{Child: plan, GroupBy: groupChans, Aggs: aggs, Step: AggSingle}

	// 4. Post-aggregation scope: $group<i> and $agg<i> names.
	postScope := &scope{}
	for i, g := range groupExprs {
		postScope.entries = append(postScope.entries, scopeEntry{name: fmt.Sprintf("$group%d", i), typ: g.TypeOf()})
	}
	for i, item := range collector.aggs {
		argTypes := make([]*types.Type, len(item.args))
		for j, arg := range item.args {
			argTypes[j] = arg.TypeOf()
		}
		postScope.entries = append(postScope.entries, scopeEntry{name: fmt.Sprintf("$agg%d", i), typ: item.fn.FinalType(argTypes)})
	}

	// 5. HAVING.
	if rewrittenHaving != nil {
		pred, err := a.analyzeExpr(rewrittenHaving, postScope, false)
		if err != nil {
			return nil, nil, err
		}
		plan = &Filter{Child: plan, Predicate: pred}
	}

	// 6. Final projection from aggregate outputs.
	var projExprs []expr.RowExpression
	var projNames []string
	for i, it := range rewrittenItems {
		e, err := a.analyzeExpr(it.Expr, postScope, false)
		if err != nil {
			return nil, nil, err
		}
		projExprs = append(projExprs, e)
		projNames = append(projNames, selectItemName(q.Items[i]))
	}
	visible := len(projExprs)
	outScope := &scope{}
	for i := range projExprs {
		outScope.entries = append(outScope.entries, scopeEntry{name: projNames[i], typ: projExprs[i].TypeOf()})
	}

	// 7. ORDER BY (aliases/ordinals, or expressions over the agg scope).
	var sortKeys []SortKey
	for _, item := range q.OrderBy {
		ch, found, err := resolveOrderTarget(item.Expr, outScope, q.Items)
		if err != nil {
			return nil, nil, err
		}
		if !found {
			re, err := collector.rewrite(item.Expr)
			if err != nil {
				return nil, nil, err
			}
			e, err := a.analyzeExpr(re, postScope, false)
			if err != nil {
				return nil, nil, fmt.Errorf("planner: ORDER BY %s must be an output column, aggregate, or grouped expression: %w", item.Expr, err)
			}
			ch = len(projExprs)
			projExprs = append(projExprs, e)
			projNames = append(projNames, fmt.Sprintf("$sort%d", ch))
		}
		sortKeys = append(sortKeys, SortKey{Channel: ch, Desc: item.Desc})
	}

	plan = &Project{Child: plan, Exprs: projExprs, Names: projNames}
	if len(sortKeys) > 0 {
		plan = &Sort{Child: plan, Keys: sortKeys}
	}
	if q.Limit != nil {
		plan = &Limit{Child: plan, N: *q.Limit}
	}
	if len(projExprs) > visible {
		cols := plan.Outputs()
		trim := make([]expr.RowExpression, visible)
		names := make([]string, visible)
		for i := 0; i < visible; i++ {
			trim[i] = expr.NewVariable(cols[i].Name, i, cols[i].Type)
			names[i] = projNames[i]
		}
		plan = &Project{Child: plan, Exprs: trim, Names: names}
	}
	return plan, outScope, nil
}

// exprName derives a column name for a derived channel.
func exprName(e sql.Expr) string {
	if id, ok := e.(*sql.Ident); ok {
		return id.Parts[len(id.Parts)-1]
	}
	return e.String()
}

// aggCollector rewrites post-aggregation ASTs: aggregate calls become
// $agg<i> identifiers and group-by expressions become $group<i> identifiers,
// so the standard expression analyzer can run over the aggregate's output
// scope.
type aggCollector struct {
	analyzer  *Analyzer
	srcScope  *scope
	groupAsts []sql.Expr
	aggs      []*aggItem
}

func (c *aggCollector) rewrite(e sql.Expr) (sql.Expr, error) {
	// Group expression match first (an aggregate call can legally be a
	// group key only if it appeared in GROUP BY, which we rejected).
	rendered := e.String()
	for i, g := range c.groupAsts {
		if g.String() == rendered {
			return &sql.Ident{Parts: []string{fmt.Sprintf("$group%d", i)}}, nil
		}
	}
	switch t := e.(type) {
	case *sql.FuncCall:
		if expr.IsAggregate(t.Name) {
			return c.recordAggregate(t)
		}
		args := make([]sql.Expr, len(t.Args))
		for i, arg := range t.Args {
			na, err := c.rewrite(arg)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &sql.FuncCall{Name: t.Name, Args: args}, nil
	case *sql.Binary:
		l, err := c.rewrite(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.rewrite(t.Right)
		if err != nil {
			return nil, err
		}
		return &sql.Binary{Op: t.Op, Left: l, Right: r}, nil
	case *sql.Unary:
		inner, err := c.rewrite(t.Expr)
		if err != nil {
			return nil, err
		}
		return &sql.Unary{Op: t.Op, Expr: inner}, nil
	case *sql.Between:
		v, err := c.rewrite(t.Expr)
		if err != nil {
			return nil, err
		}
		lo, err := c.rewrite(t.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.rewrite(t.Hi)
		if err != nil {
			return nil, err
		}
		return &sql.Between{Expr: v, Lo: lo, Hi: hi, Not: t.Not}, nil
	case *sql.InList:
		v, err := c.rewrite(t.Expr)
		if err != nil {
			return nil, err
		}
		list := make([]sql.Expr, len(t.List))
		for i, item := range t.List {
			list[i], err = c.rewrite(item)
			if err != nil {
				return nil, err
			}
		}
		return &sql.InList{Expr: v, List: list, Not: t.Not}, nil
	case *sql.IsNull:
		v, err := c.rewrite(t.Expr)
		if err != nil {
			return nil, err
		}
		return &sql.IsNull{Expr: v, Not: t.Not}, nil
	case *sql.Case:
		out := &sql.Case{}
		for _, w := range t.Whens {
			cond, err := c.rewrite(w.Cond)
			if err != nil {
				return nil, err
			}
			then, err := c.rewrite(w.Then)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, sql.WhenClause{Cond: cond, Then: then})
		}
		if t.Else != nil {
			e2, err := c.rewrite(t.Else)
			if err != nil {
				return nil, err
			}
			out.Else = e2
		}
		return out, nil
	case *sql.Cast:
		v, err := c.rewrite(t.Expr)
		if err != nil {
			return nil, err
		}
		return &sql.Cast{Expr: v, TypeName: t.TypeName}, nil
	case *sql.Literal:
		return t, nil
	case *sql.Ident:
		// Not a group key and not inside an aggregate: invalid reference.
		return nil, fmt.Errorf("planner: column %q must appear in GROUP BY or be used in an aggregate function", t)
	default:
		return nil, fmt.Errorf("planner: unsupported expression %T in aggregation query", e)
	}
}

func (c *aggCollector) recordAggregate(f *sql.FuncCall) (sql.Expr, error) {
	if containsAggregate(anyExprs(f.Args)) {
		return nil, fmt.Errorf("planner: nested aggregate in %s", f)
	}
	key := f.String()
	for i, existing := range c.aggs {
		if existing.key == key {
			return &sql.Ident{Parts: []string{fmt.Sprintf("$agg%d", i)}}, nil
		}
	}
	item := &aggItem{funcName: f.Name, distinct: f.Distinct, key: key, name: f.String()}
	var argTypes []*types.Type
	if !f.Star {
		for _, arg := range f.Args {
			ae, err := c.analyzer.analyzeExpr(arg, c.srcScope, false)
			if err != nil {
				return nil, err
			}
			item.args = append(item.args, ae)
			item.argAsts = append(item.argAsts, arg)
			argTypes = append(argTypes, ae.TypeOf())
		}
	}
	fn, err := expr.ResolveAggregate(f.Name, argTypes)
	if err != nil {
		// Try widening numeric args (avg over integer etc. already matches;
		// this covers sum(varchar) style errors cleanly).
		return nil, err
	}
	item.fn = fn
	c.aggs = append(c.aggs, item)
	return &sql.Ident{Parts: []string{fmt.Sprintf("$agg%d", len(c.aggs)-1)}}, nil
}
