package planner

import (
	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/types"
)

// Hybrid batch + real-time expansion: a scan of a hybrid table becomes
// union(historical scan, real-time scan) with the watermark predicate on
// each side (historical: time < boundary, real-time: time >= boundary), so
// one query transparently spans Parquet history and seconds-old druid
// segments. When the query's own time predicate proves a side empty (e.g.
// ts >= boundary), that side is pruned and no union is planned. The pass
// runs before the connector pushdown phases, so the boundary and user
// predicates are then pushed into each side's connector.

// expandHybridScans walks the plan top-down, matching Filter(TableScan)
// before the bare scan so the filter's time bounds can prune sides.
func (o *Optimizer) expandHybridScans(n Node) Node {
	if f, ok := n.(*Filter); ok {
		if scan, isScan := f.Child.(*TableScan); isScan {
			if spec, isHybrid := o.hybridSpec(scan); isHybrid {
				return o.expandHybrid(scan, spec, f.Predicate)
			}
		}
	}
	switch t := n.(type) {
	case *TableScan:
		if spec, isHybrid := o.hybridSpec(t); isHybrid {
			return o.expandHybrid(t, spec, nil)
		}
		return t
	case *Filter:
		t2 := *t
		t2.Child = o.expandHybridScans(t.Child)
		return &t2
	case *Project:
		t2 := *t
		t2.Child = o.expandHybridScans(t.Child)
		return &t2
	case *Aggregate:
		t2 := *t
		t2.Child = o.expandHybridScans(t.Child)
		return &t2
	case *Join:
		t2 := *t
		t2.Left = o.expandHybridScans(t.Left)
		t2.Right = o.expandHybridScans(t.Right)
		return &t2
	case *GeoJoin:
		t2 := *t
		t2.Left = o.expandHybridScans(t.Left)
		t2.Right = o.expandHybridScans(t.Right)
		return &t2
	case *Sort:
		t2 := *t
		t2.Child = o.expandHybridScans(t.Child)
		return &t2
	case *Limit:
		t2 := *t
		t2.Child = o.expandHybridScans(t.Child)
		return &t2
	case *Output:
		t2 := *t
		t2.Child = o.expandHybridScans(t.Child)
		return &t2
	case *Union:
		t2 := Union{Sources: make([]Node, len(t.Sources))}
		for i, src := range t.Sources {
			t2.Sources[i] = o.expandHybridScans(src)
		}
		return &t2
	default:
		return n
	}
}

func (o *Optimizer) hybridSpec(scan *TableScan) (connector.HybridSpec, bool) {
	conn, err := o.Catalogs.Get(scan.Catalog)
	if err != nil {
		return connector.HybridSpec{}, false
	}
	ht, ok := conn.(connector.HybridTable)
	if !ok {
		return connector.HybridSpec{}, false
	}
	return ht.HybridSpec(scan.Handle)
}

// expandHybrid replaces one hybrid scan (plus the predicate directly above
// it, if any) with the side scans.
func (o *Optimizer) expandHybrid(scan *TableScan, spec connector.HybridSpec, pred expr.RowExpression) Node {
	orig := func() Node {
		if pred == nil {
			return scan
		}
		return &Filter{Child: scan, Predicate: pred}
	}
	timeCh := -1
	for i, c := range scan.Cols {
		if c.Name == spec.TimeColumn {
			timeCh = i
			break
		}
	}
	var lo, hi *int64
	if pred != nil && timeCh >= 0 {
		lo, hi = timeInterval(pred, timeCh)
	}
	needHist := lo == nil || *lo < spec.Boundary
	needRT := hi == nil || *hi > spec.Boundary
	var sources []Node
	if needHist {
		side, err := o.buildSideScan(scan, spec.Historical, spec.TimeColumn, pred, "lt", spec.Boundary)
		if err != nil {
			return orig()
		}
		sources = append(sources, side)
	}
	if needRT {
		side, err := o.buildSideScan(scan, spec.Realtime, spec.TimeColumn, pred, "gte", spec.Boundary)
		if err != nil {
			return orig()
		}
		sources = append(sources, side)
	}
	switch len(sources) {
	case 0:
		// The time predicate is unsatisfiable; keep SQL semantics with an
		// empty relation of the scan's shape.
		return &Values{Cols: scan.Cols}
	case 1:
		return sources[0]
	default:
		return &Union{Sources: sources}
	}
}

// buildSideScan plans one side: a scan of the part's table producing the
// hybrid scan's columns, filtered by the boundary predicate (boundaryOp is
// "lt" for the historical side, "gte" for real-time) plus the user
// predicate. If the hybrid scan does not output the time column, it is
// scanned additionally and projected away after the filter.
func (o *Optimizer) buildSideScan(scan *TableScan, part connector.HybridPart, timeCol string, pred expr.RowExpression, boundaryOp string, boundary int64) (Node, error) {
	conn, err := o.Catalogs.Get(part.Catalog)
	if err != nil {
		return nil, err
	}
	schema, handle, err := conn.Metadata().GetTable(part.Schema, part.Table)
	if err != nil {
		return nil, err
	}
	side := &TableScan{
		Catalog:     part.Catalog,
		Schema:      part.Schema,
		Table:       part.Table,
		Handle:      handle,
		PushedLimit: -1,
	}
	timeCh := -1
	for i, c := range scan.Cols {
		ord := schema.ColumnIndex(c.Name)
		if ord < 0 {
			return nil, errMissingColumn(part, c.Name)
		}
		side.Cols = append(side.Cols, c)
		side.ColumnOrdinals = append(side.ColumnOrdinals, ord)
		if c.Name == timeCol {
			timeCh = i
		}
	}
	appended := false
	if timeCh < 0 {
		ord := schema.ColumnIndex(timeCol)
		if ord < 0 {
			return nil, errMissingColumn(part, timeCol)
		}
		side.Cols = append(side.Cols, Column{Name: timeCol, Type: schema.Columns[ord].Type})
		side.ColumnOrdinals = append(side.ColumnOrdinals, ord)
		timeCh = len(side.Cols) - 1
		appended = true
	}
	boundaryPred := expr.MustCall(boundaryOp,
		expr.NewVariable(timeCol, timeCh, side.Cols[timeCh].Type),
		expr.NewConstant(boundary, types.Bigint))
	full := expr.RowExpression(boundaryPred)
	if pred != nil {
		full = expr.And(boundaryPred, pred)
	}
	var out Node = &Filter{Child: side, Predicate: full}
	if appended {
		// Restore the hybrid scan's output shape.
		proj := &Project{Child: out}
		for i, c := range scan.Cols {
			proj.Exprs = append(proj.Exprs, expr.NewVariable(c.Name, i, c.Type))
			proj.Names = append(proj.Names, c.Name)
		}
		out = proj
	}
	return out, nil
}

func errMissingColumn(part connector.HybridPart, col string) error {
	return &missingColumnError{part: part, col: col}
}

type missingColumnError struct {
	part connector.HybridPart
	col  string
}

func (e *missingColumnError) Error() string {
	return "hybrid side " + e.part.Catalog + "." + e.part.Schema + "." + e.part.Table +
		" is missing column " + e.col
}

// timeInterval derives [lo, hi) bounds on the time channel from the
// predicate's conjuncts (col-vs-int64-constant comparisons only). Either
// bound is nil when unconstrained.
func timeInterval(pred expr.RowExpression, timeCh int) (lo, hi *int64) {
	raiseLo := func(v int64) {
		if lo == nil || v > *lo {
			lo = &v
		}
	}
	lowerHi := func(v int64) {
		if hi == nil || v < *hi {
			hi = &v
		}
	}
	for _, conj := range splitConjuncts(pred) {
		call, ok := conj.(*expr.Call)
		if !ok || len(call.Args) != 2 {
			continue
		}
		op := call.Handle.Name
		v, c, flipped := varConstArgs(call)
		if v == nil || v.Channel != timeCh {
			continue
		}
		cv, ok := c.Value.(int64)
		if !ok {
			continue
		}
		if flipped {
			op = map[string]string{"eq": "eq", "lt": "gt", "lte": "gte", "gt": "lt", "gte": "lte"}[op]
		}
		switch op {
		case "eq":
			raiseLo(cv)
			lowerHi(cv + 1)
		case "lt":
			lowerHi(cv)
		case "lte":
			lowerHi(cv + 1)
		case "gt":
			raiseLo(cv + 1)
		case "gte":
			raiseLo(cv)
		}
	}
	return lo, hi
}

// varConstArgs decomposes a binary call into (variable, constant); flipped
// reports the constant came first (const OP var).
func varConstArgs(call *expr.Call) (*expr.Variable, *expr.Constant, bool) {
	if v, ok := call.Args[0].(*expr.Variable); ok {
		if c, ok := call.Args[1].(*expr.Constant); ok {
			return v, c, false
		}
	}
	if v, ok := call.Args[1].(*expr.Variable); ok {
		if c, ok := call.Args[0].(*expr.Constant); ok {
			return v, c, true
		}
	}
	return nil, nil, false
}
