package planner

import (
	"fmt"
	"strings"

	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/sql"
	"prestolite/internal/types"
)

// Session carries per-query context: default catalog/schema for unqualified
// table names and session properties (e.g. join strategy, §XII.A).
type Session struct {
	Catalog string
	Schema  string
	User    string
	// Properties holds session properties such as "join_distribution_type"
	// ("partitioned" or "broadcast") and "geospatial_optimization"
	// ("true"/"false").
	Properties map[string]string
}

// Property returns a session property or its default.
func (s *Session) Property(name, def string) string {
	if s == nil || s.Properties == nil {
		return def
	}
	if v, ok := s.Properties[name]; ok {
		return v
	}
	return def
}

// Analyzer resolves an AST against connector metadata, producing a typed
// logical plan.
type Analyzer struct {
	Catalogs *connector.Registry
	Session  *Session
}

// Analyze plans a query. The returned plan is unoptimized.
func (a *Analyzer) Analyze(q *sql.Query) (Node, error) {
	plan, scope, err := a.planQuery(q)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(scope.entries))
	for i, e := range scope.entries {
		names[i] = e.name
	}
	return &Output{Child: plan, Names: names}, nil
}

// scopeEntry is one visible column during analysis.
type scopeEntry struct {
	qualifier string // table alias/name, "" for derived columns
	name      string
	typ       *types.Type
}

type scope struct {
	entries []scopeEntry
}

func (s *scope) columns() []Column {
	out := make([]Column, len(s.entries))
	for i, e := range s.entries {
		out[i] = Column{Name: e.name, Type: e.typ}
	}
	return out
}

// resolve finds the channel and residual dereference path for an identifier.
func (s *scope) resolve(parts []string) (channel int, rest []string, err error) {
	// Qualified match: parts[0] is a table qualifier.
	if len(parts) >= 2 {
		found := -1
		for i, e := range s.entries {
			if e.qualifier == parts[0] && e.name == parts[1] {
				if found >= 0 {
					return 0, nil, fmt.Errorf("planner: ambiguous column %s", strings.Join(parts, "."))
				}
				found = i
			}
		}
		if found >= 0 {
			return found, parts[2:], nil
		}
	}
	// Unqualified match on parts[0]; remaining parts dereference into structs.
	found := -1
	for i, e := range s.entries {
		if e.name == parts[0] {
			if found >= 0 {
				return 0, nil, fmt.Errorf("planner: ambiguous column %q", parts[0])
			}
			found = i
		}
	}
	if found >= 0 {
		return found, parts[1:], nil
	}
	return 0, nil, fmt.Errorf("planner: column %q cannot be resolved", strings.Join(parts, "."))
}

// planQuery plans a full SELECT query, returning the plan and output scope.
func (a *Analyzer) planQuery(q *sql.Query) (Node, *scope, error) {
	var plan Node
	var srcScope *scope
	var err error

	if q.From == nil {
		// SELECT <exprs>: single-row Values source.
		plan = &Values{Cols: nil, Rows: [][]any{{}}}
		srcScope = &scope{}
	} else {
		plan, srcScope, err = a.planTableRef(q.From)
		if err != nil {
			return nil, nil, err
		}
	}

	if q.Where != nil {
		pred, err := a.analyzeExpr(q.Where, srcScope, false)
		if err != nil {
			return nil, nil, err
		}
		if pred.TypeOf().Kind != types.KindBoolean && pred.TypeOf().Kind != types.KindUnknown {
			return nil, nil, fmt.Errorf("planner: WHERE clause must be boolean, got %s", pred.TypeOf())
		}
		if containsAggregate(q.Where) {
			return nil, nil, fmt.Errorf("planner: aggregate functions are not allowed in WHERE")
		}
		plan = &Filter{Child: plan, Predicate: pred}
	}

	hasAgg := len(q.GroupBy) > 0 || containsAggregate(selectExprs(q)) || (q.Having != nil)
	if hasAgg {
		return a.planAggregation(q, plan, srcScope)
	}

	// Plain projection.
	projExprs, projNames, err := a.analyzeSelectItems(q.Items, srcScope)
	if err != nil {
		return nil, nil, err
	}
	visible := len(projExprs)
	outScope := &scope{}
	for i := range projExprs {
		outScope.entries = append(outScope.entries, scopeEntry{name: projNames[i], typ: projExprs[i].TypeOf()})
	}

	// ORDER BY: resolve against output aliases/ordinals first, then source
	// scope (appending hidden projection channels).
	var sortKeys []SortKey
	if len(q.OrderBy) > 0 {
		for _, item := range q.OrderBy {
			ch, found, err := resolveOrderTarget(item.Expr, outScope, q.Items)
			if err != nil {
				return nil, nil, err
			}
			if !found {
				e, err := a.analyzeExpr(item.Expr, srcScope, false)
				if err != nil {
					return nil, nil, fmt.Errorf("planner: ORDER BY expression %s cannot be resolved: %w", item.Expr, err)
				}
				ch = len(projExprs)
				projExprs = append(projExprs, e)
				projNames = append(projNames, fmt.Sprintf("$sort%d", ch))
			}
			sortKeys = append(sortKeys, SortKey{Channel: ch, Desc: item.Desc})
		}
	}

	plan = &Project{Child: plan, Exprs: projExprs, Names: projNames}
	if len(sortKeys) > 0 {
		plan = &Sort{Child: plan, Keys: sortKeys}
	}
	if q.Limit != nil {
		plan = &Limit{Child: plan, N: *q.Limit}
	}
	if len(projExprs) > visible {
		// Trim hidden sort channels.
		trim := make([]expr.RowExpression, visible)
		names := make([]string, visible)
		cols := plan.Outputs()
		for i := 0; i < visible; i++ {
			trim[i] = expr.NewVariable(cols[i].Name, i, cols[i].Type)
			names[i] = projNames[i]
		}
		plan = &Project{Child: plan, Exprs: trim, Names: names}
	}
	return plan, outScope, nil
}

func selectExprs(q *sql.Query) []sql.Expr {
	var out []sql.Expr
	for _, it := range q.Items {
		if !it.Star {
			out = append(out, it.Expr)
		}
	}
	if q.Having != nil {
		out = append(out, q.Having)
	}
	for _, o := range q.OrderBy {
		out = append(out, o.Expr)
	}
	return out
}

// containsAggregate reports whether any expression contains an aggregate call.
func containsAggregate(e any) bool {
	switch t := e.(type) {
	case nil:
		return false
	case []sql.Expr:
		for _, x := range t {
			if containsAggregate(x) {
				return true
			}
		}
		return false
	case *sql.FuncCall:
		if expr.IsAggregate(t.Name) {
			return true
		}
		return containsAggregate(anyExprs(t.Args))
	case *sql.Binary:
		return containsAggregate(t.Left) || containsAggregate(t.Right)
	case *sql.Unary:
		return containsAggregate(t.Expr)
	case *sql.Between:
		return containsAggregate(t.Expr) || containsAggregate(t.Lo) || containsAggregate(t.Hi)
	case *sql.InList:
		return containsAggregate(t.Expr) || containsAggregate(anyExprs(t.List))
	case *sql.IsNull:
		return containsAggregate(t.Expr)
	case *sql.Case:
		for _, w := range t.Whens {
			if containsAggregate(w.Cond) || containsAggregate(w.Then) {
				return true
			}
		}
		return containsAggregate(t.Else)
	case *sql.Cast:
		return containsAggregate(t.Expr)
	default:
		return false
	}
}

func anyExprs(in []sql.Expr) []sql.Expr { return in }

// resolveOrderTarget maps an ORDER BY expression to an output channel via
// alias, ordinal, or textual match against a select item.
func resolveOrderTarget(e sql.Expr, out *scope, items []sql.SelectItem) (int, bool, error) {
	if lit, ok := e.(*sql.Literal); ok {
		n, ok := lit.Value.(int64)
		if !ok {
			return 0, false, fmt.Errorf("planner: ORDER BY position must be an integer")
		}
		if n < 1 || int(n) > len(out.entries) {
			return 0, false, fmt.Errorf("planner: ORDER BY position %d is out of range", n)
		}
		return int(n - 1), true, nil
	}
	if id, ok := e.(*sql.Ident); ok && len(id.Parts) == 1 {
		for i, entry := range out.entries {
			if entry.name == id.Parts[0] {
				return i, true, nil
			}
		}
	}
	rendered := e.String()
	for i, it := range items {
		if !it.Star && it.Expr.String() == rendered {
			return i, true, nil
		}
	}
	return 0, false, nil
}

// planTableRef plans a FROM-clause relation.
func (a *Analyzer) planTableRef(ref sql.TableRef) (Node, *scope, error) {
	switch t := ref.(type) {
	case *sql.TableName:
		return a.planTableName(t)
	case *sql.Subquery:
		inner, innerScope, err := a.planQuery(t.Query)
		if err != nil {
			return nil, nil, err
		}
		sc := &scope{}
		for _, e := range innerScope.entries {
			sc.entries = append(sc.entries, scopeEntry{qualifier: t.Alias, name: e.name, typ: e.typ})
		}
		return inner, sc, nil
	case *sql.Join:
		return a.planJoin(t)
	default:
		return nil, nil, fmt.Errorf("planner: unsupported relation %T", ref)
	}
}

func (a *Analyzer) planTableName(t *sql.TableName) (Node, *scope, error) {
	catalog, schema, table := "", "", ""
	switch len(t.Parts) {
	case 1:
		catalog, schema, table = a.Session.Catalog, a.Session.Schema, t.Parts[0]
	case 2:
		catalog, schema, table = a.Session.Catalog, t.Parts[0], t.Parts[1]
	case 3:
		catalog, schema, table = t.Parts[0], t.Parts[1], t.Parts[2]
	}
	if catalog == "" || schema == "" {
		return nil, nil, fmt.Errorf("planner: table %s needs a catalog and schema (no session defaults set)", t)
	}
	conn, err := a.Catalogs.Get(catalog)
	if err != nil {
		return nil, nil, err
	}
	ts, handle, err := conn.Metadata().GetTable(schema, table)
	if err != nil {
		return nil, nil, err
	}
	qualifier := t.Alias
	if qualifier == "" {
		qualifier = table
	}
	cols := make([]Column, len(ts.Columns))
	ordinals := make([]int, len(ts.Columns))
	sc := &scope{}
	for i, c := range ts.Columns {
		cols[i] = Column{Name: c.Name, Type: c.Type}
		ordinals[i] = i
		sc.entries = append(sc.entries, scopeEntry{qualifier: qualifier, name: c.Name, typ: c.Type})
	}
	return &TableScan{
		Catalog:        catalog,
		Schema:         schema,
		Table:          table,
		Handle:         handle,
		Cols:           cols,
		ColumnOrdinals: ordinals,
		PushedLimit:    -1,
	}, sc, nil
}

func (a *Analyzer) planJoin(j *sql.Join) (Node, *scope, error) {
	left, leftScope, err := a.planTableRef(j.Left)
	if err != nil {
		return nil, nil, err
	}
	right, rightScope, err := a.planTableRef(j.Right)
	if err != nil {
		return nil, nil, err
	}
	combined := &scope{entries: append(append([]scopeEntry{}, leftScope.entries...), rightScope.entries...)}

	kind := JoinInner
	switch j.Type {
	case sql.LeftJoin:
		kind = JoinLeft
	case sql.CrossJoin:
		kind = JoinCross
	}

	node := &Join{Kind: kind, Left: left, Right: right, Strategy: a.joinStrategy()}
	if j.On != nil {
		on, err := a.analyzeExpr(j.On, combined, false)
		if err != nil {
			return nil, nil, err
		}
		planned, err := buildJoinWithCondition(node, on, len(leftScope.entries))
		if err != nil {
			return nil, nil, err
		}
		return planned, combined, nil
	}
	return node, combined, nil
}

// buildJoinWithCondition splits a join condition into equi-keys and a
// residual. Equi-key sides that are expressions (e.g. dereferences of
// nested structs, t.base.driver_uuid = d.driver_uuid) are computed in
// projections below the join so the hash join can still key on them; a
// trimming projection above restores the original output channels.
func buildJoinWithCondition(node *Join, on expr.RowExpression, leftN int) (Node, error) {
	rightN := len(node.Right.Outputs())
	var extraLeft, extraRight []expr.RowExpression
	var rest []expr.RowExpression
	for _, c := range splitConjuncts(on) {
		call, ok := c.(*expr.Call)
		if !ok || call.Handle.Name != "eq" {
			rest = append(rest, c)
			continue
		}
		side := func(e expr.RowExpression) int { // 0 = left-only, 1 = right-only, -1 = mixed/constant
			chans := expr.ReferencedChannels(e)
			if len(chans) == 0 {
				return -1
			}
			left, right := false, false
			for _, ch := range chans {
				if ch < leftN {
					left = true
				} else {
					right = true
				}
			}
			switch {
			case left && !right:
				return 0
			case right && !left:
				return 1
			}
			return -1
		}
		a0, a1 := call.Args[0], call.Args[1]
		s0, s1 := side(a0), side(a1)
		var leftExpr, rightExpr expr.RowExpression
		switch {
		case s0 == 0 && s1 == 1:
			leftExpr, rightExpr = a0, a1
		case s0 == 1 && s1 == 0:
			leftExpr, rightExpr = a1, a0
		default:
			rest = append(rest, c)
			continue
		}
		// Remap the right-side expression to right-child channels.
		remap := map[int]int{}
		for _, ch := range expr.ReferencedChannels(rightExpr) {
			remap[ch] = ch - leftN
		}
		rightExpr = expr.RemapChannels(rightExpr, remap)

		if v, isVar := leftExpr.(*expr.Variable); isVar {
			node.LeftKeys = append(node.LeftKeys, v.Channel)
		} else {
			node.LeftKeys = append(node.LeftKeys, leftN+len(extraLeft))
			extraLeft = append(extraLeft, leftExpr)
		}
		if v, isVar := rightExpr.(*expr.Variable); isVar {
			node.RightKeys = append(node.RightKeys, v.Channel)
		} else {
			node.RightKeys = append(node.RightKeys, rightN+len(extraRight))
			extraRight = append(extraRight, rightExpr)
		}
	}
	if node.Kind == JoinCross && len(node.LeftKeys) > 0 {
		node.Kind = JoinInner
	}
	if len(extraLeft) == 0 && len(extraRight) == 0 {
		if len(rest) > 0 {
			node.Residual = expr.And(rest...)
		}
		return node, nil
	}
	// Wrap children with projections computing the extra key channels.
	node.Left = projectWithExtras(node.Left, extraLeft)
	node.Right = projectWithExtras(node.Right, extraRight)
	el := len(extraLeft)
	// Residual channels: left side unchanged; right side shifts by el.
	if len(rest) > 0 {
		remap := map[int]int{}
		for _, c := range rest {
			for _, ch := range expr.ReferencedChannels(c) {
				if ch < leftN {
					remap[ch] = ch
				} else {
					remap[ch] = ch + el
				}
			}
		}
		shifted := make([]expr.RowExpression, len(rest))
		for i, c := range rest {
			shifted[i] = expr.RemapChannels(c, remap)
		}
		node.Residual = expr.And(shifted...)
	}
	// Trim the extra key channels back out so the combined scope holds.
	outs := node.Outputs()
	exprs := make([]expr.RowExpression, 0, leftN+rightN)
	names := make([]string, 0, leftN+rightN)
	for ch := 0; ch < leftN; ch++ {
		exprs = append(exprs, expr.NewVariable(outs[ch].Name, ch, outs[ch].Type))
		names = append(names, outs[ch].Name)
	}
	for ch := 0; ch < rightN; ch++ {
		src := leftN + el + ch
		exprs = append(exprs, expr.NewVariable(outs[src].Name, src, outs[src].Type))
		names = append(names, outs[src].Name)
	}
	return &Project{Child: node, Exprs: exprs, Names: names}, nil
}

func projectWithExtras(child Node, extras []expr.RowExpression) Node {
	if len(extras) == 0 {
		return child
	}
	outs := child.Outputs()
	exprs := make([]expr.RowExpression, 0, len(outs)+len(extras))
	names := make([]string, 0, len(outs)+len(extras))
	for ch, c := range outs {
		exprs = append(exprs, expr.NewVariable(c.Name, ch, c.Type))
		names = append(names, c.Name)
	}
	for i, e := range extras {
		exprs = append(exprs, e)
		names = append(names, fmt.Sprintf("$joinkey%d", i))
	}
	return &Project{Child: child, Exprs: exprs, Names: names}
}

func (a *Analyzer) joinStrategy() JoinStrategy {
	if a.Session.Property("join_distribution_type", "partitioned") == "broadcast" {
		return JoinBroadcast
	}
	return JoinPartitioned
}

// splitConjuncts flattens nested ANDs.
func splitConjuncts(e expr.RowExpression) []expr.RowExpression {
	if sf, ok := e.(*expr.SpecialForm); ok && sf.Form == expr.FormAnd {
		var out []expr.RowExpression
		for _, a := range sf.Args {
			out = append(out, splitConjuncts(a)...)
		}
		return out
	}
	return []expr.RowExpression{e}
}

// analyzeSelectItems expands * and analyzes each projection.
func (a *Analyzer) analyzeSelectItems(items []sql.SelectItem, sc *scope) ([]expr.RowExpression, []string, error) {
	var exprs []expr.RowExpression
	var names []string
	for _, it := range items {
		if it.Star {
			for ch, e := range sc.entries {
				exprs = append(exprs, expr.NewVariable(e.name, ch, e.typ))
				names = append(names, e.name)
			}
			continue
		}
		e, err := a.analyzeExpr(it.Expr, sc, false)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
		names = append(names, selectItemName(it))
	}
	return exprs, names, nil
}

func selectItemName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if id, ok := it.Expr.(*sql.Ident); ok {
		return id.Parts[len(id.Parts)-1]
	}
	return strings.ToLower(it.Expr.String())
}
