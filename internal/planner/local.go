package planner

// This file is the planner's hook for intra-task (local) parallelism: the
// execution layer asks the plan where driver pipelines can split before it
// fans a fragment out across a task's drivers.

// ParallelEligible reports whether a plan (or plan fragment) can benefit
// from intra-task driver parallelism: it must contain at least one
// TableScan, the split-driven source that feeds a task's shared split
// queue. Fragments without one — a coordinator root reading only
// RemoteSources, or a constant Values plan — produce a single stream that
// parallel drivers could only sit idle behind, so they build serially.
func ParallelEligible(root Node) bool {
	if root == nil {
		return false
	}
	if _, ok := root.(*TableScan); ok {
		return true
	}
	for _, c := range root.Children() {
		if ParallelEligible(c) {
			return true
		}
	}
	return false
}
