package planner

import (
	"strings"
	"testing"

	"prestolite/internal/connector"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/expr"
	"prestolite/internal/sql"
	"prestolite/internal/types"
)

func testCatalogs(t *testing.T) *connector.Registry {
	t.Helper()
	mem := memory.New("memory")
	if err := mem.CreateTable("s", "t", []connector.Column{
		{Name: "a", Type: types.Bigint},
		{Name: "b", Type: types.Varchar},
		{Name: "c", Type: types.Double},
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := mem.CreateTable("s", "u", []connector.Column{
		{Name: "a", Type: types.Bigint},
		{Name: "d", Type: types.Varchar},
	}, nil); err != nil {
		t.Fatal(err)
	}
	reg := connector.NewRegistry()
	reg.Register("memory", mem)
	return reg
}

func plan(t *testing.T, query string, optimize bool) Node {
	t.Helper()
	q, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	session := &Session{Catalog: "memory", Schema: "s", Properties: map[string]string{}}
	catalogs := testCatalogs(t)
	a := &Analyzer{Catalogs: catalogs, Session: session}
	n, err := a.Analyze(q)
	if err != nil {
		t.Fatalf("analyze %q: %v", query, err)
	}
	if optimize {
		o := &Optimizer{Catalogs: catalogs, Session: session}
		n = o.Optimize(n)
	}
	if err := CheckTypes(n); err != nil {
		t.Fatalf("CheckTypes: %v", err)
	}
	return n
}

func TestAnalyzeShapes(t *testing.T) {
	n := plan(t, "SELECT a, b FROM t WHERE c > 1.0", false)
	out, ok := n.(*Output)
	if !ok {
		t.Fatalf("root = %T", n)
	}
	proj, ok := out.Child.(*Project)
	if !ok {
		t.Fatalf("child = %T", out.Child)
	}
	if _, ok := proj.Child.(*Filter); !ok {
		t.Fatalf("grandchild = %T", proj.Child)
	}
	cols := n.Outputs()
	if cols[0].Name != "a" || cols[0].Type != types.Bigint || cols[1].Type != types.Varchar {
		t.Errorf("outputs = %v", cols)
	}
}

func TestAggregationPlanShape(t *testing.T) {
	n := plan(t, "SELECT b, count(*) AS n, sum(a) FROM t GROUP BY b HAVING count(*) > 1", false)
	s := Format(n)
	for _, want := range []string{"Aggregate(SINGLE)", "count(*)", "sum(a)", "Filter"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan missing %q:\n%s", want, s)
		}
	}
}

func TestOptimizerPrunesAndPushes(t *testing.T) {
	n := plan(t, "SELECT a FROM t WHERE b = 'x' LIMIT 5", true)
	s := Format(n)
	if !strings.Contains(s, "filter=") || !strings.Contains(s, "limit=5") {
		t.Errorf("pushdowns missing:\n%s", s)
	}
	if strings.Contains(s, "- Filter[") {
		t.Errorf("filter should be absorbed:\n%s", s)
	}
	// c is unused and should be pruned from the scan output.
	if strings.Contains(s, " c") && strings.Contains(s, "=> [a, b, c]") {
		t.Errorf("columns not pruned:\n%s", s)
	}
}

func TestJoinKeyExtraction(t *testing.T) {
	n := plan(t, "SELECT t.b FROM t JOIN u ON t.a = u.a AND t.c > 1.0", false)
	var join *Join
	var walk func(Node)
	walk = func(x Node) {
		if j, ok := x.(*Join); ok {
			join = j
		}
		for _, c := range x.Children() {
			walk(c)
		}
	}
	walk(n)
	if join == nil {
		t.Fatal("no join in plan")
	}
	if len(join.LeftKeys) != 1 || len(join.RightKeys) != 1 {
		t.Errorf("keys = %v / %v", join.LeftKeys, join.RightKeys)
	}
	if join.Residual == nil {
		t.Error("non-equi conjunct should stay as residual")
	}
}

func TestFragmenterPartialFinalSplit(t *testing.T) {
	n := plan(t, "SELECT b, count(*), avg(a) FROM t GROUP BY b", true)
	f := &Fragmenter{}
	fp := f.Fragment(n)
	if len(fp.Sources) != 1 {
		t.Fatalf("sources = %d", len(fp.Sources))
	}
	rootStr := Format(fp.Root.Root)
	srcStr := Format(fp.Sources[1].Root)
	if !strings.Contains(rootStr, "Aggregate(FINAL)") || !strings.Contains(rootStr, "RemoteSource") {
		t.Errorf("root fragment:\n%s", rootStr)
	}
	if !strings.Contains(srcStr, "Aggregate(PARTIAL)") || !strings.Contains(srcStr, "TableScan") {
		t.Errorf("source fragment:\n%s", srcStr)
	}
	// The partial's intermediate type for avg is a row(sum, count).
	partial := fp.Sources[1].Root.(*Aggregate)
	outs := partial.Outputs()
	if outs[2].Type.Kind != types.KindRow {
		t.Errorf("avg intermediate type = %v", outs[2].Type)
	}
}

func TestFragmenterDistinctStaysSingle(t *testing.T) {
	n := plan(t, "SELECT count(distinct b) FROM t", true)
	fp := (&Fragmenter{}).Fragment(n)
	rootStr := Format(fp.Root.Root)
	if !strings.Contains(rootStr, "Aggregate(SINGLE)") {
		t.Errorf("distinct aggregation must not split:\n%s", rootStr)
	}
}

func TestFragmenterConstantQuery(t *testing.T) {
	n := plan(t, "SELECT 1 + 1", true)
	fp := (&Fragmenter{}).Fragment(n)
	if !fp.SingleFragment() {
		t.Error("constant query should be coordinator-only")
	}
}

func TestSessionProperties(t *testing.T) {
	s := &Session{Properties: map[string]string{"join_distribution_type": "broadcast"}}
	if s.Property("join_distribution_type", "partitioned") != "broadcast" {
		t.Error("property lookup failed")
	}
	if s.Property("missing", "dflt") != "dflt" {
		t.Error("default lookup failed")
	}
	var nilSession *Session
	if nilSession.Property("x", "d") != "d" {
		t.Error("nil session should return default")
	}
	n := plan(t, "SELECT t.b FROM t JOIN u ON t.a = u.a", false)
	_ = n // strategy checked via Describe below
	q, _ := sql.ParseQuery("SELECT t.b FROM t JOIN u ON t.a = u.a")
	a := &Analyzer{Catalogs: testCatalogs(t), Session: &Session{Catalog: "memory", Schema: "s",
		Properties: map[string]string{"join_distribution_type": "broadcast"}}}
	bn, err := a.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Format(bn), "BROADCAST") {
		t.Errorf("broadcast strategy missing:\n%s", Format(bn))
	}
}

func TestCheckTypesCatchesBadChannels(t *testing.T) {
	scan := &TableScan{Catalog: "x", Schema: "s", Table: "t",
		Cols: []Column{{Name: "a", Type: types.Bigint}}, ColumnOrdinals: []int{0}, PushedLimit: -1}
	bad := &Filter{Child: scan, Predicate: expr.MustCall("eq",
		expr.NewVariable("ghost", 7, types.Bigint), expr.NewConstant(int64(1), types.Bigint))}
	if err := CheckTypes(bad); err == nil {
		t.Error("out-of-range channel accepted")
	}
}

func TestPlanGobRoundTrip(t *testing.T) {
	// Fragments ship to workers via gob; the full node tree must survive.
	n := plan(t, "SELECT b, count(*) FROM t WHERE a > 1 GROUP BY b", true)
	fp := (&Fragmenter{}).Fragment(n)
	for _, frag := range fp.Sources {
		data, err := encodeGob(frag.Root)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := decodeGob(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if Format(back) != Format(frag.Root) {
			t.Errorf("gob round trip changed plan:\n%s\nvs\n%s", Format(back), Format(frag.Root))
		}
	}
}

func TestConstantFolding(t *testing.T) {
	n := plan(t, "SELECT a + (1 + 2) FROM t WHERE b = upper('x')", true)
	s := Format(n)
	if !strings.Contains(s, "3") {
		t.Errorf("1 + 2 not folded:\n%s", s)
	}
	if strings.Contains(s, "upper") {
		t.Errorf("upper('x') not folded:\n%s", s)
	}
	if !strings.Contains(s, "'X'") {
		t.Errorf("folded constant missing:\n%s", s)
	}
	// Runtime errors are preserved, not folded away.
	n2 := plan(t, "SELECT a / 0 FROM t", true)
	if !strings.Contains(Format(n2), "/ 0") {
		t.Errorf("division by zero should stay:\n%s", Format(n2))
	}
}
