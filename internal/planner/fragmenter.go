package planner

import (
	"fmt"
)

// The fragmenter divides the physical plan into fragments (§III: "the
// fragmenter divides the plan into fragments. Each running plan fragment is
// called a stage"). Source fragments (scan + filter + project + partial
// aggregation) run as tasks on workers, one or more splits per task; the
// root fragment runs on the coordinator, reading worker output through
// RemoteSource exchanges and performing final aggregation, joins, sort and
// limit.

// Fragment is one executable plan fragment.
type Fragment struct {
	ID   int
	Root Node
	// IsSource marks worker-side fragments driven by table splits.
	IsSource bool
	// TableKey is "catalog.schema.table" for the fragment's scan; the
	// scheduler uses it to route split assignments.
	TableKey string
	// Scan is the fragment's table scan (source fragments only).
	Scan *TableScan
}

// FragmentedPlan is the full decomposition.
type FragmentedPlan struct {
	// Root runs on the coordinator.
	Root *Fragment
	// Sources run on workers, indexed by fragment ID.
	Sources map[int]*Fragment
}

// SingleFragment reports whether the plan has no worker-side work (e.g.
// SELECT 1): the coordinator executes everything.
func (fp *FragmentedPlan) SingleFragment() bool { return len(fp.Sources) == 0 }

// Fragmenter splits plans.
type Fragmenter struct {
	nextID int
}

// Fragment decomposes a plan.
func (f *Fragmenter) Fragment(root Node) *FragmentedPlan {
	fp := &FragmentedPlan{Sources: map[int]*Fragment{}}
	f.nextID = 1
	newRoot := f.rewrite(root, fp)
	fp.Root = &Fragment{ID: 0, Root: newRoot}
	return fp
}

// rewrite replaces maximal scan-local subtrees with RemoteSources.
func (f *Fragmenter) rewrite(n Node, fp *FragmentedPlan) Node {
	// Partial/final aggregation split (Fig 2): Aggregate over a scan-local
	// subtree becomes AggPartial on workers + AggFinal on the coordinator.
	if agg, ok := n.(*Aggregate); ok && agg.Step == AggSingle && isScanLocal(agg.Child) && scanOf(agg.Child) != nil && !hasDistinct(agg) {
		partial := &Aggregate{Child: agg.Child, GroupBy: agg.GroupBy, Aggs: agg.Aggs, Step: AggPartial}
		frag := f.newSourceFragment(partial, fp)
		remote := &RemoteSource{FragmentID: frag.ID, Cols: partial.Outputs()}
		return finalOver(remote, agg)
	}
	// The same split over a hybrid union: one partial-aggregation source
	// fragment per union side, one final aggregation over the concatenated
	// partials.
	if agg, ok := n.(*Aggregate); ok && agg.Step == AggSingle && !hasDistinct(agg) {
		if u, isUnion := agg.Child.(*Union); isUnion && allScanLocal(u.Sources) {
			remotes := make([]Node, len(u.Sources))
			for i, src := range u.Sources {
				partial := &Aggregate{Child: src, GroupBy: agg.GroupBy, Aggs: agg.Aggs, Step: AggPartial}
				frag := f.newSourceFragment(partial, fp)
				remotes[i] = &RemoteSource{FragmentID: frag.ID, Cols: partial.Outputs()}
			}
			return finalOver(&Union{Sources: remotes}, agg)
		}
	}
	if isScanLocal(n) {
		if scanOf(n) == nil {
			return n // constant-only subtree (Values): keep local
		}
		frag := f.newSourceFragment(n, fp)
		return &RemoteSource{FragmentID: frag.ID, Cols: n.Outputs()}
	}
	switch t := n.(type) {
	case *Output:
		t2 := *t
		t2.Child = f.rewrite(t.Child, fp)
		return &t2
	case *Filter:
		t2 := *t
		t2.Child = f.rewrite(t.Child, fp)
		return &t2
	case *Project:
		t2 := *t
		t2.Child = f.rewrite(t.Child, fp)
		return &t2
	case *Aggregate:
		t2 := *t
		t2.Child = f.rewrite(t.Child, fp)
		return &t2
	case *Join:
		t2 := *t
		t2.Left = f.rewrite(t.Left, fp)
		t2.Right = f.rewrite(t.Right, fp)
		return &t2
	case *GeoJoin:
		t2 := *t
		t2.Left = f.rewrite(t.Left, fp)
		t2.Right = f.rewrite(t.Right, fp)
		return &t2
	case *Sort:
		t2 := *t
		t2.Child = f.rewrite(t.Child, fp)
		return &t2
	case *Limit:
		t2 := *t
		t2.Child = f.rewrite(t.Child, fp)
		return &t2
	case *Union:
		// Each union side becomes its own source fragment (hybrid tables:
		// one per connector), read back through RemoteSources.
		t2 := Union{Sources: make([]Node, len(t.Sources))}
		for i, src := range t.Sources {
			t2.Sources[i] = f.rewrite(src, fp)
		}
		return &t2
	default:
		return n
	}
}

// finalOver builds the AggFinal matching agg over the given (remote) child.
func finalOver(child Node, agg *Aggregate) *Aggregate {
	groups := len(agg.GroupBy)
	finalAggs := make([]Aggregation, len(agg.Aggs))
	for i, a := range agg.Aggs {
		fa := a
		fa.Args = []int{groups + i} // the intermediate channel
		finalAggs[i] = fa
	}
	finalGroups := make([]int, groups)
	for i := range finalGroups {
		finalGroups[i] = i
	}
	return &Aggregate{Child: child, GroupBy: finalGroups, Aggs: finalAggs, Step: AggFinal}
}

func allScanLocal(nodes []Node) bool {
	for _, n := range nodes {
		if !isScanLocal(n) || scanOf(n) == nil {
			return false
		}
	}
	return true
}

func (f *Fragmenter) newSourceFragment(root Node, fp *FragmentedPlan) *Fragment {
	scan := scanOf(root)
	frag := &Fragment{
		ID:       f.nextID,
		Root:     root,
		IsSource: true,
		TableKey: fmt.Sprintf("%s.%s.%s", scan.Catalog, scan.Schema, scan.Table),
		Scan:     scan,
	}
	f.nextID++
	fp.Sources[frag.ID] = frag
	return frag
}

// isScanLocal reports whether the subtree is a scan with only per-row
// operators above it (safe to run independently per split).
func isScanLocal(n Node) bool {
	switch t := n.(type) {
	case *TableScan:
		return true
	case *Values:
		return true
	case *Filter:
		return isScanLocal(t.Child)
	case *Project:
		return isScanLocal(t.Child)
	default:
		return false
	}
}

func scanOf(n Node) *TableScan {
	switch t := n.(type) {
	case *TableScan:
		return t
	case *Filter:
		return scanOf(t.Child)
	case *Project:
		return scanOf(t.Child)
	case *Aggregate:
		return scanOf(t.Child)
	default:
		return nil
	}
}

func hasDistinct(a *Aggregate) bool {
	for _, agg := range a.Aggs {
		if agg.Distinct {
			return true
		}
	}
	return false
}

// FormatFragments renders all fragments for EXPLAIN (DISTRIBUTED).
func FormatFragments(fp *FragmentedPlan) string {
	out := "Fragment 0 (coordinator):\n" + Format(fp.Root.Root)
	for id := 1; id < 1+len(fp.Sources); id++ {
		frag, ok := fp.Sources[id]
		if !ok {
			continue
		}
		out += fmt.Sprintf("Fragment %d (source, table %s):\n%s", frag.ID, frag.TableKey, Format(frag.Root))
	}
	return out
}
