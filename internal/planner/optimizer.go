package planner

import (
	"fmt"
	"strings"

	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/types"
)

// Optimizer runs rule-based optimization passes over a logical plan:
// predicate normalization, connector pushdowns (§IV.A: projection, predicate,
// limit; §IV.B: aggregation), column pruning, and the geospatial QuadTree
// rewrite (§VI Fig 13).
type Optimizer struct {
	Catalogs *connector.Registry
	Session  *Session
}

// Optimize rewrites the plan. It never fails the query: rules that cannot
// apply simply leave the tree unchanged.
func (o *Optimizer) Optimize(root Node) Node {
	// Phase 0: constant folding (rule-based, no statistics — §XII.A).
	root = rewrite(root, foldConstants)
	// Phase 1: move predicates to where they can be absorbed.
	for i := 0; i < 5; i++ {
		before := Format(root)
		root = rewrite(root, mergeFilters)
		root = rewrite(root, pushFilterThroughProject)
		root = rewrite(root, pushFilterThroughJoin)
		if Format(root) == before {
			break
		}
	}
	// Phase 1b: expand hybrid scans into union(historical, real-time) before
	// the per-connector pushdown phases, so the boundary and user predicates
	// are pushed into each side's connector.
	root = o.expandHybridScans(root)
	// Phase 2: spatial join rewrite (needs predicates in join residuals).
	if o.Session.Property("geospatial_optimization", "true") == "true" {
		root = rewrite(root, rewriteGeoJoin)
	}
	// Phase 3: predicate pushdown into connectors.
	root = rewrite(root, o.pushFilterIntoScan)
	// Phase 4: column pruning (projection pushdown).
	root = pruneRoot(root, o.Catalogs)
	root = rewrite(root, removeIdentityProject)
	// Phase 4b: dereference pushdown (nested column pruning, §V.D).
	root = rewrite(root, o.pushDereferences)
	// Phase 5: aggregation pushdown into connectors.
	root = rewrite(root, o.pushAggregationIntoScan)
	root = rewrite(root, removeIdentityProject)
	// Phase 6: limit pushdown into connectors.
	root = rewrite(root, o.pushLimitIntoScan)
	return root
}

// rewrite applies fn bottom-up over the tree.
func rewrite(n Node, fn func(Node) Node) Node {
	switch t := n.(type) {
	case *Filter:
		t2 := *t
		t2.Child = rewrite(t.Child, fn)
		return fn(&t2)
	case *Project:
		t2 := *t
		t2.Child = rewrite(t.Child, fn)
		return fn(&t2)
	case *Aggregate:
		t2 := *t
		t2.Child = rewrite(t.Child, fn)
		return fn(&t2)
	case *Join:
		t2 := *t
		t2.Left = rewrite(t.Left, fn)
		t2.Right = rewrite(t.Right, fn)
		return fn(&t2)
	case *GeoJoin:
		t2 := *t
		t2.Left = rewrite(t.Left, fn)
		t2.Right = rewrite(t.Right, fn)
		return fn(&t2)
	case *Sort:
		t2 := *t
		t2.Child = rewrite(t.Child, fn)
		return fn(&t2)
	case *Limit:
		t2 := *t
		t2.Child = rewrite(t.Child, fn)
		return fn(&t2)
	case *Output:
		t2 := *t
		t2.Child = rewrite(t.Child, fn)
		return fn(&t2)
	case *Union:
		t2 := Union{Sources: make([]Node, len(t.Sources))}
		for i, src := range t.Sources {
			t2.Sources[i] = rewrite(src, fn)
		}
		return fn(&t2)
	default:
		return fn(n)
	}
}

// mergeFilters collapses Filter(Filter(x)) into one conjunction.
func mergeFilters(n Node) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	inner, ok := f.Child.(*Filter)
	if !ok {
		return n
	}
	return &Filter{Child: inner.Child, Predicate: expr.And(inner.Predicate, f.Predicate)}
}

// pushFilterThroughProject moves Filter(Project(x)) to Project(Filter(x)) by
// inlining projected expressions into the predicate.
func pushFilterThroughProject(n Node) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	p, ok := f.Child.(*Project)
	if !ok {
		return n
	}
	inlined := expr.Rewrite(f.Predicate, func(e expr.RowExpression) expr.RowExpression {
		if v, ok := e.(*expr.Variable); ok {
			return p.Exprs[v.Channel]
		}
		return e
	})
	return &Project{Child: &Filter{Child: p.Child, Predicate: inlined}, Exprs: p.Exprs, Names: p.Names}
}

// pushFilterThroughJoin distributes conjuncts of Filter(Join) to the join
// side they reference, or into the join residual.
func pushFilterThroughJoin(n Node) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	j, ok := f.Child.(*Join)
	if !ok {
		return n
	}
	leftN := len(j.Left.Outputs())
	totalN := leftN + len(j.Right.Outputs())
	var leftPreds, rightPreds, joinPreds []expr.RowExpression
	for _, c := range splitConjuncts(f.Predicate) {
		chans := expr.ReferencedChannels(c)
		onlyLeft, onlyRight := true, true
		for _, ch := range chans {
			if ch >= leftN {
				onlyLeft = false
			}
			if ch < leftN {
				onlyRight = false
			}
			if ch >= totalN {
				onlyLeft, onlyRight = false, false
			}
		}
		switch {
		case onlyLeft && j.Kind != JoinLeft: // pushing below a LEFT join's left side is fine, actually
			leftPreds = append(leftPreds, c)
		case onlyLeft:
			leftPreds = append(leftPreds, c)
		case onlyRight && j.Kind == JoinInner || onlyRight && j.Kind == JoinCross:
			remap := map[int]int{}
			for _, ch := range chans {
				remap[ch] = ch - leftN
			}
			rightPreds = append(rightPreds, expr.RemapChannels(c, remap))
		default:
			joinPreds = append(joinPreds, c)
		}
	}
	if len(leftPreds) == 0 && len(rightPreds) == 0 && len(joinPreds) == len(splitConjuncts(f.Predicate)) {
		return n // nothing moved
	}
	nj := *j
	if len(leftPreds) > 0 {
		nj.Left = &Filter{Child: j.Left, Predicate: expr.And(leftPreds...)}
	}
	if len(rightPreds) > 0 {
		nj.Right = &Filter{Child: j.Right, Predicate: expr.And(rightPreds...)}
	}
	if len(joinPreds) > 0 {
		if nj.Kind == JoinInner || nj.Kind == JoinCross {
			// Mixed-side predicates become part of the join; expression
			// keys (e.g. nested dereferences) get computed-key projections.
			all := joinPreds
			if nj.Residual != nil {
				all = append([]expr.RowExpression{nj.Residual}, all...)
			}
			nj.Residual = nil
			planned, err := buildJoinWithCondition(&nj, expr.And(all...), leftN)
			if err != nil {
				nj.Residual = expr.And(all...)
				return &nj
			}
			return planned
		}
		return &Filter{Child: &nj, Predicate: expr.And(joinPreds...)}
	}
	return &nj
}

// pushFilterIntoScan hands predicates to connectors that implement
// FilterPushdown (§IV.A).
func (o *Optimizer) pushFilterIntoScan(n Node) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	scan, ok := f.Child.(*TableScan)
	if !ok {
		return n
	}
	conn, err := o.Catalogs.Get(scan.Catalog)
	if err != nil {
		return n
	}
	fp, ok := conn.(connector.FilterPushdown)
	if !ok {
		return n
	}
	// Channels in the predicate refer to scan outputs; convert to table
	// ordinals for the connector.
	remap := map[int]int{}
	for out, ord := range scan.ColumnOrdinals {
		remap[out] = ord
	}
	chans := expr.ReferencedChannels(f.Predicate)
	for _, ch := range chans {
		if _, ok := remap[ch]; !ok {
			return n
		}
	}
	tablePred := expr.RemapChannels(f.Predicate, remap)
	schema := o.tableSchema(conn, scan)
	newHandle, residual, pushed := fp.PushFilter(scan.Handle, tablePred, schema)
	if !pushed {
		return n
	}
	ns := *scan
	ns.Handle = newHandle
	ns.PushedFilter = tablePred.String()
	if residual == nil {
		return &ns
	}
	// Residual comes back in table ordinals; map back to scan channels.
	back := map[int]int{}
	for out, ord := range scan.ColumnOrdinals {
		back[ord] = out
	}
	return &Filter{Child: &ns, Predicate: expr.RemapChannels(residual, back)}
}

func (o *Optimizer) tableSchema(conn connector.Connector, scan *TableScan) *connector.TableSchema {
	ts, _, err := conn.Metadata().GetTable(scan.Schema, scan.Table)
	if err != nil {
		return &connector.TableSchema{Catalog: scan.Catalog, Schema: scan.Schema, Table: scan.Table}
	}
	return ts
}

// removeIdentityProject drops projections that pass all channels through.
func removeIdentityProject(n Node) Node {
	p, ok := n.(*Project)
	if !ok {
		return n
	}
	if !p.IsIdentity() {
		return n
	}
	childOut := p.Child.Outputs()
	for i := range childOut {
		if childOut[i].Name != p.Names[i] {
			return n // keeps renames
		}
	}
	return p.Child
}

// pushAggregationIntoScan absorbs Aggregate(TableScan) into connectors that
// implement AggregationPushdown (§IV.B): Druid/Pinot-style stores execute
// the aggregation natively and only aggregated rows stream into the engine.
func (o *Optimizer) pushAggregationIntoScan(n Node) Node {
	agg, ok := n.(*Aggregate)
	if !ok || agg.Step != AggSingle {
		return n
	}
	// Look through a pure column-selection projection (the pre-aggregation
	// projection frequently just reorders scan outputs).
	child := agg.Child
	var viaProject []int
	if p, isProj := child.(*Project); isProj {
		perm := make([]int, len(p.Exprs))
		pure := true
		for i, e := range p.Exprs {
			v, isVar := e.(*expr.Variable)
			if !isVar {
				pure = false
				break
			}
			perm[i] = v.Channel
		}
		if pure {
			viaProject = perm
			child = p.Child
		}
	}
	scan, ok := child.(*TableScan)
	if !ok {
		return n
	}
	mapChannel := func(ch int) int {
		if viaProject != nil {
			ch = viaProject[ch]
		}
		return scan.ColumnOrdinals[ch]
	}
	conn, err := o.Catalogs.Get(scan.Catalog)
	if err != nil {
		return n
	}
	ap, ok := conn.(connector.AggregationPushdown)
	if !ok {
		return n
	}
	var specs []connector.AggregateSpec
	for _, a := range agg.Aggs {
		if a.Distinct {
			return n
		}
		spec := connector.AggregateSpec{Function: a.FuncName, ArgColumn: -1, OutputName: a.OutputName, OutputType: a.FinalType}
		switch a.FuncName {
		case "count":
			if len(a.Args) == 1 {
				spec.ArgColumn = mapChannel(a.Args[0])
			} else if len(a.Args) > 1 {
				return n
			}
		case "sum", "min", "max", "avg":
			if len(a.Args) != 1 {
				return n
			}
			spec.ArgColumn = mapChannel(a.Args[0])
		default:
			return n
		}
		specs = append(specs, spec)
	}
	groupOrds := make([]int, len(agg.GroupBy))
	for i, ch := range agg.GroupBy {
		groupOrds[i] = mapChannel(ch)
	}
	newHandle, pushed := ap.PushAggregation(scan.Handle, specs, groupOrds)
	if !pushed {
		return n
	}
	// Scan output becomes group keys then aggregate results.
	outs := agg.Outputs()
	ns := *scan
	ns.Handle = newHandle
	ns.Cols = outs
	ns.ColumnOrdinals = make([]int, len(outs))
	for i := range outs {
		ns.ColumnOrdinals[i] = i
	}
	descs := make([]string, len(agg.Aggs))
	for i := range agg.Aggs {
		descs[i] = agg.Aggs[i].describe(agg.Child)
	}
	ns.PushedAgg = strings.Join(descs, ", ")
	return &ns
}

// pushLimitIntoScan hands LIMIT to connectors implementing LimitPushdown,
// possibly through pass-through projections.
func (o *Optimizer) pushLimitIntoScan(n Node) Node {
	l, ok := n.(*Limit)
	if !ok {
		return n
	}
	// Walk through projections that don't change cardinality.
	child := l.Child
	var projs []*Project
	for {
		if p, ok := child.(*Project); ok {
			projs = append(projs, p)
			child = p.Child
			continue
		}
		break
	}
	scan, ok := child.(*TableScan)
	if !ok {
		return n
	}
	conn, err := o.Catalogs.Get(scan.Catalog)
	if err != nil {
		return n
	}
	lp, ok := conn.(connector.LimitPushdown)
	if !ok {
		return n
	}
	newHandle, guaranteed, pushed := lp.PushLimit(scan.Handle, l.N)
	if !pushed {
		return n
	}
	ns := *scan
	ns.Handle = newHandle
	ns.PushedLimit = l.N
	var rebuilt Node = &ns
	for i := len(projs) - 1; i >= 0; i-- {
		rebuilt = &Project{Child: rebuilt, Exprs: projs[i].Exprs, Names: projs[i].Names}
	}
	if guaranteed {
		return rebuilt
	}
	return &Limit{Child: rebuilt, N: l.N}
}

// ---------------------------------------------------------------------------
// Geospatial rewrite (§VI Fig 13): a join whose condition is
// st_contains(shape, st_point(lng, lat)) becomes a GeoJoin that builds a
// QuadTree over the shapes on the fly (build_geo_index) and probes it,
// instead of evaluating st_contains for every pair.

func rewriteGeoJoin(n Node) Node {
	j, ok := n.(*Join)
	if !ok || j.Residual == nil || len(j.LeftKeys) > 0 {
		return n
	}
	if j.Kind != JoinInner && j.Kind != JoinCross {
		return n
	}
	leftN := len(j.Left.Outputs())
	conjuncts := splitConjuncts(j.Residual)
	for i, c := range conjuncts {
		call, ok := c.(*expr.Call)
		if !ok || call.Handle.Name != "st_contains" || len(call.Args) != 2 {
			continue
		}
		shapeVar, ok := call.Args[0].(*expr.Variable)
		if !ok {
			continue
		}
		point, ok := call.Args[1].(*expr.Call)
		if !ok || point.Handle.Name != "st_point" || len(point.Args) != 2 {
			continue
		}
		lng, lat := point.Args[0], point.Args[1]
		// Shape must come from one side and the point from the other.
		lngChans := expr.ReferencedChannels(lng)
		latChans := expr.ReferencedChannels(lat)
		pointChans := append(append([]int{}, lngChans...), latChans...)
		if shapeVar.Channel >= leftN && allBelow(pointChans, leftN) {
			// point from left, shape from right: canonical orientation.
			rest := append(append([]expr.RowExpression{}, conjuncts[:i]...), conjuncts[i+1:]...)
			geo := &GeoJoin{
				Left:      j.Left,
				Right:     j.Right,
				Lng:       lng,
				Lat:       lat,
				ShapeChan: shapeVar.Channel - leftN,
			}
			if len(rest) == 0 {
				return geo
			}
			return &Filter{Child: geo, Predicate: expr.And(rest...)}
		}
		if shapeVar.Channel < leftN && allAtLeast(pointChans, leftN) {
			// shape from left, point from right: swap sides, then restore
			// the original channel order with a projection.
			remapPoint := map[int]int{}
			for _, ch := range pointChans {
				remapPoint[ch] = ch - leftN
			}
			rest := append(append([]expr.RowExpression{}, conjuncts[:i]...), conjuncts[i+1:]...)
			rightN := len(j.Right.Outputs())
			geo := &GeoJoin{
				Left:      j.Right,
				Right:     j.Left,
				Lng:       expr.RemapChannels(lng, remapPoint),
				Lat:       expr.RemapChannels(lat, remapPoint),
				ShapeChan: shapeVar.Channel,
			}
			// geo outputs: right-side (rightN) then left-side (leftN);
			// rebuild original order left++right.
			outs := geo.Outputs()
			exprs := make([]expr.RowExpression, leftN+rightN)
			names := make([]string, leftN+rightN)
			for ch := 0; ch < leftN; ch++ {
				exprs[ch] = expr.NewVariable(outs[rightN+ch].Name, rightN+ch, outs[rightN+ch].Type)
				names[ch] = outs[rightN+ch].Name
			}
			for ch := 0; ch < rightN; ch++ {
				exprs[leftN+ch] = expr.NewVariable(outs[ch].Name, ch, outs[ch].Type)
				names[leftN+ch] = outs[ch].Name
			}
			var out Node = &Project{Child: geo, Exprs: exprs, Names: names}
			if len(rest) > 0 {
				out = &Filter{Child: out, Predicate: expr.And(rest...)}
			}
			return out
		}
	}
	return n
}

func allBelow(chans []int, n int) bool {
	for _, c := range chans {
		if c >= n {
			return false
		}
	}
	return true
}

func allAtLeast(chans []int, n int) bool {
	for _, c := range chans {
		if c < n {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Column pruning (projection pushdown, §IV.A / §V.D nested column pruning at
// the plan level). Walks top-down computing required channels, narrowing
// Projects, Aggregates, Joins and TableScans; scans hand the projection to
// connectors implementing ProjectionPushdown.

func pruneRoot(root Node, catalogs *connector.Registry) Node {
	out, ok := root.(*Output)
	if !ok {
		all := identityChannels(len(root.Outputs()))
		pruned, _ := pruneNode(root, all, catalogs)
		return pruned
	}
	all := identityChannels(len(out.Child.Outputs()))
	child, mapping := pruneNode(out.Child, all, catalogs)
	_ = mapping
	return &Output{Child: child, Names: out.Names}
}

func identityChannels(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// pruneNode narrows n to the required channels (sorted, deduped). It returns
// the new node and a mapping old-channel → new-channel (-1 if dropped). The
// new node's outputs contain at least the required channels.
func pruneNode(n Node, required []int, catalogs *connector.Registry) (Node, []int) {
	width := len(n.Outputs())
	required = normalizeChannels(required, width)
	switch t := n.(type) {
	case *TableScan:
		if len(required) == width {
			return t, identityChannels(width)
		}
		ns := *t
		ns.Cols = make([]Column, len(required))
		ns.ColumnOrdinals = make([]int, len(required))
		mapping := fill(width, -1)
		for newCh, oldCh := range required {
			ns.Cols[newCh] = t.Cols[oldCh]
			ns.ColumnOrdinals[newCh] = t.ColumnOrdinals[oldCh]
			mapping[oldCh] = newCh
		}
		// Hand the projection to the connector when supported.
		if conn, err := catalogs.Get(t.Catalog); err == nil {
			if pp, ok := conn.(connector.ProjectionPushdown); ok {
				if nh, pushed := pp.PushProjection(ns.Handle, ns.ColumnOrdinals); pushed {
					ns.Handle = nh
					ns.ColumnOrdinals = identityChannels(len(required))
				}
			}
		}
		return &ns, mapping
	case *Values:
		if len(required) == width {
			return t, identityChannels(width)
		}
		nv := &Values{}
		mapping := fill(width, -1)
		for newCh, oldCh := range required {
			nv.Cols = append(nv.Cols, t.Cols[oldCh])
			mapping[oldCh] = newCh
		}
		for _, row := range t.Rows {
			nr := make([]any, len(required))
			for newCh, oldCh := range required {
				nr[newCh] = row[oldCh]
			}
			nv.Rows = append(nv.Rows, nr)
		}
		return nv, mapping
	case *RemoteSource:
		return t, identityChannels(width)
	case *Project:
		childNeeds := map[int]bool{}
		for _, ch := range required {
			for _, c := range expr.ReferencedChannels(t.Exprs[ch]) {
				childNeeds[c] = true
			}
		}
		newChild, childMap := pruneNode(t.Child, keys(childNeeds), catalogs)
		np := &Project{Child: newChild}
		mapping := fill(width, -1)
		for newCh, oldCh := range required {
			np.Exprs = append(np.Exprs, remapExpr(t.Exprs[oldCh], childMap))
			np.Names = append(np.Names, t.Names[oldCh])
			mapping[oldCh] = newCh
		}
		return np, mapping
	case *Filter:
		childNeeds := map[int]bool{}
		for _, ch := range required {
			childNeeds[ch] = true
		}
		for _, c := range expr.ReferencedChannels(t.Predicate) {
			childNeeds[c] = true
		}
		newChild, childMap := pruneNode(t.Child, keys(childNeeds), catalogs)
		nf := &Filter{Child: newChild, Predicate: remapExpr(t.Predicate, childMap)}
		return nf, childMap
	case *Limit:
		newChild, childMap := pruneNode(t.Child, required, catalogs)
		return &Limit{Child: newChild, N: t.N}, childMap
	case *Sort:
		childNeeds := map[int]bool{}
		for _, ch := range required {
			childNeeds[ch] = true
		}
		for _, k := range t.Keys {
			childNeeds[k.Channel] = true
		}
		newChild, childMap := pruneNode(t.Child, keys(childNeeds), catalogs)
		ns := &Sort{Child: newChild}
		for _, k := range t.Keys {
			ns.Keys = append(ns.Keys, SortKey{Channel: childMap[k.Channel], Desc: k.Desc})
		}
		return ns, childMap
	case *Aggregate:
		// Group keys always stay (they define grouping); unused aggregates
		// are dropped.
		groups := len(t.GroupBy)
		neededAggs := map[int]bool{}
		for _, ch := range required {
			if ch >= groups {
				neededAggs[ch-groups] = true
			}
		}
		childNeeds := map[int]bool{}
		for _, ch := range t.GroupBy {
			childNeeds[ch] = true
		}
		for i, a := range t.Aggs {
			if !neededAggs[i] {
				continue
			}
			for _, ch := range a.Args {
				childNeeds[ch] = true
			}
		}
		newChild, childMap := pruneNode(t.Child, keys(childNeeds), catalogs)
		na := &Aggregate{Child: newChild, Step: t.Step}
		for _, ch := range t.GroupBy {
			na.GroupBy = append(na.GroupBy, childMap[ch])
		}
		mapping := fill(width, -1)
		for i := 0; i < groups; i++ {
			mapping[i] = i
		}
		for i, a := range t.Aggs {
			if !neededAggs[i] {
				continue
			}
			na2 := a
			na2.Args = make([]int, len(a.Args))
			for j, ch := range a.Args {
				na2.Args[j] = childMap[ch]
			}
			mapping[groups+i] = groups + len(na.Aggs)
			na.Aggs = append(na.Aggs, na2)
		}
		return na, mapping
	case *Join:
		leftN := len(t.Left.Outputs())
		leftNeeds, rightNeeds := map[int]bool{}, map[int]bool{}
		for _, ch := range required {
			if ch < leftN {
				leftNeeds[ch] = true
			} else {
				rightNeeds[ch-leftN] = true
			}
		}
		for _, k := range t.LeftKeys {
			leftNeeds[k] = true
		}
		for _, k := range t.RightKeys {
			rightNeeds[k] = true
		}
		if t.Residual != nil {
			for _, ch := range expr.ReferencedChannels(t.Residual) {
				if ch < leftN {
					leftNeeds[ch] = true
				} else {
					rightNeeds[ch-leftN] = true
				}
			}
		}
		newLeft, leftMap := pruneNode(t.Left, keys(leftNeeds), catalogs)
		newRight, rightMap := pruneNode(t.Right, keys(rightNeeds), catalogs)
		nj := &Join{Kind: t.Kind, Strategy: t.Strategy, Left: newLeft, Right: newRight}
		for i := range t.LeftKeys {
			nj.LeftKeys = append(nj.LeftKeys, leftMap[t.LeftKeys[i]])
			nj.RightKeys = append(nj.RightKeys, rightMap[t.RightKeys[i]])
		}
		newLeftN := len(newLeft.Outputs())
		mapping := fill(width, -1)
		for old, nw := range leftMap {
			if nw >= 0 {
				mapping[old] = nw
			}
		}
		for old, nw := range rightMap {
			if nw >= 0 {
				mapping[leftN+old] = newLeftN + nw
			}
		}
		if t.Residual != nil {
			nj.Residual = remapExpr(t.Residual, mapping)
		}
		return nj, mapping
	case *GeoJoin:
		leftN := len(t.Left.Outputs())
		leftNeeds, rightNeeds := map[int]bool{}, map[int]bool{}
		for _, ch := range required {
			if ch < leftN {
				leftNeeds[ch] = true
			} else {
				rightNeeds[ch-leftN] = true
			}
		}
		for _, ch := range expr.ReferencedChannels(t.Lng) {
			leftNeeds[ch] = true
		}
		for _, ch := range expr.ReferencedChannels(t.Lat) {
			leftNeeds[ch] = true
		}
		rightNeeds[t.ShapeChan] = true
		newLeft, leftMap := pruneNode(t.Left, keys(leftNeeds), catalogs)
		newRight, rightMap := pruneNode(t.Right, keys(rightNeeds), catalogs)
		ng := &GeoJoin{
			Left:      newLeft,
			Right:     newRight,
			Lng:       remapExpr(t.Lng, leftMap),
			Lat:       remapExpr(t.Lat, leftMap),
			ShapeChan: rightMap[t.ShapeChan],
		}
		newLeftN := len(newLeft.Outputs())
		mapping := fill(width, -1)
		for old, nw := range leftMap {
			if nw >= 0 {
				mapping[old] = nw
			}
		}
		for old, nw := range rightMap {
			if nw >= 0 {
				mapping[leftN+old] = newLeftN + nw
			}
		}
		return ng, mapping
	case *Union:
		// Prune each source with the same required set; sides may prune
		// asymmetrically (e.g. a residual Filter survives on one side only),
		// so realize exactly the required channels on every source with a
		// Project built from that source's own mapping.
		nu := &Union{Sources: make([]Node, len(t.Sources))}
		for i, src := range t.Sources {
			newSrc, srcMap := pruneNode(src, required, catalogs)
			exact := len(newSrc.Outputs()) == len(required)
			if exact {
				for newCh, oldCh := range required {
					if srcMap[oldCh] != newCh {
						exact = false
						break
					}
				}
			}
			if exact {
				nu.Sources[i] = newSrc
				continue
			}
			srcOut := newSrc.Outputs()
			proj := &Project{Child: newSrc}
			for _, oldCh := range required {
				ch := srcMap[oldCh]
				proj.Exprs = append(proj.Exprs, expr.NewVariable(srcOut[ch].Name, ch, srcOut[ch].Type))
				proj.Names = append(proj.Names, srcOut[ch].Name)
			}
			nu.Sources[i] = proj
		}
		mapping := fill(width, -1)
		for newCh, oldCh := range required {
			mapping[oldCh] = newCh
		}
		return nu, mapping
	default:
		return n, identityChannels(width)
	}
}

func normalizeChannels(chans []int, width int) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range chans {
		if c >= 0 && c < width && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sortInts(out)
	return out
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func fill(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func remapExpr(e expr.RowExpression, mapping []int) expr.RowExpression {
	m := map[int]int{}
	for old, nw := range mapping {
		if nw >= 0 {
			m[old] = nw
		}
	}
	return expr.RemapChannels(e, m)
}

// ---------------------------------------------------------------------------

// CheckTypes sanity-checks plan invariants (used by tests): every expression
// references valid child channels.
func CheckTypes(n Node) error {
	for _, c := range n.Children() {
		if err := CheckTypes(c); err != nil {
			return err
		}
	}
	validate := func(e expr.RowExpression, width int, where string) error {
		for _, ch := range expr.ReferencedChannels(e) {
			if ch < 0 || ch >= width {
				return fmt.Errorf("planner: %s references channel %d of width %d", where, ch, width)
			}
		}
		return nil
	}
	switch t := n.(type) {
	case *Filter:
		if t.Predicate.TypeOf().Kind != types.KindBoolean && t.Predicate.TypeOf().Kind != types.KindUnknown {
			return fmt.Errorf("planner: filter predicate has type %s", t.Predicate.TypeOf())
		}
		return validate(t.Predicate, len(t.Child.Outputs()), "filter")
	case *Project:
		for _, e := range t.Exprs {
			if err := validate(e, len(t.Child.Outputs()), "project"); err != nil {
				return err
			}
		}
	case *Join:
		if t.Residual != nil {
			return validate(t.Residual, len(t.Left.Outputs())+len(t.Right.Outputs()), "join residual")
		}
	case *Union:
		width := len(t.Sources[0].Outputs())
		for i, src := range t.Sources[1:] {
			if len(src.Outputs()) != width {
				return fmt.Errorf("planner: union source %d has width %d, want %d", i+1, len(src.Outputs()), width)
			}
		}
	}
	return nil
}

// foldConstants evaluates constant subexpressions at plan time (the engine
// keeps a rule-based optimizer per §XII.A; folding needs no statistics).
// Expressions that would error at runtime (e.g. division by zero) are left
// in place so the error surfaces during execution, matching SQL semantics.
func foldConstants(n Node) Node {
	fold := func(e expr.RowExpression) expr.RowExpression {
		return expr.Rewrite(e, func(x expr.RowExpression) expr.RowExpression {
			switch t := x.(type) {
			case *expr.Call:
				if !allConstants(t.Args) {
					return x
				}
				v, err := expr.EvalRowValue(t, nil)
				if err != nil {
					return x
				}
				return expr.NewConstant(v, t.Ret)
			case *expr.SpecialForm:
				// DEREFERENCE args include the field-name constant; folding
				// would corrupt it. AND/OR/NOT/IN/BETWEEN/IF over constants
				// fold fine.
				if t.Form == expr.FormDereference || !allConstants(t.Args) {
					return x
				}
				v, err := expr.EvalRowValue(t, nil)
				if err != nil {
					return x
				}
				return expr.NewConstant(v, t.Ret)
			}
			return x
		})
	}
	switch t := n.(type) {
	case *Filter:
		return &Filter{Child: t.Child, Predicate: fold(t.Predicate)}
	case *Project:
		exprs := make([]expr.RowExpression, len(t.Exprs))
		for i, e := range t.Exprs {
			exprs[i] = fold(e)
		}
		return &Project{Child: t.Child, Exprs: exprs, Names: t.Names}
	default:
		return n
	}
}

func allConstants(args []expr.RowExpression) bool {
	for _, a := range args {
		if _, ok := a.(*expr.Constant); !ok {
			return false
		}
	}
	return true
}
