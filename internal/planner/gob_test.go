package planner

import (
	"bytes"
	"encoding/gob"
)

func encodeGob(n Node) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&n); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeGob(data []byte) (Node, error) {
	var n Node
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&n); err != nil {
		return nil, err
	}
	return n, nil
}
