package planner

import (
	"fmt"
	"strings"

	"prestolite/internal/expr"
	"prestolite/internal/sql"
	"prestolite/internal/types"
)

var binaryOpNames = map[string]string{
	"+": "add", "-": "subtract", "*": "multiply", "/": "divide", "%": "modulus",
	"=": "eq", "<>": "neq", "<": "lt", "<=": "lte", ">": "gt", ">=": "gte",
}

// analyzeExpr converts an AST expression to a RowExpression over sc's
// channels. allowAgg permits aggregate calls (used only via the aggregation
// planner's dedicated resolver, so normal paths pass false).
func (a *Analyzer) analyzeExpr(e sql.Expr, sc *scope, allowAgg bool) (expr.RowExpression, error) {
	switch t := e.(type) {
	case *sql.Literal:
		return literalToConstant(t)
	case *sql.Ident:
		ch, rest, err := sc.resolve(t.Parts)
		if err != nil {
			return nil, err
		}
		var out expr.RowExpression = expr.NewVariable(strings.Join(t.Parts[:len(t.Parts)-len(rest)], "."), ch, sc.entries[ch].typ)
		for _, field := range rest {
			out, err = expr.Dereference(out, field)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	case *sql.Binary:
		return a.analyzeBinary(t, sc, allowAgg)
	case *sql.Unary:
		inner, err := a.analyzeExpr(t.Expr, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "NOT":
			if inner.TypeOf().Kind != types.KindBoolean && inner.TypeOf().Kind != types.KindUnknown {
				return nil, fmt.Errorf("planner: NOT requires boolean, got %s", inner.TypeOf())
			}
			return expr.Not(inner), nil
		case "-":
			if c, ok := inner.(*expr.Constant); ok {
				switch v := c.Value.(type) {
				case int64:
					return expr.NewConstant(-v, c.Type), nil
				case float64:
					return expr.NewConstant(-v, c.Type), nil
				}
			}
			return expr.NewCall("negate", inner)
		}
		return nil, fmt.Errorf("planner: unsupported unary operator %q", t.Op)
	case *sql.FuncCall:
		if expr.IsAggregate(t.Name) && !allowAgg {
			return nil, fmt.Errorf("planner: aggregate %q is not allowed here", t.Name)
		}
		args := make([]expr.RowExpression, len(t.Args))
		for i, arg := range t.Args {
			ae, err := a.analyzeExpr(arg, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			args[i] = ae
		}
		return a.resolveCallWithCoercion(t.Name, args)
	case *sql.Between:
		v, err := a.analyzeExpr(t.Expr, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		lo, err := a.analyzeExpr(t.Lo, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		hi, err := a.analyzeExpr(t.Hi, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		v, lo, err = coercePair(v, lo)
		if err != nil {
			return nil, err
		}
		v, hi, err = coercePair(v, hi)
		if err != nil {
			return nil, err
		}
		out := &expr.SpecialForm{Form: expr.FormBetween, Args: []expr.RowExpression{v, lo, hi}, Ret: types.Boolean}
		if t.Not {
			return expr.Not(out), nil
		}
		return out, nil
	case *sql.InList:
		needle, err := a.analyzeExpr(t.Expr, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		args := []expr.RowExpression{needle}
		for _, item := range t.List {
			ie, err := a.analyzeExpr(item, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			n2, i2, err := coercePair(needle, ie)
			if err != nil {
				return nil, err
			}
			if n2 != needle {
				// Needle widened: re-coerce all previous items.
				needle = n2
				args[0] = needle
			}
			args = append(args, i2)
		}
		out := &expr.SpecialForm{Form: expr.FormIn, Args: args, Ret: types.Boolean}
		if t.Not {
			return expr.Not(out), nil
		}
		return out, nil
	case *sql.IsNull:
		inner, err := a.analyzeExpr(t.Expr, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		var out expr.RowExpression = &expr.SpecialForm{Form: expr.FormIsNull, Args: []expr.RowExpression{inner}, Ret: types.Boolean}
		if t.Not {
			out = expr.Not(out)
		}
		return out, nil
	case *sql.Case:
		return a.analyzeCase(t, sc, allowAgg)
	case *sql.Cast:
		inner, err := a.analyzeExpr(t.Expr, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		target, err := types.Parse(t.TypeName)
		if err != nil {
			return nil, fmt.Errorf("planner: bad CAST target: %w", err)
		}
		return castTo(inner, target)
	default:
		return nil, fmt.Errorf("planner: unsupported expression %T", e)
	}
}

func literalToConstant(l *sql.Literal) (expr.RowExpression, error) {
	if l.IsDate {
		days, err := expr.EpochDate(l.Value.(string))
		if err != nil {
			return nil, err
		}
		return expr.NewConstant(days, types.Date), nil
	}
	switch v := l.Value.(type) {
	case nil:
		return expr.Null(), nil
	case int64:
		return expr.NewConstant(v, types.Bigint), nil
	case float64:
		return expr.NewConstant(v, types.Double), nil
	case string:
		return expr.NewConstant(v, types.Varchar), nil
	case bool:
		return expr.NewConstant(v, types.Boolean), nil
	}
	return nil, fmt.Errorf("planner: unsupported literal %T", l.Value)
}

func (a *Analyzer) analyzeBinary(b *sql.Binary, sc *scope, allowAgg bool) (expr.RowExpression, error) {
	left, err := a.analyzeExpr(b.Left, sc, allowAgg)
	if err != nil {
		return nil, err
	}
	right, err := a.analyzeExpr(b.Right, sc, allowAgg)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case "AND":
		return expr.And(left, right), nil
	case "OR":
		return expr.Or(left, right), nil
	case "||":
		return a.resolveCallWithCoercion("concat", []expr.RowExpression{left, right})
	case "LIKE":
		return a.resolveCallWithCoercion("like", []expr.RowExpression{left, right})
	}
	name, ok := binaryOpNames[b.Op]
	if !ok {
		return nil, fmt.Errorf("planner: unsupported operator %q", b.Op)
	}
	left, right, err = coercePair(left, right)
	if err != nil {
		return nil, fmt.Errorf("planner: %s: %w", b, err)
	}
	return expr.NewCall(name, left, right)
}

func (a *Analyzer) analyzeCase(c *sql.Case, sc *scope, allowAgg bool) (expr.RowExpression, error) {
	// Desugar to nested IFs; result type is the common super type of arms.
	var conds, thens []expr.RowExpression
	for _, w := range c.Whens {
		cond, err := a.analyzeExpr(w.Cond, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		then, err := a.analyzeExpr(w.Then, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		conds = append(conds, cond)
		thens = append(thens, then)
	}
	var elseE expr.RowExpression = expr.Null()
	if c.Else != nil {
		var err error
		elseE, err = a.analyzeExpr(c.Else, sc, allowAgg)
		if err != nil {
			return nil, err
		}
	}
	resType := elseE.TypeOf()
	for _, t := range thens {
		ct := types.CommonSuperType(resType, t.TypeOf())
		if ct == nil {
			return nil, fmt.Errorf("planner: CASE arms have incompatible types %s and %s", resType, t.TypeOf())
		}
		resType = ct
	}
	var err error
	elseE, err = castTo(elseE, resType)
	if err != nil {
		return nil, err
	}
	out := elseE
	for i := len(conds) - 1; i >= 0; i-- {
		then, err := castTo(thens[i], resType)
		if err != nil {
			return nil, err
		}
		out = &expr.SpecialForm{Form: expr.FormIf, Args: []expr.RowExpression{conds[i], then, out}, Ret: resType}
	}
	return out, nil
}

// resolveCallWithCoercion tries an exact overload, then numeric widening of
// all numeric args to double.
func (a *Analyzer) resolveCallWithCoercion(name string, args []expr.RowExpression) (expr.RowExpression, error) {
	call, err := expr.NewCall(name, args...)
	if err == nil {
		return call, nil
	}
	// Widen bigint args to double and retry (e.g. sqrt(bigint)).
	widened := make([]expr.RowExpression, len(args))
	changed := false
	for i, arg := range args {
		if arg.TypeOf().Kind == types.KindBigint || arg.TypeOf().Kind == types.KindInteger {
			w, werr := castTo(arg, types.Double)
			if werr == nil {
				widened[i] = w
				changed = true
				continue
			}
		}
		widened[i] = arg
	}
	if changed {
		if call2, err2 := expr.NewCall(name, widened...); err2 == nil {
			return call2, nil
		}
	}
	return nil, err
}

// coercePair inserts casts so both sides share a common super type.
func coercePair(l, r expr.RowExpression) (expr.RowExpression, expr.RowExpression, error) {
	lt, rt := l.TypeOf(), r.TypeOf()
	if lt.Equals(rt) {
		return l, r, nil
	}
	common := types.CommonSuperType(lt, rt)
	if common == nil {
		return nil, nil, fmt.Errorf("cannot compare or combine %s with %s", lt, rt)
	}
	var err error
	l, err = castTo(l, common)
	if err != nil {
		return nil, nil, err
	}
	r, err = castTo(r, common)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// castTo coerces e to target, inserting a to_<type> call when needed.
func castTo(e expr.RowExpression, target *types.Type) (expr.RowExpression, error) {
	src := e.TypeOf()
	if src.Equals(target) {
		return e, nil
	}
	if src.Kind == types.KindUnknown {
		// NULL literal adopts the target type directly.
		if c, ok := e.(*expr.Constant); ok && c.Value == nil {
			return expr.NewConstant(nil, target), nil
		}
	}
	var fn string
	switch target.Kind {
	case types.KindBigint, types.KindInteger:
		fn = "to_bigint"
	case types.KindDouble:
		fn = "to_double"
	case types.KindVarchar:
		fn = "to_varchar"
	case types.KindBoolean:
		fn = "to_boolean"
	case types.KindDate:
		fn = "to_date"
	default:
		return nil, fmt.Errorf("planner: cannot cast %s to %s", src, target)
	}
	// Fold constant casts eagerly so literals keep their natural form.
	call, err := expr.NewCall(fn, e)
	if err != nil {
		return nil, fmt.Errorf("planner: cannot cast %s to %s: %w", src, target, err)
	}
	if c, ok := e.(*expr.Constant); ok && c.Value != nil {
		if v, err := expr.EvalRowValue(call, nil); err == nil {
			return expr.NewConstant(v, target), nil
		}
	}
	return call, nil
}
