package planner

import (
	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/types"
)

// Dereference pushdown: nested column pruning at the plan level (§V.D). A
// projection that only touches subfields of a struct column —
// e.g. SELECT base.driver_uuid ... WHERE base.city_id = 12 — becomes a scan
// of exactly those dotted paths when the connector supports
// NestedProjectionPushdown, so the reader never materializes the other 18+
// fields of the struct.

// pushDereferences matches Project(TableScan) and lowers dereference chains
// into nested scan paths.
func (o *Optimizer) pushDereferences(n Node) Node {
	p, ok := n.(*Project)
	if !ok {
		return n
	}
	scan, ok := p.Child.(*TableScan)
	if !ok {
		return n
	}
	if scan.PushedAgg != "" {
		return n
	}
	conn, err := o.Catalogs.Get(scan.Catalog)
	if err != nil {
		return n
	}
	npd, ok := conn.(connector.NestedProjectionPushdown)
	if !ok {
		return n
	}

	var paths []string
	pathIdx := map[string]int{}
	anyDeref := false
	getVar := func(path string, t *types.Type) *expr.Variable {
		idx, seen := pathIdx[path]
		if !seen {
			idx = len(paths)
			pathIdx[path] = idx
			paths = append(paths, path)
		}
		return expr.NewVariable(path, idx, t)
	}

	// Top-down rewrite: match whole dereference chains before descending.
	var rw func(e expr.RowExpression) expr.RowExpression
	rw = func(e expr.RowExpression) expr.RowExpression {
		switch t := e.(type) {
		case *expr.Variable:
			return getVar(scan.Cols[t.Channel].Name, t.Type)
		case *expr.SpecialForm:
			if t.Form == expr.FormDereference {
				if path, ok := derefChainPath(t, scan); ok {
					anyDeref = true
					return getVar(path, t.Ret)
				}
			}
			args := make([]expr.RowExpression, len(t.Args))
			for i, a := range t.Args {
				args[i] = rw(a)
			}
			return &expr.SpecialForm{Form: t.Form, Args: args, Ret: t.Ret}
		case *expr.Call:
			args := make([]expr.RowExpression, len(t.Args))
			for i, a := range t.Args {
				args[i] = rw(a)
			}
			return &expr.Call{Handle: t.Handle, Args: args, Ret: t.Ret}
		default:
			return e
		}
	}
	newExprs := make([]expr.RowExpression, len(p.Exprs))
	for i, e := range p.Exprs {
		newExprs[i] = rw(e)
	}
	if !anyDeref {
		return n
	}
	newHandle, newCols, pushed := npd.PushNestedPaths(scan.Handle, paths)
	if !pushed {
		return n
	}
	ns := *scan
	ns.Handle = newHandle
	ns.Cols = make([]Column, len(newCols))
	for i, c := range newCols {
		ns.Cols[i] = Column{Name: c.Name, Type: c.Type}
	}
	ns.ColumnOrdinals = identityChannels(len(newCols))
	return &Project{Child: &ns, Exprs: newExprs, Names: p.Names}
}

// derefChainPath extracts "col.f1.f2" from a dereference chain rooted at a
// scan output variable. The DEREFERENCE field argument is a constant name.
func derefChainPath(sf *expr.SpecialForm, scan *TableScan) (string, bool) {
	fieldConst, ok := sf.Args[1].(*expr.Constant)
	if !ok {
		return "", false
	}
	field, ok := fieldConst.Value.(string)
	if !ok {
		return "", false
	}
	switch base := sf.Args[0].(type) {
	case *expr.Variable:
		return scan.Cols[base.Channel].Name + "." + field, true
	case *expr.SpecialForm:
		if base.Form != expr.FormDereference {
			return "", false
		}
		prefix, ok := derefChainPath(base, scan)
		if !ok {
			return "", false
		}
		return prefix + "." + field, true
	default:
		return "", false
	}
}
