// Package planner turns the SQL AST into a typed logical plan, optimizes it
// (rule-based optimizer with connector pushdowns, §IV), and fragments it into
// stages for distributed execution (§III Fig 1: logical plan → physical plan
// → fragments).
package planner

import (
	"encoding/gob"
	"fmt"
	"strings"

	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/types"
)

func init() {
	gob.Register(&TableScan{})
	gob.Register(&Values{})
	gob.Register(&Filter{})
	gob.Register(&Project{})
	gob.Register(&Aggregate{})
	gob.Register(&Join{})
	gob.Register(&GeoJoin{})
	gob.Register(&Sort{})
	gob.Register(&Limit{})
	gob.Register(&Output{})
	gob.Register(&RemoteSource{})
	gob.Register(&Union{})
	gob.Register(&expr.Constant{})
	gob.Register(&expr.Variable{})
	gob.Register(&expr.Call{})
	gob.Register(&expr.SpecialForm{})
	gob.Register(&expr.Lambda{})
	// Boxed values inside Values rows and expression constants.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register(false)
	gob.Register("")
	gob.Register([]any{})
	gob.Register([][2]any{})
}

// Column is one output channel of a plan node.
type Column struct {
	Name string
	Type *types.Type
}

// Node is a logical (and, post-fragmentation, physical) plan node. All nodes
// must be gob-serializable so fragments can ship to workers.
type Node interface {
	// Outputs lists the node's output channels in order.
	Outputs() []Column
	// Children returns input nodes (empty for leaves).
	Children() []Node
	// Describe renders a one-line summary for EXPLAIN.
	Describe() string
}

// ---------------------------------------------------------------------------

// Values is an inline relation (SELECT without FROM, constant folding).
type Values struct {
	Cols []Column
	Rows [][]any
}

func (v *Values) Outputs() []Column { return v.Cols }
func (v *Values) Children() []Node  { return nil }
func (v *Values) Describe() string  { return fmt.Sprintf("Values[%d rows]", len(v.Rows)) }

// TableScan reads a table through a connector. Pushdown rules mutate the
// Handle and the pushed-state fields (which exist for EXPLAIN and for the
// executor's column mapping).
type TableScan struct {
	Catalog string
	Schema  string
	Table   string
	Handle  connector.TableHandle
	// Cols are the scan's current output columns.
	Cols []Column
	// ColumnOrdinals maps each output channel to the connector's column
	// ordinal (post any projection pushdown these are indexes into the
	// pushed projection).
	ColumnOrdinals []int
	// PushedFilter, PushedLimit, PushedAgg document absorbed work.
	PushedFilter string
	PushedLimit  int64 // -1 when none
	PushedAgg    string
}

func (t *TableScan) Outputs() []Column { return t.Cols }
func (t *TableScan) Children() []Node  { return nil }

func (t *TableScan) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TableScan[%s.%s.%s", t.Catalog, t.Schema, t.Table)
	if t.Handle != nil {
		// The handle's description carries connector-specific pushed state
		// (filters, partitions, projections, limits).
		fmt.Fprintf(&sb, ", %s", t.Handle.Description())
	}
	if t.PushedAgg != "" {
		fmt.Fprintf(&sb, ", aggregation=%s", t.PushedAgg)
	}
	names := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c.Name
	}
	fmt.Fprintf(&sb, "] => [%s]", strings.Join(names, ", "))
	return sb.String()
}

// Filter keeps rows where Predicate is true.
type Filter struct {
	Child     Node
	Predicate expr.RowExpression
}

func (f *Filter) Outputs() []Column { return f.Child.Outputs() }
func (f *Filter) Children() []Node  { return []Node{f.Child} }
func (f *Filter) Describe() string  { return "Filter[" + f.Predicate.String() + "]" }

// Project computes output channels from input channels.
type Project struct {
	Child Node
	Exprs []expr.RowExpression
	Names []string
}

func (p *Project) Outputs() []Column {
	out := make([]Column, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = Column{Name: p.Names[i], Type: e.TypeOf()}
	}
	return out
}

func (p *Project) Children() []Node { return []Node{p.Child} }

func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = p.Names[i] + " := " + e.String()
	}
	return "Project[" + strings.Join(parts, ", ") + "]"
}

// IsIdentity reports whether the project passes all child channels through
// unchanged.
func (p *Project) IsIdentity() bool {
	childOut := p.Child.Outputs()
	if len(p.Exprs) != len(childOut) {
		return false
	}
	for i, e := range p.Exprs {
		v, ok := e.(*expr.Variable)
		if !ok || v.Channel != i {
			return false
		}
	}
	return true
}

// AggStep distinguishes single-node aggregation from the distributed
// partial/final split (Fig 2).
type AggStep int

const (
	AggSingle AggStep = iota
	AggPartial
	AggFinal
)

func (s AggStep) String() string {
	switch s {
	case AggPartial:
		return "PARTIAL"
	case AggFinal:
		return "FINAL"
	}
	return "SINGLE"
}

// Aggregation is one aggregate computation.
type Aggregation struct {
	FuncName   string
	Args       []int // input channels (empty for count(*))
	ArgTypes   []*types.Type
	Distinct   bool
	OutputName string
	// Resolved output types.
	InterType *types.Type
	FinalType *types.Type
}

func (a *Aggregation) describe(child Node) string {
	argNames := make([]string, len(a.Args))
	childOut := child.Outputs()
	for i, ch := range a.Args {
		if ch < len(childOut) {
			argNames[i] = childOut[ch].Name
		} else {
			argNames[i] = fmt.Sprintf("#%d", ch)
		}
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	inner := "*"
	if len(argNames) > 0 {
		inner = strings.Join(argNames, ", ")
	}
	return fmt.Sprintf("%s := %s(%s%s)", a.OutputName, a.FuncName, d, inner)
}

// Aggregate groups by the given child channels and computes aggregates.
// Output channels: group-by columns first, then one per aggregation.
type Aggregate struct {
	Child   Node
	GroupBy []int
	Aggs    []Aggregation
	Step    AggStep
}

func (a *Aggregate) Outputs() []Column {
	childOut := a.Child.Outputs()
	out := make([]Column, 0, len(a.GroupBy)+len(a.Aggs))
	for _, ch := range a.GroupBy {
		out = append(out, childOut[ch])
	}
	for _, agg := range a.Aggs {
		t := agg.FinalType
		if a.Step == AggPartial {
			t = agg.InterType
		}
		out = append(out, Column{Name: agg.OutputName, Type: t})
	}
	return out
}

func (a *Aggregate) Children() []Node { return []Node{a.Child} }

func (a *Aggregate) Describe() string {
	childOut := a.Child.Outputs()
	keys := make([]string, len(a.GroupBy))
	for i, ch := range a.GroupBy {
		keys[i] = childOut[ch].Name
	}
	aggs := make([]string, len(a.Aggs))
	for i := range a.Aggs {
		aggs[i] = a.Aggs[i].describe(a.Child)
	}
	return fmt.Sprintf("Aggregate(%s)[keys=[%s]; %s]", a.Step, strings.Join(keys, ", "), strings.Join(aggs, ", "))
}

// JoinKind enumerates join semantics.
type JoinKind int

const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinLeft:
		return "LEFT"
	case JoinCross:
		return "CROSS"
	}
	return "INNER"
}

// JoinStrategy selects how the build side distributes (§XII.A discussion:
// broadcast vs distributed hash join chosen by session property).
type JoinStrategy int

const (
	JoinPartitioned JoinStrategy = iota
	JoinBroadcast
)

func (s JoinStrategy) String() string {
	if s == JoinBroadcast {
		return "BROADCAST"
	}
	return "PARTITIONED"
}

// Join is a hash join. Equi-keys pair LeftKeys[i] with RightKeys[i];
// Residual (over concatenated left+right channels) applies afterwards.
type Join struct {
	Kind      JoinKind
	Strategy  JoinStrategy
	Left      Node
	Right     Node
	LeftKeys  []int
	RightKeys []int
	Residual  expr.RowExpression
}

func (j *Join) Outputs() []Column {
	return append(append([]Column{}, j.Left.Outputs()...), j.Right.Outputs()...)
}

func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

func (j *Join) Describe() string {
	lo, ro := j.Left.Outputs(), j.Right.Outputs()
	conds := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		conds[i] = lo[j.LeftKeys[i]].Name + " = " + ro[j.RightKeys[i]].Name
	}
	s := fmt.Sprintf("%sJoin(%s)[%s]", j.Kind, j.Strategy, strings.Join(conds, " AND "))
	if j.Residual != nil {
		s += " filter=" + j.Residual.String()
	}
	return s
}

// GeoJoin is the QuadTree-accelerated spatial join the geospatial plugin's
// rewrite produces (§VI, Fig 13): build a QuadTree over the right side's
// geofences on the fly, probe with points from the left side, verify with
// st_contains only for candidate rectangles.
type GeoJoin struct {
	Left  Node // probe side: points
	Right Node // build side: shapes
	// Point coordinates as expressions over left channels.
	Lng expr.RowExpression
	Lat expr.RowExpression
	// ShapeChan is the right channel holding WKT geofences.
	ShapeChan int
}

func (g *GeoJoin) Outputs() []Column {
	return append(append([]Column{}, g.Left.Outputs()...), g.Right.Outputs()...)
}

func (g *GeoJoin) Children() []Node { return []Node{g.Left, g.Right} }

func (g *GeoJoin) Describe() string {
	return fmt.Sprintf("GeoSpatialJoin[quadtree; st_contains(%s, st_point(%s, %s))]",
		g.Right.Outputs()[g.ShapeChan].Name, g.Lng, g.Lat)
}

// SortKey is one ORDER BY key over a child channel.
type SortKey struct {
	Channel int
	Desc    bool
}

// Sort orders rows by the given keys.
type Sort struct {
	Child Node
	Keys  []SortKey
}

func (s *Sort) Outputs() []Column { return s.Child.Outputs() }
func (s *Sort) Children() []Node  { return []Node{s.Child} }

func (s *Sort) Describe() string {
	out := s.Child.Outputs()
	keys := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		keys[i] = out[k.Channel].Name
		if k.Desc {
			keys[i] += " DESC"
		}
	}
	return "Sort[" + strings.Join(keys, ", ") + "]"
}

// Limit keeps the first N rows.
type Limit struct {
	Child Node
	N     int64
}

func (l *Limit) Outputs() []Column { return l.Child.Outputs() }
func (l *Limit) Children() []Node  { return []Node{l.Child} }
func (l *Limit) Describe() string  { return fmt.Sprintf("Limit[%d]", l.N) }

// Union concatenates its sources (UNION ALL semantics; no dedup). All
// sources must have the same output width and types. The hybrid-table
// expansion produces Union[historical scan, real-time scan].
type Union struct {
	Sources []Node
}

func (u *Union) Outputs() []Column { return u.Sources[0].Outputs() }
func (u *Union) Children() []Node  { return append([]Node{}, u.Sources...) }
func (u *Union) Describe() string  { return fmt.Sprintf("Union[%d sources]", len(u.Sources)) }

// Output is the plan root, fixing result column names.
type Output struct {
	Child Node
	Names []string
}

func (o *Output) Outputs() []Column {
	child := o.Child.Outputs()
	out := make([]Column, len(child))
	for i, c := range child {
		out[i] = Column{Name: o.Names[i], Type: c.Type}
	}
	return out
}

func (o *Output) Children() []Node { return []Node{o.Child} }
func (o *Output) Describe() string { return "Output[" + strings.Join(o.Names, ", ") + "]" }

// RemoteSource reads the output of another fragment (inserted by the
// fragmenter in place of an Exchange child).
type RemoteSource struct {
	FragmentID int
	Cols       []Column
}

func (r *RemoteSource) Outputs() []Column { return r.Cols }
func (r *RemoteSource) Children() []Node  { return nil }
func (r *RemoteSource) Describe() string {
	return fmt.Sprintf("RemoteSource[fragment %d]", r.FragmentID)
}

// ---------------------------------------------------------------------------

// Format renders a plan tree for EXPLAIN.
func Format(n Node) string {
	var sb strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("    ", depth))
		sb.WriteString("- ")
		sb.WriteString(n.Describe())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}
