// Package elastic simulates an Elasticsearch-style document store: indexes
// of JSON-ish documents with typed field mappings and term-level inverted
// indexes. Uber runs Elasticsearch "for real time monitoring" (§IV); the
// Presto-Elasticsearch connector maps "each Elasticsearch index into a
// table [and] each Elasticsearch field into a column".
package elastic

import (
	"fmt"
	"sort"
	"sync"

	"prestolite/internal/expr"
	"prestolite/internal/types"
)

// Field is a typed mapping entry.
type Field struct {
	Name string
	Type *types.Type // Bigint, Double, Varchar, Boolean
}

// Index is one document collection with a fixed mapping.
type Index struct {
	Name   string
	Fields []Field

	mu   sync.RWMutex
	docs []map[string]any
	// inverted: term index for varchar fields, field -> value -> doc ids.
	inverted map[string]map[string][]int
}

// Store is the cluster of indexes.
type Store struct {
	mu      sync.RWMutex
	indexes map[string]*Index
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{indexes: map[string]*Index{}}
}

// CreateIndex registers an index with a mapping.
func (s *Store) CreateIndex(name string, fields []Field) (*Index, error) {
	for _, f := range fields {
		switch f.Type.Kind {
		case types.KindBigint, types.KindDouble, types.KindVarchar, types.KindBoolean:
		default:
			return nil, fmt.Errorf("elastic: unsupported field type %s for %s", f.Type, f.Name)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.indexes[name]; exists {
		return nil, fmt.Errorf("elastic: index %q already exists", name)
	}
	idx := &Index{Name: name, Fields: fields, inverted: map[string]map[string][]int{}}
	for _, f := range fields {
		if f.Type.Kind == types.KindVarchar {
			idx.inverted[f.Name] = map[string][]int{}
		}
	}
	s.indexes[name] = idx
	return idx, nil
}

// GetIndex resolves an index.
func (s *Store) GetIndex(name string) (*Index, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, ok := s.indexes[name]
	if !ok {
		return nil, fmt.Errorf("elastic: index %q does not exist", name)
	}
	return idx, nil
}

// Indexes lists index names, sorted.
func (s *Store) Indexes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.indexes))
	for n := range s.indexes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IndexDocument appends one document. Unknown fields are rejected; missing
// fields read as NULL.
func (idx *Index) IndexDocument(doc map[string]any) error {
	known := map[string]*types.Type{}
	for _, f := range idx.Fields {
		known[f.Name] = f.Type
	}
	for k, v := range doc {
		t, ok := known[k]
		if !ok {
			return fmt.Errorf("elastic: index %s has no field %q", idx.Name, k)
		}
		if v == nil {
			continue
		}
		okType := false
		switch t.Kind {
		case types.KindBigint:
			_, okType = v.(int64)
		case types.KindDouble:
			_, okType = v.(float64)
		case types.KindVarchar:
			_, okType = v.(string)
		case types.KindBoolean:
			_, okType = v.(bool)
		}
		if !okType {
			return fmt.Errorf("elastic: field %s.%s expects %s, got %T", idx.Name, k, t, v)
		}
	}
	idx.mu.Lock()
	defer idx.mu.Unlock()
	id := len(idx.docs)
	copied := make(map[string]any, len(doc))
	for k, v := range doc {
		copied[k] = v
	}
	idx.docs = append(idx.docs, copied)
	for field, terms := range idx.inverted {
		if v, ok := copied[field].(string); ok {
			terms[v] = append(terms[v], id)
		}
	}
	return nil
}

// Query is the native search: term/range filters, source filtering
// (projection), and size (limit).
type Query struct {
	Index string
	// Terms are exact-match filters on varchar fields (term query).
	Terms map[string]string
	// Ranges are numeric/boolean comparisons: field -> op -> value
	// (ops: eq, neq, lt, lte, gt, gte).
	Ranges []RangeFilter
	// Source lists the fields to return (nil = all mapped fields).
	Source []string
	// Size bounds hits (<= 0: unlimited).
	Size int64
}

// RangeFilter is one comparison filter.
type RangeFilter struct {
	Field string
	Op    string
	Value any
}

// Hit is one matching document projected to Source order.
type Hit []any

// Search executes a query, using the inverted index for term filters.
func (s *Store) Search(q Query) ([]string, []Hit, error) {
	idx, err := s.GetIndex(q.Index)
	if err != nil {
		return nil, nil, err
	}
	source := q.Source
	if len(source) == 0 {
		for _, f := range idx.Fields {
			source = append(source, f.Name)
		}
	}
	fieldType := map[string]*types.Type{}
	for _, f := range idx.Fields {
		fieldType[f.Name] = f.Type
	}
	for _, f := range source {
		if fieldType[f] == nil {
			return nil, nil, fmt.Errorf("elastic: unknown source field %q", f)
		}
	}
	for f := range q.Terms {
		if fieldType[f] == nil || fieldType[f].Kind != types.KindVarchar {
			return nil, nil, fmt.Errorf("elastic: term filter needs a varchar field, got %q", f)
		}
	}
	for _, r := range q.Ranges {
		if fieldType[r.Field] == nil {
			return nil, nil, fmt.Errorf("elastic: unknown range field %q", r.Field)
		}
	}

	idx.mu.RLock()
	defer idx.mu.RUnlock()

	// Candidate ids: intersect posting lists for term filters, else all.
	var candidates []int
	if len(q.Terms) > 0 {
		first := true
		for field, term := range q.Terms {
			posting := idx.inverted[field][term]
			if first {
				candidates = append([]int(nil), posting...)
				first = false
				continue
			}
			candidates = intersectSorted(candidates, posting)
		}
	} else {
		candidates = make([]int, len(idx.docs))
		for i := range candidates {
			candidates[i] = i
		}
	}

	var hits []Hit
	for _, id := range candidates {
		doc := idx.docs[id]
		ok := true
		for _, r := range q.Ranges {
			v := doc[r.Field]
			if v == nil || !matchRange(r, v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		hit := make(Hit, len(source))
		for i, f := range source {
			hit[i] = doc[f]
		}
		hits = append(hits, hit)
		if q.Size > 0 && int64(len(hits)) >= q.Size {
			break
		}
	}
	return source, hits, nil
}

func matchRange(r RangeFilter, v any) bool {
	c := expr.CompareValues(v, r.Value)
	switch r.Op {
	case "eq":
		return c == 0
	case "neq":
		return c != 0
	case "lt":
		return c < 0
	case "lte":
		return c <= 0
	case "gt":
		return c > 0
	case "gte":
		return c >= 0
	}
	return false
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
