package workload

import (
	"fmt"
	"math/rand"

	"prestolite/internal/block"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/fsys"
	"prestolite/internal/metastore"
	"prestolite/internal/types"
)

// The Fig 17 workload: a wide, deeply nested trips table (the paper: "users
// define one high level column with struct type. The struct consists of 20
// or sometimes up to 50 fields ... more than 5 levels of nesting"), plus 21
// production-style queries: 4 table scans (2 needle-in-a-haystack), 5 group
// bys, and 12 joins.

// TripsBaseType is the nested "base" struct with 20 fields.
func TripsBaseType() *types.Type {
	status := types.NewRow(
		types.Field{Name: "code", Type: types.Bigint},
		types.Field{Name: "reason", Type: types.Varchar},
		types.Field{Name: "detail", Type: types.NewRow(
			types.Field{Name: "source", Type: types.Varchar},
			types.Field{Name: "retries", Type: types.Bigint},
		)},
	)
	vehicle := types.NewRow(
		types.Field{Name: "make", Type: types.Varchar},
		types.Field{Name: "model", Type: types.Varchar},
		types.Field{Name: "year", Type: types.Bigint},
	)
	fields := []types.Field{
		{Name: "driver_uuid", Type: types.Varchar},
		{Name: "client_uuid", Type: types.Varchar},
		{Name: "city_id", Type: types.Bigint},
		{Name: "vehicle_id", Type: types.Bigint},
		{Name: "status", Type: status},
		{Name: "vehicle", Type: vehicle},
		{Name: "fare", Type: types.Double},
		{Name: "surge", Type: types.Double},
		{Name: "tip", Type: types.Double},
		{Name: "distance_km", Type: types.Double},
		{Name: "duration_s", Type: types.Bigint},
		{Name: "pickup_lng", Type: types.Double},
		{Name: "pickup_lat", Type: types.Double},
		{Name: "dest_lng", Type: types.Double},
		{Name: "dest_lat", Type: types.Double},
		{Name: "product", Type: types.Varchar},
		{Name: "promo_code", Type: types.Varchar},
		{Name: "rating", Type: types.Bigint},
		{Name: "tags", Type: types.NewArray(types.Varchar)},
		{Name: "metrics", Type: types.NewMap(types.Varchar, types.Double)},
	}
	return types.NewRow(fields...)
}

// TripsConfig sizes the dataset.
type TripsConfig struct {
	// RowsPerDate per partition; Dates is the partition count.
	RowsPerDate int
	Dates       int
	// FilesPerDate spreads each partition across files.
	FilesPerDate int
	// RowGroupRows per file row group.
	RowGroupRows int
	// NeedleCityID appears exactly once per date (needle in a haystack).
	NeedleCityID int64
}

// DefaultTripsConfig is the benchmark sizing.
func DefaultTripsConfig() TripsConfig {
	return TripsConfig{RowsPerDate: 20000, Dates: 3, FilesPerDate: 4, RowGroupRows: 2048, NeedleCityID: 99999}
}

var products = []string{"uberx", "pool", "black", "xl", "eats"}
var makes = []string{"toyota", "honda", "ford", "tesla", "bmw"}

// BuildTripsWarehouse writes the trips table (partitioned by datestr) and
// two dimension tables (cities, drivers) into a metastore + filesystem, with
// the given writer strategy. Returns the date partition names.
func BuildTripsWarehouse(ms *metastore.Metastore, fs fsys.FileSystem, cfg TripsConfig) ([]string, error) {
	baseType := TripsBaseType()
	cols := []metastore.Column{
		{Name: "trip_id", Type: types.Bigint},
		{Name: "base", Type: baseType},
	}
	loader := &hive.Loader{MS: ms, FS: fs}
	loader.WriterOptions.RowGroupRows = cfg.RowGroupRows

	var dates []string
	partitions := map[string][]*block.Page{}
	sealed := map[string]bool{}
	tripID := int64(0)
	for d := 0; d < cfg.Dates; d++ {
		date := fmt.Sprintf("2017-03-%02d", d+1)
		dates = append(dates, date)
		r := rand.New(rand.NewSource(int64(d) + 42))
		var pages []*block.Page
		rowsPerFile := cfg.RowsPerDate / cfg.FilesPerDate
		for f := 0; f < cfg.FilesPerDate; f++ {
			pb := block.NewPageBuilder([]*types.Type{types.Bigint, baseType})
			for i := 0; i < rowsPerFile; i++ {
				tripID++
				cityID := int64(r.Intn(200))
				if f == 0 && i == 0 {
					cityID = cfg.NeedleCityID // one needle per date
				}
				pb.AppendRow([]any{tripID, tripRow(r, cityID)})
			}
			pages = append(pages, pb.Build())
		}
		partitions[date] = pages
		sealed[date] = true
	}
	if err := loader.CreatePartitionedTable("rawdata", "trips", cols, "datestr", partitions, sealed); err != nil {
		return nil, err
	}

	// Dimension tables for the join queries.
	cityCols := []metastore.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "name", Type: types.Varchar},
		{Name: "region", Type: types.Varchar},
	}
	cpb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Varchar, types.Varchar})
	for i := 0; i < 200; i++ {
		cpb.AppendRow([]any{int64(i), fmt.Sprintf("city-%03d", i), []string{"na", "emea", "apac", "latam"}[i%4]})
	}
	if err := loader.CreateTable("rawdata", "cities", cityCols, []*block.Page{cpb.Build()}); err != nil {
		return nil, err
	}
	driverCols := []metastore.Column{
		{Name: "driver_uuid", Type: types.Varchar},
		{Name: "tier", Type: types.Varchar},
	}
	dpb := block.NewPageBuilder([]*types.Type{types.Varchar, types.Varchar})
	for i := 0; i < 1000; i++ {
		dpb.AppendRow([]any{fmt.Sprintf("d-%04d", i), []string{"gold", "silver", "bronze"}[i%3]})
	}
	if err := loader.CreateTable("rawdata", "drivers", driverCols, []*block.Page{dpb.Build()}); err != nil {
		return nil, err
	}
	return dates, nil
}

func tripRow(r *rand.Rand, cityID int64) []any {
	status := []any{
		int64(200 + 100*r.Intn(3)),
		[]string{"completed", "canceled", "no_show"}[r.Intn(3)],
		[]any{[]string{"app", "dispatch"}[r.Intn(2)], int64(r.Intn(3))},
	}
	vehicle := []any{makes[r.Intn(len(makes))], fmt.Sprintf("model-%d", r.Intn(20)), int64(2008 + r.Intn(12))}
	tags := make([]any, r.Intn(3))
	for i := range tags {
		tags[i] = []string{"airport", "downtown", "surge", "pool"}[r.Intn(4)]
	}
	metrics := [][2]any{{"wait_s", float64(r.Intn(600))}, {"route_eff", r.Float64()}}
	return []any{
		fmt.Sprintf("d-%04d", r.Intn(1000)),   // driver_uuid
		fmt.Sprintf("c-%06d", r.Intn(100000)), // client_uuid
		cityID,
		int64(r.Intn(50000)),
		status,
		vehicle,
		5 + r.Float64()*45,
		1 + float64(r.Intn(30))/10,
		r.Float64() * 10,
		r.Float64() * 30,
		int64(120 + r.Intn(3600)),
		-122.5 + r.Float64(),
		37.2 + r.Float64(),
		-122.5 + r.Float64(),
		37.2 + r.Float64(),
		products[r.Intn(len(products))],
		"",
		int64(1 + r.Intn(5)),
		tags,
		metrics,
	}
}

// TripQuery is one of the 21 Fig 17 queries.
type TripQuery struct {
	Name string
	SQL  string
	Kind string // "scan", "needle", "groupby", "join"
}

// TripQueries returns the 21-query workload: 4 table scans (2 needle in a
// haystack), 5 group bys, 12 joins.
func TripQueries(cfg TripsConfig) []TripQuery {
	needle := fmt.Sprintf("%d", cfg.NeedleCityID)
	qs := []TripQuery{
		// 4 scans, 2 of them needle-in-a-haystack.
		{"Q01 scan projection", "SELECT base.driver_uuid, base.fare FROM trips WHERE datestr = '2017-03-01'", "scan"},
		{"Q02 scan nested fields", "SELECT base.status.code, base.vehicle.make, base.distance_km FROM trips", "scan"},
		{"Q03 needle city", "SELECT base.driver_uuid FROM trips WHERE datestr = '2017-03-02' AND base.city_id IN (" + needle + ")", "needle"},
		{"Q04 needle deep field", "SELECT base.client_uuid FROM trips WHERE base.city_id = " + needle, "needle"},
		// 5 group bys.
		{"Q05 groupby city", "SELECT base.city_id, count(*) FROM trips GROUP BY base.city_id", "groupby"},
		{"Q06 groupby date revenue", "SELECT datestr, sum(base.fare), avg(base.tip) FROM trips GROUP BY datestr", "groupby"},
		{"Q07 groupby product", "SELECT base.product, count(*), avg(base.distance_km) FROM trips GROUP BY base.product", "groupby"},
		{"Q08 groupby status", "SELECT base.status.code, count(*) FROM trips GROUP BY base.status.code", "groupby"},
		{"Q09 groupby filtered", "SELECT base.city_id, max(base.fare) FROM trips WHERE base.fare > 40.0 GROUP BY base.city_id", "groupby"},
		// 12 joins.
		{"Q10 join cities", "SELECT c.name, count(*) FROM trips t JOIN cities c ON t.base.city_id = c.city_id GROUP BY c.name", "join"},
		{"Q11 join cities filtered", "SELECT c.region, sum(t.base.fare) FROM trips t JOIN cities c ON t.base.city_id = c.city_id WHERE t.datestr = '2017-03-01' GROUP BY c.region", "join"},
		{"Q12 join drivers", "SELECT d.tier, count(*) FROM trips t JOIN drivers d ON t.base.driver_uuid = d.driver_uuid GROUP BY d.tier", "join"},
		{"Q13 join drivers gold", "SELECT count(*) FROM trips t JOIN drivers d ON t.base.driver_uuid = d.driver_uuid WHERE d.tier = 'gold'", "join"},
		{"Q14 join both dims", "SELECT c.region, d.tier, count(*) FROM trips t JOIN cities c ON t.base.city_id = c.city_id JOIN drivers d ON t.base.driver_uuid = d.driver_uuid GROUP BY c.region, d.tier", "join"},
		{"Q15 join revenue by region", "SELECT c.region, sum(t.base.fare + t.base.tip) FROM trips t JOIN cities c ON t.base.city_id = c.city_id GROUP BY c.region", "join"},
		{"Q16 join high fares", "SELECT c.name, max(t.base.fare) FROM trips t JOIN cities c ON t.base.city_id = c.city_id WHERE t.base.fare > 45.0 GROUP BY c.name", "join"},
		{"Q17 join product mix", "SELECT c.region, t.base.product, count(*) FROM trips t JOIN cities c ON t.base.city_id = c.city_id GROUP BY c.region, t.base.product", "join"},
		{"Q18 join canceled", "SELECT c.name, count(*) FROM trips t JOIN cities c ON t.base.city_id = c.city_id WHERE t.base.status.reason = 'canceled' GROUP BY c.name", "join"},
		{"Q19 join vehicles", "SELECT t.base.vehicle.make, c.region, avg(t.base.distance_km) FROM trips t JOIN cities c ON t.base.city_id = c.city_id GROUP BY t.base.vehicle.make, c.region", "join"},
		{"Q20 join driver revenue", "SELECT d.tier, sum(t.base.fare) FROM trips t JOIN drivers d ON t.base.driver_uuid = d.driver_uuid WHERE t.datestr = '2017-03-02' GROUP BY d.tier", "join"},
		{"Q21 join top cities", "SELECT c.name, count(*) AS n FROM trips t JOIN cities c ON t.base.city_id = c.city_id GROUP BY c.name ORDER BY n DESC LIMIT 10", "join"},
	}
	return qs
}
