package workload

import (
	"prestolite/internal/connector"
	druidconn "prestolite/internal/connectors/druid"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/druid"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
)

// DemoCatalogs builds the catalog registry the demo binaries share: a hive
// catalog over simulated HDFS holding the nested trips warehouse, and a
// druid catalog holding the events table. Coordinator and workers must call
// this with the same seedings (they do — everything is deterministic).
func DemoCatalogs() (*connector.Registry, error) {
	nn := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	cfg := TripsConfig{RowsPerDate: 5000, Dates: 3, FilesPerDate: 4, RowGroupRows: 2048, NeedleCityID: 99999}
	if _, err := BuildTripsWarehouse(ms, nn, cfg); err != nil {
		return nil, err
	}
	store := druid.NewStore()
	if err := BuildEventsTable(store, EventsConfig{Rows: 50000, Segments: 4}); err != nil {
		return nil, err
	}
	reg := connector.NewRegistry()
	reg.Register("hive", hive.New("hive", ms, nn, hive.Options{}))
	reg.Register("druid", druidconn.New("druid", &druid.EmbeddedClient{Store: store}))
	return reg, nil
}
