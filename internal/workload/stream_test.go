package workload

import (
	"context"
	"testing"
	"time"
)

func TestStreamDeterministic(t *testing.T) {
	now := time.Unix(1700000000, 0)
	for seq := int64(0); seq < 100; seq++ {
		a := MakeStreamEvent(42, seq, now)
		b := MakeStreamEvent(42, seq, now)
		if a != b {
			t.Fatalf("event %d not deterministic: %+v vs %+v", seq, a, b)
		}
		if a.Key != a.Country {
			t.Fatalf("event %d key %q != country %q", seq, a.Key, a.Country)
		}
	}
	if MakeStreamEvent(1, 0, now).Country == MakeStreamEvent(2, 0, now).Country &&
		MakeStreamEvent(1, 1, now).Clicks == MakeStreamEvent(2, 1, now).Clicks &&
		MakeStreamEvent(1, 2, now).Clicks == MakeStreamEvent(2, 2, now).Clicks {
		t.Error("different seeds produced identical stream prefix")
	}
}

func TestStreamMaxEventsUnpaced(t *testing.T) {
	var got []StreamEvent
	n, err := RunStream(context.Background(), StreamConfig{MaxEvents: 250, Seed: 7}, func(e StreamEvent) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 250 || len(got) != 250 {
		t.Fatalf("emitted %d events (callback saw %d), want 250", n, len(got))
	}
	for i, e := range got {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestStreamRateLimited(t *testing.T) {
	start := time.Now()
	n, err := RunStream(context.Background(), StreamConfig{EventsPerSec: 1000, MaxEvents: 200, Seed: 7}, func(StreamEvent) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if n != 200 {
		t.Fatalf("emitted %d, want 200", n)
	}
	// 200 events at 1000/s should take ~200ms; allow generous slack but
	// reject "no pacing at all" (would finish in microseconds).
	if elapsed < 100*time.Millisecond {
		t.Errorf("200 events at 1000/s finished in %v; rate limit not applied", elapsed)
	}
}

func TestStreamContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		n, _ = RunStream(ctx, StreamConfig{EventsPerSec: 50}, func(StreamEvent) error { return nil })
	}()
	time.Sleep(120 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RunStream did not stop on context cancel")
	}
	if n == 0 {
		t.Error("expected some events before cancel")
	}
}
