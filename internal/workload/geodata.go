package workload

import (
	"fmt"
	"math"
	"math/rand"

	"prestolite/internal/connector"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/geo"
	"prestolite/internal/types"
)

// The §VI geospatial workload: a cities table of geofences ("for a real
// city, it is not uncommon to see its geofence composed of hundreds or
// thousands of points") and a trips table of destination points.

// GeoConfig sizes the tables.
type GeoConfig struct {
	Cities          int
	VerticesPerCity int
	Trips           int
}

// DefaultGeoConfig is the benchmark sizing: hundreds of cities, hundreds of
// vertices per geofence.
func DefaultGeoConfig() GeoConfig {
	return GeoConfig{Cities: 200, VerticesPerCity: 400, Trips: 20000}
}

// BuildGeoTables registers cities + trips tables into a memory connector.
func BuildGeoTables(mem *memory.Connector, cfg GeoConfig) error {
	r := rand.New(rand.NewSource(11))
	// Cities on a grid with irregular polygon boundaries.
	grid := int(math.Ceil(math.Sqrt(float64(cfg.Cities))))
	if err := mem.CreateTable("geo", "cities", []connector.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "geo_shape", Type: types.Varchar},
	}, nil); err != nil {
		return err
	}
	var cityRows [][]any
	centers := make([]geo.Point, cfg.Cities)
	for i := 0; i < cfg.Cities; i++ {
		cx := float64(i%grid)*10 + 5
		cy := float64(i/grid)*10 + 5
		centers[i] = geo.Point{Lng: cx, Lat: cy}
		ring := make(geo.Ring, 0, cfg.VerticesPerCity+1)
		for v := 0; v < cfg.VerticesPerCity; v++ {
			theta := 2 * math.Pi * float64(v) / float64(cfg.VerticesPerCity)
			radius := 3 + r.Float64() // irregular boundary
			ring = append(ring, geo.Point{Lng: cx + radius*math.Cos(theta), Lat: cy + radius*math.Sin(theta)})
		}
		ring = append(ring, ring[0])
		cityRows = append(cityRows, []any{int64(i), geo.FormatPolygon(geo.Polygon{Outer: ring})})
	}
	if err := mem.AppendRows("geo", "cities", cityRows); err != nil {
		return err
	}

	if err := mem.CreateTable("geo", "trips", []connector.Column{
		{Name: "trip_id", Type: types.Bigint},
		{Name: "dest_lng", Type: types.Double},
		{Name: "dest_lat", Type: types.Double},
		{Name: "datestr", Type: types.Varchar},
	}, nil); err != nil {
		return err
	}
	extent := float64(grid) * 10
	var rows [][]any
	for i := 0; i < cfg.Trips; i++ {
		var p geo.Point
		if r.Intn(4) > 0 {
			// Most trips end inside some city.
			c := centers[r.Intn(len(centers))]
			p = geo.Point{Lng: c.Lng + r.Float64()*4 - 2, Lat: c.Lat + r.Float64()*4 - 2}
		} else {
			p = geo.Point{Lng: r.Float64() * extent, Lat: r.Float64() * extent}
		}
		rows = append(rows, []any{int64(i), p.Lng, p.Lat, fmt.Sprintf("2017-08-%02d", 1+i%2)})
		if len(rows) == 4096 {
			if err := mem.AppendRows("geo", "trips", rows); err != nil {
				return err
			}
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		return mem.AppendRows("geo", "trips", rows)
	}
	return nil
}

// GeoQuery is the §VI.C query.
const GeoQuery = `SELECT c.city_id, count(*)
	FROM trips AS t
	JOIN cities AS c
	ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat))
	WHERE datestr = '2017-08-01'
	GROUP BY 1`
