package workload

import (
	"context"
	"math/rand"
	"time"
)

// Streaming producer mode: a rate-limited, deterministic event generator
// feeding the real-time ingestion path (internal/ingest). The generator is
// paced by wall-clock ticks but the event *contents* depend only on the
// seed and sequence number, so a run is replayable row-for-row at any rate.

// StreamConfig shapes the generated stream.
type StreamConfig struct {
	// EventsPerSec is the target emission rate. <= 0 means "as fast as
	// possible" (no pacing) — useful for load tests.
	EventsPerSec int
	// MaxEvents stops the stream after this many events. <= 0 means run
	// until the context is cancelled.
	MaxEvents int
	// Seed makes the event contents deterministic.
	Seed int64
}

// StreamEvent is one generated event, matching the real-time events schema
// (ts bigint, country varchar, clicks bigint).
type StreamEvent struct {
	Seq     int64
	Time    time.Time
	Key     string
	Country string
	Clicks  int64
}

// Row renders the event as a druid-ingestable row; the sequence number is
// the ts column, so replays produce identical tables.
func (e StreamEvent) Row() []any { return []any{e.Seq, e.Country, e.Clicks} }

// streamCountries is the keyed dimension; keys hash to partitions, so a
// small fixed set exercises per-key ordering.
var streamCountries = []string{"us", "de", "jp", "br", "in", "fr", "uk", "mx"}

// MakeStreamEvent deterministically builds event number seq for a seed.
// Exposed so tests and verifiers can recompute exactly what a stream sent.
func MakeStreamEvent(seed, seq int64, now time.Time) StreamEvent {
	r := rand.New(rand.NewSource(seed + seq*1_000_003))
	c := streamCountries[r.Intn(len(streamCountries))]
	return StreamEvent{
		Seq:     seq,
		Time:    now,
		Key:     c,
		Country: c,
		Clicks:  int64(r.Intn(50)),
	}
}

// RunStream emits events at the configured rate, calling send for each one
// until MaxEvents is reached or the context is cancelled. It returns the
// number of events emitted. Pacing uses a 5ms tick with fractional credit
// accumulation, so rates below 200 events/sec are honored too. A send error
// stops the stream and is returned with the count so far.
func RunStream(ctx context.Context, cfg StreamConfig, send func(StreamEvent) error) (int64, error) {
	var seq int64
	emit := func() error {
		ev := MakeStreamEvent(cfg.Seed, seq, time.Now())
		if err := send(ev); err != nil {
			return err
		}
		seq++
		return nil
	}
	if cfg.EventsPerSec <= 0 {
		for cfg.MaxEvents <= 0 || seq < int64(cfg.MaxEvents) {
			if ctx.Err() != nil {
				return seq, nil
			}
			if err := emit(); err != nil {
				return seq, err
			}
		}
		return seq, nil
	}
	const tick = 5 * time.Millisecond
	perTick := float64(cfg.EventsPerSec) * tick.Seconds()
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var credit float64
	for {
		select {
		case <-ctx.Done():
			return seq, nil
		case <-ticker.C:
			credit += perTick
			for credit >= 1 {
				credit--
				if cfg.MaxEvents > 0 && seq >= int64(cfg.MaxEvents) {
					return seq, nil
				}
				if err := emit(); err != nil {
					return seq, err
				}
			}
			if cfg.MaxEvents > 0 && seq >= int64(cfg.MaxEvents) {
				return seq, nil
			}
		}
	}
}
