// Package workload builds the deterministic synthetic datasets and query
// sets behind every figure of the paper's evaluation (§X): the writer
// datasets of Figs 18-20, the nested trips warehouse and 21 queries of
// Fig 17, the druid events table and 20 queries of Fig 16, and the
// geospatial tables of §VI.
package workload

import (
	"fmt"
	"math/rand"

	"prestolite/internal/block"
	"prestolite/internal/tpch"
	"prestolite/internal/types"
)

// WriterDataset is one row of Figs 18-20: a named column layout plus a data
// generator.
type WriterDataset struct {
	Name  string
	Cols  []string
	Types []*types.Type
	// Generate builds n rows.
	Generate func(seed int64, n int) *block.Page
}

func randString(r *rand.Rand, minLen, maxLen int) string {
	n := minLen + r.Intn(maxLen-minLen+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func singleColumn(name string, t *types.Type, gen func(r *rand.Rand) any) WriterDataset {
	return WriterDataset{
		Name:  name,
		Cols:  []string{"v"},
		Types: []*types.Type{t},
		Generate: func(seed int64, n int) *block.Page {
			r := rand.New(rand.NewSource(seed))
			pb := block.NewPageBuilder([]*types.Type{t})
			for i := 0; i < n; i++ {
				pb.AppendRow([]any{gen(r)})
			}
			return pb.Build()
		},
	}
}

// WriterDatasets returns the 11 datasets of Figs 18-20, in the figures'
// order: All Lineitem columns, Bigint Sequential, Bigint Random, Small
// Varchar, Large Varchar, Varchar Dictionary, Map Varchar To Double, Large
// Map Varchar To Double, Map Int To Double, Large Map Int To Double, Array
// Varchar.
func WriterDatasets() []WriterDataset {
	mapVD := types.NewMap(types.Varchar, types.Double)
	mapID := types.NewMap(types.Bigint, types.Double)
	arrV := types.NewArray(types.Varchar)
	var seq int64

	mapGen := func(keys func(r *rand.Rand, i int) any, entries int) func(r *rand.Rand) any {
		return func(r *rand.Rand) any {
			n := 1 + r.Intn(entries)
			out := make([][2]any, n)
			for i := range out {
				out[i] = [2]any{keys(r, i), r.Float64() * 100}
			}
			return out
		}
	}
	varcharKey := func(r *rand.Rand, i int) any { return fmt.Sprintf("key_%d_%s", i, randString(r, 3, 8)) }
	intKey := func(r *rand.Rand, i int) any { return int64(i*1000) + r.Int63n(1000) }

	return []WriterDataset{
		{
			Name:  "All Lineitem columns",
			Cols:  tpch.ColumnNames(),
			Types: tpch.ColumnTypes(),
			Generate: func(seed int64, n int) *block.Page {
				return tpch.GeneratePage(seed, n)
			},
		},
		singleColumn("Bigint Sequential", types.Bigint, func(r *rand.Rand) any {
			seq++
			return seq
		}),
		singleColumn("Bigint Random", types.Bigint, func(r *rand.Rand) any {
			return r.Int63()
		}),
		singleColumn("Small Varchar", types.Varchar, func(r *rand.Rand) any {
			return randString(r, 3, 10)
		}),
		singleColumn("Large Varchar", types.Varchar, func(r *rand.Rand) any {
			return randString(r, 100, 300)
		}),
		singleColumn("Varchar Dictionary", types.Varchar, func(r *rand.Rand) any {
			return []string{"us", "de", "jp", "br", "in", "fr", "uk", "mx"}[r.Intn(8)]
		}),
		singleColumn("Map Varchar To Double", mapVD, mapGen(varcharKey, 4)),
		singleColumn("Large Map Varchar To Double", mapVD, mapGen(varcharKey, 24)),
		singleColumn("Map Int To Double", mapID, mapGen(intKey, 4)),
		singleColumn("Large Map Int To Double", mapID, mapGen(intKey, 24)),
		singleColumn("Array Varchar", arrV, func(r *rand.Rand) any {
			n := 1 + r.Intn(6)
			out := make([]any, n)
			for i := range out {
				out[i] = randString(r, 4, 16)
			}
			return out
		}),
	}
}
