package workload

import (
	"fmt"
	"math/rand"

	"prestolite/internal/druid"
	"prestolite/internal/types"
)

// The Fig 16 workload: a druid events table plus "20 druid production
// queries ... 14 of them have predicates, 5 of them have limits, and 12 of
// them are aggregation queries" (categories overlap, as in production).

// EventsConfig sizes the druid table.
type EventsConfig struct {
	Rows     int
	Segments int
}

// DefaultEventsConfig is the benchmark sizing.
func DefaultEventsConfig() EventsConfig { return EventsConfig{Rows: 200000, Segments: 4} }

// BuildEventsTable loads the events table into a druid store.
func BuildEventsTable(store *druid.Store, cfg EventsConfig) error {
	tab, err := store.CreateTable("events", []druid.Column{
		{Name: "country", Type: types.Varchar},
		{Name: "device", Type: types.Varchar},
		{Name: "service", Type: types.Varchar},
		{Name: "status", Type: types.Bigint},
		{Name: "clicks", Type: types.Bigint},
		{Name: "latency_ms", Type: types.Double},
		{Name: "revenue", Type: types.Double},
	})
	if err != nil {
		return err
	}
	countries := []string{"us", "de", "jp", "br", "in", "fr", "uk", "mx", "ca", "au"}
	devices := []string{"ios", "android", "web"}
	services := []string{"rides", "eats", "freight", "payments"}
	r := rand.New(rand.NewSource(7))
	perSeg := cfg.Rows / cfg.Segments
	for s := 0; s < cfg.Segments; s++ {
		rows := make([][]any, perSeg)
		for i := range rows {
			rows[i] = []any{
				countries[r.Intn(len(countries))],
				devices[r.Intn(len(devices))],
				services[r.Intn(len(services))],
				int64(200 + 100*r.Intn(4)),
				int64(r.Intn(50)),
				float64(r.Intn(2000)) / 2,
				r.Float64() * 10,
			}
		}
		if err := tab.Ingest(rows); err != nil {
			return err
		}
	}
	return nil
}

// EventQuery pairs a SQL form (run through the connector) with the native
// druid form (run directly against the store), plus its category flags.
type EventQuery struct {
	Name          string
	SQL           string
	Native        druid.Query
	HasPredicate  bool
	HasLimit      bool
	IsAggregation bool
}

// EventQueries returns the 20-query Fig 16 workload: 14 with predicates,
// 5 with limits, 12 aggregations.
func EventQueries() []EventQuery {
	agg := func(name, col string, f string) druid.Aggregation {
		return druid.Aggregation{Func: f, Column: col, Name: name}
	}
	eq := func(col string, v any) druid.Filter {
		return druid.Filter{Column: col, Op: "eq", Values: []any{v}}
	}
	qs := []EventQuery{
		// Aggregations with predicates (the real-time dashboard shape).
		{Name: "q01", SQL: "SELECT country, sum(clicks) FROM events WHERE device = 'ios' GROUP BY country",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{eq("device", "ios")}, GroupBy: []string{"country"}, Aggregations: []druid.Aggregation{agg("sum(clicks)", "clicks", "sum")}},
			HasPredicate: true, IsAggregation: true},
		{Name: "q02", SQL: "SELECT service, count(*) FROM events WHERE country = 'us' GROUP BY service",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{eq("country", "us")}, GroupBy: []string{"service"}, Aggregations: []druid.Aggregation{agg("count(*)", "", "count")}},
			HasPredicate: true, IsAggregation: true},
		{Name: "q03", SQL: "SELECT device, avg(latency_ms) FROM events WHERE service = 'rides' GROUP BY device",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{eq("service", "rides")}, GroupBy: []string{"device"}, Aggregations: []druid.Aggregation{agg("avg(latency_ms)", "latency_ms", "avg")}},
			HasPredicate: true, IsAggregation: true},
		{Name: "q04", SQL: "SELECT country, max(latency_ms) FROM events WHERE status = 500 GROUP BY country",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{eq("status", int64(500))}, GroupBy: []string{"country"}, Aggregations: []druid.Aggregation{agg("max(latency_ms)", "latency_ms", "max")}},
			HasPredicate: true, IsAggregation: true},
		{Name: "q05", SQL: "SELECT sum(revenue) FROM events WHERE country = 'de'",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{eq("country", "de")}, Aggregations: []druid.Aggregation{agg("sum(revenue)", "revenue", "sum")}},
			HasPredicate: true, IsAggregation: true},
		{Name: "q06", SQL: "SELECT count(*) FROM events WHERE device = 'web' AND service = 'eats'",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{eq("device", "web"), eq("service", "eats")}, Aggregations: []druid.Aggregation{agg("count(*)", "", "count")}},
			HasPredicate: true, IsAggregation: true},
		{Name: "q07", SQL: "SELECT service, sum(clicks), sum(revenue) FROM events WHERE country IN ('us', 'ca', 'mx') GROUP BY service",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{{Column: "country", Op: "in", Values: []any{"us", "ca", "mx"}}}, GroupBy: []string{"service"}, Aggregations: []druid.Aggregation{agg("sum(clicks)", "clicks", "sum"), agg("sum(revenue)", "revenue", "sum")}},
			HasPredicate: true, IsAggregation: true},
		{Name: "q08", SQL: "SELECT country, device, count(*) FROM events WHERE clicks > 40 GROUP BY country, device",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{{Column: "clicks", Op: "gt", Values: []any{int64(40)}}}, GroupBy: []string{"country", "device"}, Aggregations: []druid.Aggregation{agg("count(*)", "", "count")}},
			HasPredicate: true, IsAggregation: true},
		{Name: "q09", SQL: "SELECT min(latency_ms), max(latency_ms), avg(latency_ms) FROM events",
			Native:        druid.Query{Table: "events", Aggregations: []druid.Aggregation{agg("min(latency_ms)", "latency_ms", "min"), agg("max(latency_ms)", "latency_ms", "max"), agg("avg(latency_ms)", "latency_ms", "avg")}},
			IsAggregation: true},
		{Name: "q10", SQL: "SELECT country, count(*) FROM events GROUP BY country",
			Native:        druid.Query{Table: "events", GroupBy: []string{"country"}, Aggregations: []druid.Aggregation{agg("count(*)", "", "count")}},
			IsAggregation: true},
		{Name: "q11", SQL: "SELECT device, sum(revenue) FROM events GROUP BY device",
			Native:        druid.Query{Table: "events", GroupBy: []string{"device"}, Aggregations: []druid.Aggregation{agg("sum(revenue)", "revenue", "sum")}},
			IsAggregation: true},
		{Name: "q12", SQL: "SELECT service, avg(clicks) FROM events GROUP BY service",
			Native:        druid.Query{Table: "events", GroupBy: []string{"service"}, Aggregations: []druid.Aggregation{agg("avg(clicks)", "clicks", "avg")}},
			IsAggregation: true},
		// Select queries with predicates + limits (monitoring drill-downs).
		{Name: "q13", SQL: "SELECT country, device, latency_ms FROM events WHERE status = 500 LIMIT 100",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{eq("status", int64(500))}, Columns: []string{"country", "device", "latency_ms"}, Limit: 100},
			HasPredicate: true, HasLimit: true},
		{Name: "q14", SQL: "SELECT country, clicks FROM events WHERE device = 'android' LIMIT 50",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{eq("device", "android")}, Columns: []string{"country", "clicks"}, Limit: 50},
			HasPredicate: true, HasLimit: true},
		{Name: "q15", SQL: "SELECT service, revenue FROM events WHERE revenue > 9.5 LIMIT 20",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{{Column: "revenue", Op: "gt", Values: []any{9.5}}}, Columns: []string{"service", "revenue"}, Limit: 20},
			HasPredicate: true, HasLimit: true},
		{Name: "q16", SQL: "SELECT country, service FROM events LIMIT 10",
			Native:   druid.Query{Table: "events", Columns: []string{"country", "service"}, Limit: 10},
			HasLimit: true},
		{Name: "q17", SQL: "SELECT device FROM events WHERE country = 'jp' LIMIT 200",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{eq("country", "jp")}, Columns: []string{"device"}, Limit: 200},
			HasPredicate: true, HasLimit: true},
		// Plain filtered selects.
		{Name: "q18", SQL: "SELECT clicks, latency_ms FROM events WHERE country = 'fr' AND device = 'ios'",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{eq("country", "fr"), eq("device", "ios")}, Columns: []string{"clicks", "latency_ms"}},
			HasPredicate: true},
		{Name: "q19", SQL: "SELECT country, status FROM events",
			Native: druid.Query{Table: "events", Columns: []string{"country", "status"}}},
		{Name: "q20", SQL: "SELECT device, clicks FROM events WHERE status = 400",
			Native:       druid.Query{Table: "events", Filters: []druid.Filter{eq("status", int64(400))}, Columns: []string{"device", "clicks"}},
			HasPredicate: true},
	}
	// Sanity: the paper's category counts.
	preds, limits, aggs := 0, 0, 0
	for _, q := range qs {
		if q.HasPredicate {
			preds++
		}
		if q.HasLimit {
			limits++
		}
		if q.IsAggregation {
			aggs++
		}
	}
	if len(qs) != 20 || preds != 14 || limits != 5 || aggs != 12 {
		panic(fmt.Sprintf("workload: fig16 category counts off: %d queries, %d preds, %d limits, %d aggs",
			len(qs), preds, limits, aggs))
	}
	return qs
}
