package workload

import (
	"testing"

	"prestolite/internal/connectors/memory"
	"prestolite/internal/core"
	"prestolite/internal/druid"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/parquet"
)

func TestWriterDatasetsGenerate(t *testing.T) {
	for _, ds := range WriterDatasets() {
		page := ds.Generate(1, 200)
		if page.Count() != 200 {
			t.Errorf("%s: %d rows", ds.Name, page.Count())
		}
		if len(page.Blocks) != len(ds.Cols) {
			t.Errorf("%s: %d blocks for %d cols", ds.Name, len(page.Blocks), len(ds.Cols))
		}
		// Deterministic.
		again := ds.Generate(1, 200)
		if again.SizeBytes() != page.SizeBytes() {
			t.Errorf("%s: non-deterministic generation", ds.Name)
		}
		// Round-trips through the file format (schema validity).
		if _, err := parquet.NewSchema(ds.Cols, ds.Types); err != nil {
			t.Errorf("%s: schema: %v", ds.Name, err)
		}
	}
	if n := len(WriterDatasets()); n != 11 {
		t.Errorf("datasets = %d, want 11 (Figs 18-20)", n)
	}
}

func TestEventQueriesCategoryCounts(t *testing.T) {
	qs := EventQueries() // panics internally if counts are off
	if len(qs) != 20 {
		t.Fatalf("queries = %d", len(qs))
	}
	store := druid.NewStore()
	if err := BuildEventsTable(store, EventsConfig{Rows: 2000, Segments: 2}); err != nil {
		t.Fatal(err)
	}
	// Every native query executes; every SQL query parses and runs.
	e := core.New()
	// no druid connector here; just run natives
	for _, q := range qs {
		if _, err := store.Execute(q.Native); err != nil {
			t.Errorf("%s native: %v", q.Name, err)
		}
	}
	_ = e
}

func TestTripsWarehouseAndQueries(t *testing.T) {
	nn := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	cfg := TripsConfig{RowsPerDate: 200, Dates: 2, FilesPerDate: 2, RowGroupRows: 64, NeedleCityID: 777}
	dates, err := BuildTripsWarehouse(ms, nn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dates) != 2 {
		t.Fatalf("dates = %v", dates)
	}
	qs := TripQueries(cfg)
	if len(qs) != 21 {
		t.Fatalf("queries = %d, want 21 (Fig 17)", len(qs))
	}
	kinds := map[string]int{}
	for _, q := range qs {
		kinds[q.Kind]++
	}
	// Paper: 4 scans (2 needle), 5 group-bys, 12 joins.
	if kinds["scan"] != 2 || kinds["needle"] != 2 || kinds["groupby"] != 5 || kinds["join"] != 12 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestGeoTables(t *testing.T) {
	mem := memory.New("memory")
	cfg := GeoConfig{Cities: 9, VerticesPerCity: 12, Trips: 500}
	if err := BuildGeoTables(mem, cfg); err != nil {
		t.Fatal(err)
	}
	e := core.New()
	e.Register("memory", mem)
	s := core.DefaultSession("memory", "geo")
	res, err := e.Query(s, "SELECT count(*) FROM cities")
	if err != nil || res.Rows()[0][0] != int64(9) {
		t.Fatalf("cities = %v, %v", res.Rows(), err)
	}
	res, err = e.Query(s, GeoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() == 0 {
		t.Error("geo query matched nothing")
	}
}

func TestDemoCatalogs(t *testing.T) {
	reg, err := DemoCatalogs()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("hive"); err != nil {
		t.Error(err)
	}
	if _, err := reg.Get("druid"); err != nil {
		t.Error(err)
	}
}
