package execution

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"prestolite/internal/resource"
)

// spillPageRows bounds the rows per page frame written to a spill run (and
// per page emitted by spilled merge paths), keeping read-back reservations
// small.
const spillPageRows = 1024

// Revocation pacing: a starved hard reservation polls the pool while flagged
// siblings spill; past the deadline it fails typed, exactly as it would have
// without revocation.
const (
	revokePollInterval = 2 * time.Millisecond
	revokeWaitMax      = 5 * time.Second
)

// revokeHub coordinates cooperative memory revocation among the spillable
// operators of one query. With intra-task parallelism, many spillable
// operators share the query pool concurrently; an operator that just spilled
// its own buffer can still see its page-sized hard reservation refused
// because siblings hold the rest of the pool in soft reservations they would
// happily spill — they just haven't been refused yet. The hub closes that
// starvation window: the starved operator flags every sibling, each sibling
// voluntarily yields (reports its next soft reserve as refused, taking its
// normal spill path) when it sees its flag, and the starved reservation
// retries as the pool drains. Everything stays on each operator's own
// goroutine — the hub only ever touches atomic flags, never operator state.
type revokeHub struct {
	mu      sync.Mutex
	members []*opMem
}

func (h *revokeHub) add(m *opMem) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.members = append(h.members, m)
}

// requestExcept flags every member but me, reporting whether any sibling
// exists to yield.
func (h *revokeHub) requestExcept(me *opMem) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, m := range h.members {
		if m != me {
			m.revoke.Store(true)
			n++
		}
	}
	return n > 0
}

// opMem is a blocking operator's handle on the query memory context: it
// tracks how many bytes the operator holds, answers "reserve or spill?", and
// turns pool/spill refusals into the user-visible Insufficient Resources
// error (§XII.C). A nil pool means the operator runs unaccounted (no
// query_max_memory and no worker pool) — every reserve succeeds.
type opMem struct {
	op       string
	pool     *resource.Pool
	spill    *resource.SpillManager
	reserved int64

	// hub wires this operator into the query's revocation set (spillable
	// operators only); revoke is the incoming "please yield" flag, checked on
	// the next soft reserve.
	hub    *revokeHub
	revoke atomic.Bool
}

// newOpMem is called while the plan is built — before any driver goroutine
// starts — so lazily creating the query's shared revocation hub here is
// single-threaded.
func newOpMem(op string, ctx *Context) *opMem {
	m := &opMem{op: op, pool: ctx.Memory, spill: ctx.Spill}
	if m.pool != nil && m.spill != nil {
		if ctx.revoke == nil {
			ctx.revoke = &revokeHub{}
		}
		m.hub = ctx.revoke
		m.hub.add(m)
	}
	return m
}

// canSpill reports whether spilling is enabled for this query.
func (m *opMem) canSpill() bool { return m.spill != nil }

// newRun opens a spill run tagged with the operator name. Only call when
// canSpill.
func (m *opMem) newRun(tag string) (*resource.RunWriter, error) {
	return m.spill.NewRun(tag)
}

// reserve charges n bytes against the query pool. ok=false (with nil error)
// means the reservation was refused and the operator should spill its
// buffer; it is only returned when spilling is possible. A non-nil error
// means the query must fail (already wrapped for the user).
func (m *opMem) reserve(n int64) (ok bool, err error) {
	if m.pool == nil || n <= 0 {
		return true, nil
	}
	// A starved sibling asked for memory back: yield by reporting this
	// reservation refused, which sends the operator down its normal spill
	// path. The flag is one-shot and only honored while there is something
	// to give back.
	if m.hub != nil && m.revoke.Load() && m.revoke.CompareAndSwap(true, false) && m.reserved > 0 {
		return false, nil
	}
	err = m.pool.TryReserve(n)
	if err == nil {
		m.reserved += n
		return true, nil
	}
	if m.spill != nil && errors.Is(err, resource.ErrPoolExhausted) {
		return false, nil
	}
	if err := m.hardReserveErr(n); err != nil {
		return false, err
	}
	return true, nil
}

// hardReserve charges n bytes with no spill fallback: the pool may escalate
// to the root's OOM killer; a refusal fails the query.
func (m *opMem) hardReserve(n int64) error {
	if m.pool == nil || n <= 0 {
		return nil
	}
	return m.hardReserveErr(n)
}

func (m *opMem) hardReserveErr(n int64) error {
	err := m.pool.Reserve(n)
	if err == nil {
		m.reserved += n
		return nil
	}
	// Pool exhausted, but sibling spillable operators hold most of it in
	// reservations they can shed: request revocation and poll while they
	// spill. Sleeping here is safe — this operator holds no locks, and the
	// siblings run on their own driver goroutines.
	if m.hub != nil && errors.Is(err, resource.ErrPoolExhausted) {
		deadline := time.Now().Add(revokeWaitMax)
		for m.hub.requestExcept(m) {
			time.Sleep(revokePollInterval)
			if err = m.pool.Reserve(n); err == nil {
				m.reserved += n
				return nil
			}
			if !errors.Is(err, resource.ErrPoolExhausted) || time.Now().After(deadline) {
				break
			}
		}
	}
	return m.fail(err)
}

// release returns n bytes (clamped to what the operator holds).
func (m *opMem) release(n int64) {
	if m.pool == nil {
		return
	}
	if n > m.reserved {
		n = m.reserved
	}
	if n <= 0 {
		return
	}
	m.pool.Release(n)
	m.reserved -= n
}

// releaseAll returns everything the operator still holds.
func (m *opMem) releaseAll() { m.release(m.reserved) }

// addSpilled records spilled bytes against the query (the spilled_bytes
// stat aggregated up the pool tree).
func (m *opMem) addSpilled(n int64) {
	if m.pool != nil {
		m.pool.AddSpilled(n)
	}
}

// fail wraps a pool or spill-budget refusal into the §XII.C user-visible
// error; OOM kills pass through typed so the coordinator can report them.
func (m *opMem) fail(err error) error {
	if errors.Is(err, resource.ErrQueryKilledOOM) {
		return err
	}
	var limit int64
	if m.pool != nil {
		limit = m.pool.Limit()
	}
	var ex resource.ExhaustedError
	if errors.As(err, &ex) {
		limit = ex.Limit
	}
	return ErrInsufficientResources{Operator: m.op, Limit: limit, Cause: err}
}
