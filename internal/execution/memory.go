package execution

import (
	"errors"

	"prestolite/internal/resource"
)

// spillPageRows bounds the rows per page frame written to a spill run (and
// per page emitted by spilled merge paths), keeping read-back reservations
// small.
const spillPageRows = 1024

// opMem is a blocking operator's handle on the query memory context: it
// tracks how many bytes the operator holds, answers "reserve or spill?", and
// turns pool/spill refusals into the user-visible Insufficient Resources
// error (§XII.C). A nil pool means the operator runs unaccounted (no
// query_max_memory and no worker pool) — every reserve succeeds.
type opMem struct {
	op       string
	pool     *resource.Pool
	spill    *resource.SpillManager
	reserved int64
}

func newOpMem(op string, ctx *Context) *opMem {
	return &opMem{op: op, pool: ctx.Memory, spill: ctx.Spill}
}

// canSpill reports whether spilling is enabled for this query.
func (m *opMem) canSpill() bool { return m.spill != nil }

// newRun opens a spill run tagged with the operator name. Only call when
// canSpill.
func (m *opMem) newRun(tag string) (*resource.RunWriter, error) {
	return m.spill.NewRun(tag)
}

// reserve charges n bytes against the query pool. ok=false (with nil error)
// means the reservation was refused and the operator should spill its
// buffer; it is only returned when spilling is possible. A non-nil error
// means the query must fail (already wrapped for the user).
func (m *opMem) reserve(n int64) (ok bool, err error) {
	if m.pool == nil || n <= 0 {
		return true, nil
	}
	err = m.pool.TryReserve(n)
	if err == nil {
		m.reserved += n
		return true, nil
	}
	if m.spill != nil && errors.Is(err, resource.ErrPoolExhausted) {
		return false, nil
	}
	if err := m.hardReserveErr(n); err != nil {
		return false, err
	}
	return true, nil
}

// hardReserve charges n bytes with no spill fallback: the pool may escalate
// to the root's OOM killer; a refusal fails the query.
func (m *opMem) hardReserve(n int64) error {
	if m.pool == nil || n <= 0 {
		return nil
	}
	return m.hardReserveErr(n)
}

func (m *opMem) hardReserveErr(n int64) error {
	if err := m.pool.Reserve(n); err != nil {
		return m.fail(err)
	}
	m.reserved += n
	return nil
}

// release returns n bytes (clamped to what the operator holds).
func (m *opMem) release(n int64) {
	if m.pool == nil {
		return
	}
	if n > m.reserved {
		n = m.reserved
	}
	if n <= 0 {
		return
	}
	m.pool.Release(n)
	m.reserved -= n
}

// releaseAll returns everything the operator still holds.
func (m *opMem) releaseAll() { m.release(m.reserved) }

// addSpilled records spilled bytes against the query (the spilled_bytes
// stat aggregated up the pool tree).
func (m *opMem) addSpilled(n int64) {
	if m.pool != nil {
		m.pool.AddSpilled(n)
	}
}

// fail wraps a pool or spill-budget refusal into the §XII.C user-visible
// error; OOM kills pass through typed so the coordinator can report them.
func (m *opMem) fail(err error) error {
	if errors.Is(err, resource.ErrQueryKilledOOM) {
		return err
	}
	var limit int64
	if m.pool != nil {
		limit = m.pool.Limit()
	}
	var ex resource.ExhaustedError
	if errors.As(err, &ex) {
		limit = ex.Limit
	}
	return ErrInsufficientResources{Operator: m.op, Limit: limit, Cause: err}
}
