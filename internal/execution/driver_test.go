package execution

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/planner"
	"prestolite/internal/types"
)

// ---------------------------------------------------------------------------
// Stub connector: deterministic pages per split, optional per-page delay.

type testSplit struct{ vals []int64 }

func (s *testSplit) Description() string { return "test split" }

type testHandle struct{}

func (testHandle) Description() string { return "test table" }

type testConnector struct {
	splits []connector.Split
	delay  time.Duration
	opened atomic.Int64 // page sources created (== splits actually read)
}

func (c *testConnector) Name() string                                   { return "test" }
func (c *testConnector) Metadata() connector.Metadata                   { return nil }
func (c *testConnector) SplitManager() connector.SplitManager           { return c }
func (c *testConnector) RecordSetProvider() connector.RecordSetProvider { return c }

func (c *testConnector) Splits(connector.TableHandle) ([]connector.Split, error) {
	return c.splits, nil
}

func (c *testConnector) CreatePageSource(_ connector.TableHandle, split connector.Split, _ []int) (connector.PageSource, error) {
	c.opened.Add(1)
	return &testPageSource{vals: split.(*testSplit).vals, delay: c.delay}, nil
}

// testPageSource emits one single-row page per value.
type testPageSource struct {
	vals  []int64
	pos   int
	delay time.Duration
}

func (s *testPageSource) Next() (*block.Page, error) {
	if s.pos >= len(s.vals) {
		return nil, io.EOF
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	v := s.vals[s.pos]
	s.pos++
	return intPage(v), nil
}

func (s *testPageSource) Close() error { return nil }

// testScan builds a single-column BIGINT table scan over the given splits.
func testScan(t *testing.T, splitVals ...[]int64) (*planner.TableScan, *testConnector, *connector.Registry) {
	t.Helper()
	c := &testConnector{}
	for _, v := range splitVals {
		c.splits = append(c.splits, &testSplit{vals: v})
	}
	reg := connector.NewRegistry()
	reg.Register("t", c)
	scan := &planner.TableScan{
		Catalog: "t", Schema: "s", Table: "x", Handle: testHandle{},
		Cols:           []planner.Column{{Name: "v", Type: types.Bigint}},
		ColumnOrdinals: []int{0},
		PushedLimit:    -1,
	}
	return scan, c, reg
}

// ---------------------------------------------------------------------------
// Small test operators.

// failingOperator returns err on every Next.
type failingOperator struct{ err error }

func (o *failingOperator) Next() (*block.Page, error) { return nil, o.err }
func (o *failingOperator) Close() error               { return nil }

// countingOperator yields n single-value pages, counting how many were pulled
// and whether Close ran.
type countingOperator struct {
	n        int
	produced atomic.Int64
	closed   atomic.Bool
}

func (o *countingOperator) Next() (*block.Page, error) {
	if int(o.produced.Load()) >= o.n {
		return nil, io.EOF
	}
	v := o.produced.Add(1)
	return intPage(v), nil
}

func (o *countingOperator) Close() error { o.closed.Store(true); return nil }

func pagesOf(vals ...int64) *pagesOperator {
	pages := make([]*block.Page, len(vals))
	for i, v := range vals {
		pages[i] = intPage(v)
	}
	return &pagesOperator{pages: pages}
}

func col0Int64s(pages []*block.Page) []int64 {
	var out []int64
	for _, p := range pages {
		b := p.Blocks[0]
		for i := 0; i < p.Count(); i++ {
			out = append(out, b.Value(i).(int64))
		}
	}
	return out
}

func sortedInt64s(vals []int64) []int64 {
	out := append([]int64(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// drainAll drains every endpoint concurrently (each endpoint is owned by one
// driver goroutine in real plans; draining serially could deadlock on the
// bounded channels, which is exactly not how exchanges are used).
func drainAll(t *testing.T, endpoints []Operator) ([][]int64, []error) {
	t.Helper()
	vals := make([][]int64, len(endpoints))
	errs := make([]error, len(endpoints))
	var wg sync.WaitGroup
	for i, ep := range endpoints {
		wg.Add(1)
		go func(i int, ep Operator) {
			defer wg.Done()
			pages, err := Drain(ep)
			vals[i] = col0Int64s(pages)
			errs[i] = err
		}(i, ep)
	}
	wg.Wait()
	return vals, errs
}

// expectGoroutines polls until the goroutine count returns to the baseline —
// producers are joined on the last endpoint Close, so any excess is a leak.
func expectGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// Exchange semantics.

func TestLocalExchangeGather(t *testing.T) {
	sources := []Operator{pagesOf(1, 2, 3), pagesOf(4, 5), pagesOf(6)}
	eps := newLocalExchange(&Context{}, sources, exGather, nil, 1)
	vals, errs := drainAll(t, eps)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	want := []int64{1, 2, 3, 4, 5, 6}
	if got := sortedInt64s(vals[0]); len(got) != len(want) {
		t.Fatalf("gather lost rows: got %v want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("gather rows mismatch: got %v want %v", got, want)
			}
		}
	}
}

func TestLocalExchangeRoundRobin(t *testing.T) {
	sources := []Operator{pagesOf(1, 2, 3, 4, 5, 6, 7, 8)}
	eps := newLocalExchange(&Context{}, sources, exRoundRobin, nil, 4)
	vals, errs := drainAll(t, eps)
	var all []int64
	nonEmpty := 0
	for i := range eps {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if len(vals[i]) > 0 {
			nonEmpty++
		}
		all = append(all, vals[i]...)
	}
	got := sortedInt64s(all)
	if len(got) != 8 {
		t.Fatalf("round robin lost rows: %v", got)
	}
	for i := range got {
		if got[i] != int64(i+1) {
			t.Fatalf("round robin rows mismatch: %v", got)
		}
	}
	// 8 pages over 4 outputs must actually spread the work.
	if nonEmpty < 2 {
		t.Fatalf("round robin did not rebalance: %d non-empty outputs", nonEmpty)
	}
}

func TestLocalExchangePassthroughOrder(t *testing.T) {
	sources := []Operator{pagesOf(1, 2, 3), pagesOf(10, 20, 30)}
	eps := newLocalExchange(&Context{}, sources, exPassthrough, nil, 2)
	vals, errs := drainAll(t, eps)
	want := [][]int64{{1, 2, 3}, {10, 20, 30}}
	for i := range eps {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if len(vals[i]) != len(want[i]) {
			t.Fatalf("stream %d: got %v want %v", i, vals[i], want[i])
		}
		for j := range want[i] {
			if vals[i][j] != want[i][j] {
				t.Fatalf("stream %d order broken: got %v want %v", i, vals[i], want[i])
			}
		}
	}
}

func TestLocalExchangePartitionDisjoint(t *testing.T) {
	// Two producers emit overlapping keys; every occurrence of one key must
	// land on exactly one output, no matter which producer carried it.
	sources := []Operator{
		&pagesOperator{pages: []*block.Page{
			intPage(1, 2, 3, 4, 5, 6, 7, 8), intPage(1, 2, 3),
		}},
		&pagesOperator{pages: []*block.Page{
			intPage(5, 6, 7, 8), intPage(42),
		}},
	}
	eps := newLocalExchange(&Context{}, sources, exPartition, []int{0}, 3)
	vals, errs := drainAll(t, eps)
	home := map[int64]int{}
	total := 0
	for i := range eps {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		total += len(vals[i])
		for _, v := range vals[i] {
			if prev, ok := home[v]; ok && prev != i {
				t.Fatalf("key %d split across outputs %d and %d", v, prev, i)
			}
			home[v] = i
		}
	}
	if total != 16 {
		t.Fatalf("partition lost rows: %d of 16", total)
	}
}

func TestLocalExchangeErrorPropagation(t *testing.T) {
	base := runtime.NumGoroutine()
	boom := errors.New("split went away")
	big := &countingOperator{n: 100000}
	sources := []Operator{big, &failingOperator{err: boom}}
	eps := newLocalExchange(&Context{}, sources, exRoundRobin, nil, 2)
	_, errs := drainAll(t, eps)
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("endpoint %d: got %v, want the producer error", i, err)
		}
	}
	for _, ep := range eps {
		if err := ep.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// The sibling must have been stopped well before draining its 100k pages,
	// and its Close must have run.
	if got := big.produced.Load(); got == 100000 {
		t.Fatal("sibling producer ran to completion despite the error")
	}
	if !big.closed.Load() {
		t.Fatal("sibling source not closed after error")
	}
	expectGoroutines(t, base)
}

func TestLocalExchangeEarlyCloseUnstarted(t *testing.T) {
	// Closing every endpoint before any Next must close the sources without
	// ever starting producers.
	base := runtime.NumGoroutine()
	srcs := []*countingOperator{{n: 10}, {n: 10}}
	eps := newLocalExchange(&Context{}, []Operator{srcs[0], srcs[1]}, exRoundRobin, nil, 2)
	for _, ep := range eps {
		if err := ep.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range srcs {
		if !s.closed.Load() {
			t.Fatalf("source %d not closed", i)
		}
		if s.produced.Load() != 0 {
			t.Fatalf("source %d was pulled without a consumer", i)
		}
	}
	expectGoroutines(t, base)
}

func TestLocalExchangeEarlyCloseRunning(t *testing.T) {
	// LIMIT-style teardown: pull a little, then close all endpoints. The
	// producers must stop and be joined; the source must be closed.
	base := runtime.NumGoroutine()
	src := &countingOperator{n: 1 << 30}
	eps := newLocalExchange(&Context{}, []Operator{src}, exRoundRobin, nil, 2)
	if _, err := eps[0].Next(); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		if err := ep.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !src.closed.Load() {
		t.Fatal("source not closed on early teardown")
	}
	expectGoroutines(t, base)
}

func TestLocalExchangeEndpointEarlyClose(t *testing.T) {
	// One endpoint closing early (its driver's LIMIT satisfied) must not
	// wedge producers routing rows to it — pages for the dead endpoint are
	// dropped and the surviving endpoint still drains to EOF.
	base := runtime.NumGoroutine()
	src := pagesOf(func() []int64 {
		vals := make([]int64, 200)
		for i := range vals {
			vals[i] = int64(i)
		}
		return vals
	}()...)
	eps := newLocalExchange(&Context{}, []Operator{src}, exRoundRobin, nil, 2)
	if err := eps[1].Close(); err != nil {
		t.Fatal(err)
	}
	pages, err := Drain(eps[0])
	if err != nil {
		t.Fatal(err)
	}
	if n := len(col0Int64s(pages)); n == 0 || n > 200 {
		t.Fatalf("surviving endpoint got %d rows", n)
	}
	expectGoroutines(t, base)
}

func TestLocalExchangeContextCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	cctx, cancel := context.WithCancel(context.Background())
	src := &countingOperator{n: 1 << 30}
	eps := newLocalExchange(&Context{Ctx: cctx}, []Operator{src}, exGather, nil, 1)
	if _, err := eps[0].Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	var err error
	for {
		if _, err = eps[0].Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, io.EOF) {
		t.Fatalf("got %v, want context.Canceled (or EOF after stop)", err)
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	if got := src.produced.Load(); got == 1<<30 {
		t.Fatal("producer ran to completion despite cancellation")
	}
	expectGoroutines(t, base)
}

// ---------------------------------------------------------------------------
// Parallel scan over the shared split queue.

func TestSplitQueueTakesEachSplitOnce(t *testing.T) {
	q := &splitQueue{splits: []connector.Split{&testSplit{}, &testSplit{}, &testSplit{}}}
	seen := map[int]bool{}
	for {
		_, idx, ok := q.take()
		if !ok {
			break
		}
		if seen[idx] {
			t.Fatalf("split %d taken twice", idx)
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("took %d of 3 splits", len(seen))
	}
	if _, _, ok := q.take(); ok {
		t.Fatal("drained queue handed out another split")
	}
}

func TestBuildParallelScanEquivalence(t *testing.T) {
	scan, conn, reg := testScan(t,
		[]int64{1, 2, 3}, []int64{4, 5}, []int64{6}, []int64{7, 8, 9, 10})

	serialCtx := &Context{Catalogs: reg, Drivers: 1}
	op, err := BuildParallel(scan, serialCtx)
	if err != nil {
		t.Fatal(err)
	}
	serialPages, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}

	conn.opened.Store(0)
	base := runtime.NumGoroutine()
	parCtx := &Context{Catalogs: reg, Drivers: 4}
	op, err = BuildParallel(scan, parCtx)
	if err != nil {
		t.Fatal(err)
	}
	parPages, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	expectGoroutines(t, base)

	serial := sortedInt64s(col0Int64s(serialPages))
	par := sortedInt64s(col0Int64s(parPages))
	if len(serial) != len(par) {
		t.Fatalf("row counts differ: serial %d, parallel %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("rows differ after sorting: serial %v, parallel %v", serial, par)
		}
	}
	if got := conn.opened.Load(); got != 4 {
		t.Fatalf("parallel scan opened %d page sources, want 4 (one per split)", got)
	}
}

func TestBuildParallelFilterEquivalence(t *testing.T) {
	scan, _, reg := testScan(t, []int64{1, 2, 3, 4}, []int64{5, 6, 7, 8})
	plan := &planner.Filter{
		Child:     scan,
		Predicate: expr.MustCall("gte", expr.NewVariable("v", 0, types.Bigint), expr.NewConstant(int64(4), types.Bigint)),
	}
	op, err := BuildParallel(plan, &Context{Catalogs: reg, Drivers: 3})
	if err != nil {
		t.Fatal(err)
	}
	pages, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedInt64s(col0Int64s(pages))
	want := []int64{4, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestBuildParallelLimitStopsEarly(t *testing.T) {
	base := runtime.NumGoroutine()
	scan, _, reg := testScan(t,
		[]int64{1, 2, 3, 4, 5}, []int64{6, 7, 8, 9, 10},
		[]int64{11, 12, 13, 14, 15}, []int64{16, 17, 18, 19, 20})
	plan := &planner.Limit{Child: scan, N: 7}
	op, err := BuildParallel(plan, &Context{Catalogs: reg, Drivers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pages, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(col0Int64s(pages)); n != 7 {
		t.Fatalf("LIMIT 7 returned %d rows", n)
	}
	expectGoroutines(t, base)
}

func TestParallelScanCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	cctx, cancel := context.WithCancel(context.Background())
	scan, conn, reg := testScan(t,
		[]int64{1, 2, 3, 4, 5}, []int64{6, 7, 8, 9, 10},
		[]int64{11, 12, 13, 14, 15}, []int64{16, 17, 18, 19, 20})
	conn.delay = 2 * time.Millisecond
	op, err := BuildParallel(scan, &Context{Catalogs: reg, Ctx: cctx, Drivers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := op.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	for {
		_, err = op.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	expectGoroutines(t, base)
}

func TestParallelScanCancelledBeforeStart(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	scan, _, reg := testScan(t, []int64{1, 2, 3})
	op, err := BuildParallel(scan, &Context{Catalogs: reg, Ctx: cctx, Drivers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := op.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildParallelFallsBackWithoutScan(t *testing.T) {
	// A plan with no TableScan (pure VALUES) is not parallel-eligible and
	// must take the serial Build path even with Drivers > 1.
	vals := &planner.Values{
		Cols: []planner.Column{{Name: "v", Type: types.Bigint}},
		Rows: [][]any{{int64(1)}, {int64(2)}},
	}
	if planner.ParallelEligible(vals) {
		t.Fatal("VALUES plan reported parallel-eligible")
	}
	op, err := BuildParallel(vals, &Context{Drivers: 8})
	if err != nil {
		t.Fatal(err)
	}
	pages, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(col0Int64s(pages)); n != 2 {
		t.Fatalf("got %d rows, want 2", n)
	}
}

// ---------------------------------------------------------------------------
// Adaptive exchange.

func TestAdaptiveExchangeGathersSmall(t *testing.T) {
	// Under the row limit every page must land on output 0 (no partitioning),
	// leaving the sibling endpoints empty.
	sources := []Operator{pagesOf(1, 2, 3), pagesOf(4, 5)}
	eps, st := newAdaptiveExchange(&Context{}, sources, []int{0}, 3, exGather)
	vals, errs := drainAll(t, eps)
	for i := range eps {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	if got := sortedInt64s(vals[0]); len(got) != 5 {
		t.Fatalf("output 0 got %v, want all 5 rows", got)
	}
	if len(vals[1])+len(vals[2]) != 0 {
		t.Fatalf("small input leaked past output 0: %v / %v", vals[1], vals[2])
	}
	if !st.isDecided() || st.mode != exGather {
		t.Fatalf("decision = %v (decided %v), want exGather", st.mode, st.isDecided())
	}
}

func TestAdaptiveExchangePartitionsLarge(t *testing.T) {
	// Over the limit the exchange must fall back to hash partitioning: every
	// occurrence of a key on one output, with real spread across outputs.
	ctx := &Context{AdaptiveExchangeRows: 4}
	sources := []Operator{
		&pagesOperator{pages: []*block.Page{intPage(1, 2, 3, 4, 5, 6, 7, 8), intPage(1, 2, 3)}},
		&pagesOperator{pages: []*block.Page{intPage(5, 6, 7, 8)}},
	}
	eps, st := newAdaptiveExchange(ctx, sources, []int{0}, 3, exGather)
	vals, errs := drainAll(t, eps)
	home := map[int64]int{}
	total, nonEmpty := 0, 0
	for i := range eps {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		total += len(vals[i])
		if len(vals[i]) > 0 {
			nonEmpty++
		}
		for _, v := range vals[i] {
			if prev, ok := home[v]; ok && prev != i {
				t.Fatalf("key %d split across outputs %d and %d", v, prev, i)
			}
			home[v] = i
		}
	}
	if total != 15 {
		t.Fatalf("adaptive partition lost rows: %d of 15", total)
	}
	if nonEmpty < 2 {
		t.Fatalf("adaptive partition did not spread: %d non-empty outputs", nonEmpty)
	}
	if st.mode != exPartition {
		t.Fatalf("decision = %v, want exPartition", st.mode)
	}
}

func TestAdaptiveExchangeBroadcastFollower(t *testing.T) {
	// A small build side broadcasts to every output, and the follower (probe)
	// side round-robins — together each output can join any probe row.
	ctx := &Context{}
	build, st := newAdaptiveExchange(ctx, []Operator{pagesOf(10, 20)}, []int{0}, 2, exBroadcast)
	probe := newFollowerExchange(ctx, []Operator{pagesOf(1, 2, 3, 4)}, []int{0}, 2, st)

	var wg sync.WaitGroup
	buildVals := make([][]int64, 2)
	probeVals := make([][]int64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bp, err := Drain(build[i])
			if err != nil {
				t.Error(err)
			}
			buildVals[i] = col0Int64s(bp)
			pp, err := Drain(probe[i])
			if err != nil {
				t.Error(err)
			}
			probeVals[i] = col0Int64s(pp)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if got := sortedInt64s(buildVals[i]); len(got) != 2 || got[0] != 10 || got[1] != 20 {
			t.Fatalf("output %d build side = %v, want the full broadcast {10,20}", i, got)
		}
	}
	if n := len(probeVals[0]) + len(probeVals[1]); n != 4 {
		t.Fatalf("follower lost probe rows: %d of 4", n)
	}
	if st.mode != exBroadcast {
		t.Fatalf("decision = %v, want exBroadcast", st.mode)
	}
}

func TestAdaptiveExchangeFollowerPartitionsWithSameHash(t *testing.T) {
	// A large build side partitions, and the follower must route matching
	// keys to the same output index (the join co-location invariant).
	ctx := &Context{AdaptiveExchangeRows: 2}
	build, st := newAdaptiveExchange(ctx, []Operator{pagesOf(1, 2, 3, 4, 5, 6)}, []int{0}, 3, exBroadcast)
	probe := newFollowerExchange(ctx, []Operator{pagesOf(1, 2, 3, 4, 5, 6)}, []int{0}, 3, st)

	var wg sync.WaitGroup
	buildVals := make([][]int64, 3)
	probeVals := make([][]int64, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bp, err := Drain(build[i])
			if err != nil {
				t.Error(err)
			}
			buildVals[i] = col0Int64s(bp)
			pp, err := Drain(probe[i])
			if err != nil {
				t.Error(err)
			}
			probeVals[i] = col0Int64s(pp)
		}(i)
	}
	wg.Wait()
	if st.mode != exPartition {
		t.Fatalf("decision = %v, want exPartition", st.mode)
	}
	buildHome := map[int64]int{}
	for i, vs := range buildVals {
		for _, v := range vs {
			buildHome[v] = i
		}
	}
	for i, vs := range probeVals {
		for _, v := range vs {
			if buildHome[v] != i {
				t.Fatalf("key %d probed on output %d but built on output %d", v, i, buildHome[v])
			}
		}
	}
}

func TestAdaptiveExchangeDisabledIsPlainPartition(t *testing.T) {
	ctx := &Context{AdaptiveExchangeRows: -1}
	eps, st := newAdaptiveExchange(ctx, []Operator{pagesOf(1, 2, 3)}, []int{0}, 2, exGather)
	if st != nil {
		t.Fatal("disabled adaptive exchange still returned shared state")
	}
	vals, errs := drainAll(t, eps)
	for i := range eps {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	if len(vals[0])+len(vals[1]) != 3 {
		t.Fatalf("disabled mode lost rows: %v / %v", vals[0], vals[1])
	}
}
