package execution

import (
	"errors"
	"io"

	"prestolite/internal/block"
	"prestolite/internal/planner"
	"prestolite/internal/types"
)

// streamMergeOperator k-way merges already-sorted operator streams (the
// per-driver sorts of a parallel ORDER BY) into one sorted stream. It is the
// streaming sibling of sortOperator's spilled-run merge: same min-cursor
// selection, same NULLS-LAST comparison, but cursors advance by pulling the
// next page from a live stream instead of reading a run back from disk.
type streamMergeOperator struct {
	keys     []planner.SortKey
	outTypes []*types.Type
	cursors  []*streamCursor
	opened   bool
	done     bool
	scratch  []any
}

// streamCursor tracks one sorted input stream, holding one page at a time.
type streamCursor struct {
	src  Operator
	page *block.Page
	row  int
	done bool
}

func newStreamMergeOperator(keys []planner.SortKey, outTypes []*types.Type, sources []Operator) *streamMergeOperator {
	cursors := make([]*streamCursor, len(sources))
	for i, s := range sources {
		cursors[i] = &streamCursor{src: s}
	}
	return &streamMergeOperator{keys: keys, outTypes: outTypes, cursors: cursors}
}

// advance loads the cursor's next non-empty page.
func (o *streamMergeOperator) advance(c *streamCursor) error {
	c.page, c.row = nil, 0
	for {
		p, err := c.src.Next()
		if errors.Is(err, io.EOF) {
			c.done = true
			return nil
		}
		if err != nil {
			return err
		}
		if p.Count() == 0 {
			continue
		}
		c.page = p
		return nil
	}
}

func (o *streamMergeOperator) Next() (*block.Page, error) {
	if o.done {
		return nil, io.EOF
	}
	if !o.opened {
		// First pages block until each driver's sort finishes consuming —
		// the sorts run concurrently in their exchange producers.
		for _, c := range o.cursors {
			if err := o.advance(c); err != nil {
				return nil, err
			}
		}
		o.opened = true
	}
	pb := block.NewPageBuilder(o.outTypes)
	if o.scratch == nil {
		o.scratch = make([]any, len(o.outTypes))
	}
	row := o.scratch
	for pb.Len() < spillPageRows {
		c := o.minCursor()
		if c == nil {
			break
		}
		for ch := range o.outTypes {
			row[ch] = c.page.Blocks[ch].Value(c.row)
		}
		pb.AppendRow(row)
		c.row++
		if c.row >= c.page.Count() {
			if err := o.advance(c); err != nil {
				return nil, err
			}
		}
	}
	if pb.Len() == 0 {
		o.done = true
		return nil, io.EOF
	}
	return pb.Build(), nil
}

// minCursor picks the live cursor with the smallest current row; ties keep
// the lowest stream index, so merging is deterministic for a given page
// distribution.
func (o *streamMergeOperator) minCursor() *streamCursor {
	var best *streamCursor
	for _, c := range o.cursors {
		if c.done || c.page == nil {
			continue
		}
		if best == nil || o.cursorLess(c, best) {
			best = c
		}
	}
	return best
}

func (o *streamMergeOperator) cursorLess(a, b *streamCursor) bool {
	for _, k := range o.keys {
		va := a.page.Blocks[k.Channel].Value(a.row)
		vb := b.page.Blocks[k.Channel].Value(b.row)
		c := compareNullable(va, vb)
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

func (o *streamMergeOperator) Close() error {
	var errs []error
	for _, c := range o.cursors {
		errs = append(errs, c.src.Close())
	}
	return errors.Join(errs...)
}
