// Intra-task parallelism (§III Fig 1): a task runs N concurrent pipeline
// instances — drivers — over a shared split queue, the way Presto saturates
// a worker's cores. BuildParallel translates one plan into N driver
// pipelines joined by local exchanges; Build remains the serial (N=1) path
// and every operator implementation is reused unchanged — a driver's slice
// of an operator is still single-goroutine, and concurrency lives entirely
// in the exchanges.
package execution

import (
	"prestolite/internal/planner"
	"prestolite/internal/resource"
	"prestolite/internal/types"
)

// maxDrivers bounds the per-task parallelism a session property can request.
const maxDrivers = 64

// BuildParallel builds the operator tree for a plan with ctx.Drivers
// concurrent pipelines, gathered into one serial root stream. With Drivers
// ≤ 1 — or a plan with no table scan to parallelize (see
// planner.ParallelEligible) — it is exactly Build.
func BuildParallel(node planner.Node, ctx *Context) (Operator, error) {
	n := ctx.Drivers
	if n > maxDrivers {
		n = maxDrivers
	}
	if n <= 1 || !planner.ParallelEligible(node) {
		return Build(node, ctx)
	}
	if ctx.Memory == nil && ctx.MemoryLimit > 0 {
		ctx.Memory = resource.NewPool("query", ctx.MemoryLimit)
	}
	if ctx.Stats != nil && ctx.ids == nil {
		ctx.ids = planOperatorIDs(node)
	}
	streams, err := buildParallel(node, ctx, n)
	if err != nil {
		return nil, err
	}
	return gatherOne(ctx, streams), nil
}

// buildParallel builds node as k parallel streams (k ≤ n; k == 1 means the
// segment is serial). Stateless operators (filter, project) replicate per
// stream; stateful ones either partition their input so each driver owns a
// disjoint key range, or fall back to a serial instance behind a gather.
func buildParallel(node planner.Node, ctx *Context, n int) ([]Operator, error) {
	switch t := node.(type) {
	case *planner.Output:
		// Like the serial path: the child is instrumented under its own id
		// and the Output node layers its own accounting on the gathered root.
		streams, err := buildParallel(t.Child, ctx, n)
		if err != nil {
			return nil, err
		}
		return []Operator{ctx.instrument(t, gatherOne(ctx, streams))}, nil

	case *planner.TableScan:
		return buildParallelScan(t, ctx, n)

	case *planner.Filter:
		streams, err := buildParallel(t.Child, ctx, n)
		if err != nil {
			return nil, err
		}
		for i := range streams {
			streams[i] = ctx.instrument(t, &filterOperator{child: streams[i], predicate: t.Predicate})
		}
		return streams, nil

	case *planner.Project:
		streams, err := buildParallel(t.Child, ctx, n)
		if err != nil {
			return nil, err
		}
		for i := range streams {
			streams[i] = ctx.instrument(t, &projectOperator{child: streams[i], exprs: t.Exprs})
		}
		return streams, nil

	case *planner.Limit:
		streams, err := buildParallel(t.Child, ctx, n)
		if err != nil {
			return nil, err
		}
		if len(streams) > 1 {
			// Per-driver limits cut each stream early; the final limit after
			// the gather enforces the exact count. When it is satisfied its
			// Close tears the exchange down, which stops sibling drivers —
			// LIMIT over a huge scan does not finish the scan first.
			for i := range streams {
				streams[i] = &limitOperator{child: streams[i], remaining: t.N}
			}
		}
		final := &limitOperator{child: gatherOne(ctx, streams), remaining: t.N}
		return []Operator{ctx.instrument(t, final)}, nil

	case *planner.Sort:
		return buildParallelSort(t, ctx, n)

	case *planner.Aggregate:
		return buildParallelAggregate(t, ctx, n)

	case *planner.Join:
		return buildParallelJoin(t, ctx, n)

	case *planner.Union:
		// Concatenate the sides' streams (UNION ALL): each side keeps its
		// own parallelism and downstream gathers/exchanges accept the
		// combined stream set.
		var streams []Operator
		for _, src := range t.Sources {
			srcStreams, err := buildParallel(src, ctx, n)
			if err != nil {
				return nil, err
			}
			streams = append(streams, srcStreams...)
		}
		for i := range streams {
			streams[i] = ctx.instrument(t, streams[i])
		}
		return streams, nil

	default:
		// Values, RemoteSource, GeoJoin, and anything new: build the whole
		// subtree serially (instrumented by Build itself).
		op, err := Build(node, ctx)
		if err != nil {
			return nil, err
		}
		return []Operator{op}, nil
	}
}

// buildParallelScan shares one split queue across up to n scan drivers, so
// split assignment self-balances (a driver that drew a small split just
// takes the next one). A table with fewer splits than drivers gets one scan
// per split plus a round-robin fan-out, so downstream operators still run
// n-wide.
func buildParallelScan(t *planner.TableScan, ctx *Context, n int) ([]Operator, error) {
	provider, splits, err := scanSplits(t, ctx)
	if err != nil {
		return nil, err
	}
	k := n
	if len(splits) < k {
		k = len(splits)
	}
	if k <= 1 {
		// 0 or 1 split: a single scan driver...
		queue := &splitQueue{splits: splits}
		op := ctx.instrument(t, &scanOperator{
			scan: t, provider: provider, queue: queue, columns: t.ColumnOrdinals, ctx: ctx.Ctx,
		})
		if len(splits) == 0 {
			return []Operator{op}, nil
		}
		// ...with its pages rebalanced across n streams so the pipeline
		// above still runs parallel.
		return newLocalExchange(ctx, []Operator{op}, exRoundRobin, nil, n), nil
	}
	queue := &splitQueue{splits: splits}
	streams := make([]Operator, k)
	for i := range streams {
		streams[i] = ctx.instrument(t, &scanOperator{
			scan: t, provider: provider, queue: queue, columns: t.ColumnOrdinals, ctx: ctx.Ctx,
		})
	}
	if k < n {
		return newLocalExchange(ctx, streams, exRoundRobin, nil, n), nil
	}
	return streams, nil
}

// buildParallelAggregate is the partitioned parallel hash aggregation.
//
// Grouped single-step (the common case): each driver pre-aggregates its own
// stream into a partial hash map (driver-local — no shared map, no lock on
// the hot path), a hash-partition exchange routes the partials by group key,
// and per-partition FINAL aggregations merge them. Every group key lands
// wholly in one partition, so results are exact and each final map holds a
// disjoint key subset. Both layers are ordinary aggregateOperators with
// their own memory handles, so spill-under-pressure works per driver.
//
// Grouped DISTINCT cannot pre-aggregate (seen-sets do not merge), so raw
// rows are partitioned by group key into n SINGLE aggregations instead.
// PARTIAL steps (worker fragments) stay per-driver with no exchange — the
// downstream FINAL dedups across drivers exactly as it dedups across tasks.
// A global (no GROUP BY) single-step splits into per-driver partials plus
// one serial final, mirroring the fragmenter's partial/final construction;
// global DISTINCT and FINAL steps run serially behind a gather.
func buildParallelAggregate(t *planner.Aggregate, ctx *Context, n int) ([]Operator, error) {
	streams, err := buildParallel(t.Child, ctx, n)
	if err != nil {
		return nil, err
	}
	serial := func() ([]Operator, error) {
		op, err := newAggOp(ctx, t, gatherOne(ctx, streams))
		if err != nil {
			return nil, err
		}
		return []Operator{ctx.instrument(t, op)}, nil
	}
	if len(streams) == 1 {
		return serial()
	}
	hasDistinct := false
	for _, a := range t.Aggs {
		if a.Distinct {
			hasDistinct = true
		}
	}

	if len(t.GroupBy) > 0 {
		switch {
		case t.Step == planner.AggPartial && !hasDistinct:
			// Driver-local partials; duplicates across drivers are merged by
			// the downstream FINAL (same contract as across tasks).
			outs := make([]Operator, len(streams))
			for i, s := range streams {
				op, err := newAggOp(ctx, t, s)
				if err != nil {
					return nil, err
				}
				outs[i] = ctx.instrument(t, op)
			}
			return outs, nil

		case t.Step == planner.AggSingle && !hasDistinct:
			// Partial per driver → partition by group key → final per
			// partition.
			partial := &planner.Aggregate{Child: t.Child, GroupBy: t.GroupBy, Aggs: t.Aggs, Step: planner.AggPartial}
			partials := make([]Operator, len(streams))
			for i, s := range streams {
				op, err := newAggOp(ctx, partial, s)
				if err != nil {
					return nil, err
				}
				partials[i] = op
			}
			// In partial output layout the group keys are channels 0..g-1.
			groups := len(t.GroupBy)
			keys := make([]int, groups)
			for i := range keys {
				keys[i] = i
			}
			endpoints, _ := newAdaptiveExchange(ctx, partials, keys, n, exGather)
			final := finalOverPartial(t, partial)
			outs := make([]Operator, n)
			for i, ep := range endpoints {
				op, err := newAggOp(ctx, final, ep)
				if err != nil {
					return nil, err
				}
				outs[i] = ctx.instrument(t, op)
			}
			return outs, nil

		case t.Step != planner.AggFinal:
			// DISTINCT (single or partial): partition the raw rows by group
			// key so each group's seen-sets live on exactly one driver.
			endpoints := newLocalExchange(ctx, streams, exPartition, t.GroupBy, n)
			outs := make([]Operator, n)
			for i, ep := range endpoints {
				op, err := newAggOp(ctx, t, ep)
				if err != nil {
					return nil, err
				}
				outs[i] = ctx.instrument(t, op)
			}
			return outs, nil
		}
		// FINAL over a parallel child (not produced by current plans): merge
		// serially — correctness over speed.
		return serial()
	}

	// Global aggregation.
	if hasDistinct || t.Step == planner.AggFinal {
		return serial()
	}
	partial := &planner.Aggregate{Child: t.Child, Aggs: t.Aggs, Step: planner.AggPartial}
	partials := make([]Operator, len(streams))
	for i, s := range streams {
		op, err := newAggOp(ctx, partial, s)
		if err != nil {
			return nil, err
		}
		partials[i] = op
	}
	if t.Step == planner.AggPartial {
		// The plan already expects intermediates: one partial per driver.
		for i := range partials {
			partials[i] = ctx.instrument(t, partials[i])
		}
		return partials, nil
	}
	final := finalOverPartial(t, partial)
	op, err := newAggOp(ctx, final, gatherOne(ctx, partials))
	if err != nil {
		return nil, err
	}
	return []Operator{ctx.instrument(t, op)}, nil
}

// finalOverPartial derives the FINAL aggregation node that merges partial's
// intermediate output back to t's result — the same construction the
// fragmenter uses for the distributed partial/final split.
func finalOverPartial(t *planner.Aggregate, partial *planner.Aggregate) *planner.Aggregate {
	groups := len(t.GroupBy)
	finalAggs := make([]planner.Aggregation, len(t.Aggs))
	for i, a := range t.Aggs {
		fa := a
		fa.Args = []int{groups + i} // the intermediate channel
		finalAggs[i] = fa
	}
	finalGroups := make([]int, groups)
	for i := range finalGroups {
		finalGroups[i] = i
	}
	return &planner.Aggregate{
		Child:   &planner.Values{Cols: partial.Outputs()},
		GroupBy: finalGroups,
		Aggs:    finalAggs,
		Step:    planner.AggFinal,
	}
}

// buildParallelJoin partitions both sides of an equi-join by join key with
// the same hash, so matching keys meet on the same driver: n independent
// joins, each building a hash table over its own key-disjoint build slice
// (the parallel join build) and probing it with its own probe slice. NULL
// keys route consistently too, which keeps LEFT-join null extension on
// exactly one driver. Joins without equi keys (cross joins) stay serial —
// the build side would have to be broadcast — but their inputs still scan in
// parallel behind gathers.
func buildParallelJoin(t *planner.Join, ctx *Context, n int) ([]Operator, error) {
	ls, err := buildParallel(t.Left, ctx, n)
	if err != nil {
		return nil, err
	}
	rs, err := buildParallel(t.Right, ctx, n)
	if err != nil {
		return nil, err
	}
	if len(t.LeftKeys) == 0 || (len(ls) == 1 && len(rs) == 1) {
		op := newJoinOp(ctx, t, gatherOne(ctx, ls), gatherOne(ctx, rs))
		return []Operator{ctx.instrument(t, op)}, nil
	}
	buildEnds, st := newAdaptiveExchange(ctx, rs, t.RightKeys, n, exBroadcast)
	probeEnds := newFollowerExchange(ctx, ls, t.LeftKeys, n, st)
	outs := make([]Operator, n)
	for i := range outs {
		op := newJoinOp(ctx, t, probeEnds[i], buildEnds[i])
		outs[i] = ctx.instrument(t, op)
	}
	return outs, nil
}

// buildParallelSort runs one in-memory/external sort per driver and merges
// the sorted streams: the per-driver sorts are the "sorted runs" and the
// k-way streaming merge is the same cursor dance the external sort already
// does over spilled runs. The passthrough exchange exists purely to drive
// the n sorts concurrently — each one buffers and sorts in its producer
// goroutine while the merge waits for first pages.
func buildParallelSort(t *planner.Sort, ctx *Context, n int) ([]Operator, error) {
	streams, err := buildParallel(t.Child, ctx, n)
	if err != nil {
		return nil, err
	}
	if len(streams) == 1 {
		op := newSortOperator(t, streams[0], newOpMem("ORDER BY buffering", ctx))
		return []Operator{ctx.instrument(t, op)}, nil
	}
	sorts := make([]Operator, len(streams))
	for i, s := range streams {
		// Not instrumented per driver: the merge below is the node's output.
		sorts[i] = newSortOperator(t, s, newOpMem("ORDER BY buffering", ctx))
	}
	endpoints := newLocalExchange(ctx, sorts, exPassthrough, nil, len(sorts))
	outs := t.Outputs()
	ts := make([]*types.Type, len(outs))
	for i, c := range outs {
		ts[i] = c.Type
	}
	merge := newStreamMergeOperator(t.Keys, ts, endpoints)
	return []Operator{ctx.instrument(t, merge)}, nil
}
