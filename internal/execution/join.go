package execution

import (
	"errors"
	"fmt"
	"io"

	"prestolite/internal/block"
	"prestolite/internal/expr"
	"prestolite/internal/geo"
	"prestolite/internal/planner"
	"prestolite/internal/types"
)

// joinOperator is a hash join: the right (build) side is consumed fully into
// a hash table, then left (probe) pages stream through. CROSS joins use a
// nested-loop over the buffered build side.
type joinOperator struct {
	node  *planner.Join
	left  Operator
	right Operator

	built       bool
	buildRows   []*rowRef
	buildTable  map[string][]*rowRef
	buildPages  []*block.Page
	memoryLimit int64
	buildBytes  int64

	leftTypes  []*types.Type
	rightTypes []*types.Type
}

type rowRef struct {
	page *block.Page
	row  int
}

func newJoinOperator(node *planner.Join, left, right Operator) *joinOperator {
	lo, ro := node.Left.Outputs(), node.Right.Outputs()
	lt := make([]*types.Type, len(lo))
	for i, c := range lo {
		lt[i] = c.Type
	}
	rt := make([]*types.Type, len(ro))
	for i, c := range ro {
		rt[i] = c.Type
	}
	return &joinOperator{node: node, left: left, right: right, leftTypes: lt, rightTypes: rt}
}

func (o *joinOperator) build() error {
	o.buildTable = map[string][]*rowRef{}
	// Per-row scratch hoisted out of the build loop; the key bytes are only
	// materialized to a string at map-insert time.
	keys := make([]any, len(o.node.RightKeys))
	var keyBuf []byte
	for {
		p, err := o.right.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if p.Count() == 0 {
			continue
		}
		o.buildBytes += int64(p.SizeBytes())
		if o.memoryLimit > 0 && o.buildBytes > o.memoryLimit {
			return ErrInsufficientResources{Operator: "the build side of a join", Limit: o.memoryLimit}
		}
		o.buildPages = append(o.buildPages, p)
		for row := 0; row < p.Count(); row++ {
			ref := &rowRef{page: p, row: row}
			o.buildRows = append(o.buildRows, ref)
			if len(o.node.RightKeys) > 0 {
				null := false
				for i, ch := range o.node.RightKeys {
					keys[i] = p.Blocks[ch].Value(row)
					if keys[i] == nil {
						null = true
					}
				}
				if null {
					continue // NULL keys never match
				}
				keyBuf = appendGroupKey(keyBuf[:0], keys)
				k := string(keyBuf)
				o.buildTable[k] = append(o.buildTable[k], ref)
			}
		}
	}
	return nil
}

func (o *joinOperator) Next() (*block.Page, error) {
	if !o.built {
		if err := o.build(); err != nil {
			return nil, err
		}
		o.built = true
	}
	for {
		p, err := o.left.Next()
		if err != nil {
			return nil, err
		}
		out, err := o.probePage(p)
		if err != nil {
			return nil, err
		}
		if out.Count() == 0 {
			continue
		}
		return out, nil
	}
}

func (o *joinOperator) probePage(p *block.Page) (*block.Page, error) {
	outTypes := append(append([]*types.Type{}, o.leftTypes...), o.rightTypes...)
	pb := block.NewPageBuilder(outTypes)
	combined := make([]any, len(outTypes))
	keys := make([]any, len(o.node.LeftKeys)) // probe-key scratch, reused per row
	var keyBuf []byte
	for row := 0; row < p.Count(); row++ {
		var candidates []*rowRef
		if len(o.node.LeftKeys) > 0 {
			null := false
			for i, ch := range o.node.LeftKeys {
				keys[i] = p.Blocks[ch].Value(row)
				if keys[i] == nil {
					null = true
				}
			}
			if !null {
				keyBuf = appendGroupKey(keyBuf[:0], keys)
				candidates = o.buildTable[string(keyBuf)]
			}
		} else {
			candidates = o.buildRows
		}
		matched := false
		for c := 0; c < len(o.leftTypes); c++ {
			combined[c] = p.Blocks[c].Value(row)
		}
		for _, ref := range candidates {
			for c := 0; c < len(o.rightTypes); c++ {
				combined[len(o.leftTypes)+c] = ref.page.Blocks[c].Value(row2(ref))
			}
			if o.node.Residual != nil {
				ok, err := expr.EvalRowValue(o.node.Residual, combined)
				if err != nil {
					return nil, err
				}
				if ok != true {
					continue
				}
			}
			matched = true
			pb.AppendRow(combined)
		}
		if !matched && o.node.Kind == planner.JoinLeft {
			for c := 0; c < len(o.rightTypes); c++ {
				combined[len(o.leftTypes)+c] = nil
			}
			pb.AppendRow(combined)
		}
	}
	return pb.Build(), nil
}

func row2(r *rowRef) int { return r.row }

func (o *joinOperator) Close() error {
	return errors.Join(o.left.Close(), o.right.Close())
}

// ---------------------------------------------------------------------------
// geoJoinOperator: the QuadTree spatial join (§VI). Build side geofences are
// indexed into a GeoIndex (build_geo_index on the fly); probe rows look up
// candidate shapes via the QuadTree and verify with exact point-in-polygon.

type geoJoinOperator struct {
	node  *planner.GeoJoin
	left  Operator
	right Operator

	built     bool
	index     *geo.GeoIndex
	buildRefs []*rowRef // parallel to index shapes

	leftTypes  []*types.Type
	rightTypes []*types.Type
}

func newGeoJoinOperator(node *planner.GeoJoin, left, right Operator) *geoJoinOperator {
	lo, ro := node.Left.Outputs(), node.Right.Outputs()
	lt := make([]*types.Type, len(lo))
	for i, c := range lo {
		lt[i] = c.Type
	}
	rt := make([]*types.Type, len(ro))
	for i, c := range ro {
		rt[i] = c.Type
	}
	return &geoJoinOperator{node: node, left: left, right: right, leftTypes: lt, rightTypes: rt}
}

func (o *geoJoinOperator) build() error {
	var wkts []string
	for {
		p, err := o.right.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		for row := 0; row < p.Count(); row++ {
			v := p.Blocks[o.node.ShapeChan].Value(row)
			if v == nil {
				continue
			}
			wkts = append(wkts, v.(string))
			o.buildRefs = append(o.buildRefs, &rowRef{page: p, row: row})
		}
	}
	idx, err := geo.BuildIndex(wkts)
	if err != nil {
		return fmt.Errorf("execution: building geo index: %w", err)
	}
	o.index = idx
	return nil
}

func (o *geoJoinOperator) Next() (*block.Page, error) {
	if !o.built {
		if err := o.build(); err != nil {
			return nil, err
		}
		o.built = true
	}
	outTypes := append(append([]*types.Type{}, o.leftTypes...), o.rightTypes...)
	combined := make([]any, len(outTypes)) // scratch: AppendRow copies per value
	for {
		p, err := o.left.Next()
		if err != nil {
			return nil, err
		}
		lngB, err := expr.Eval(o.node.Lng, p)
		if err != nil {
			return nil, err
		}
		latB, err := expr.Eval(o.node.Lat, p)
		if err != nil {
			return nil, err
		}
		lngB, latB = block.Unwrap(lngB), block.Unwrap(latB)
		pb := block.NewPageBuilder(outTypes)
		for row := 0; row < p.Count(); row++ {
			lv, av := lngB.Value(row), latB.Value(row)
			if lv == nil || av == nil {
				continue
			}
			matches := o.index.Lookup(geo.Point{Lng: toF64(lv), Lat: toF64(av)})
			if len(matches) == 0 {
				continue
			}
			for c := 0; c < len(o.leftTypes); c++ {
				combined[c] = p.Blocks[c].Value(row)
			}
			for _, shapeIdx := range matches {
				ref := o.buildRefs[shapeIdx]
				for c := 0; c < len(o.rightTypes); c++ {
					combined[len(o.leftTypes)+c] = ref.page.Blocks[c].Value(ref.row)
				}
				pb.AppendRow(combined)
			}
		}
		if pb.Len() == 0 {
			continue
		}
		return pb.Build(), nil
	}
}

func toF64(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	panic(fmt.Sprintf("execution: not numeric: %T", v))
}

func (o *geoJoinOperator) Close() error {
	return errors.Join(o.left.Close(), o.right.Close())
}
