package execution

import (
	"errors"
	"fmt"
	"io"

	"prestolite/internal/block"
	"prestolite/internal/expr"
	"prestolite/internal/geo"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
	"prestolite/internal/types"
)

// joinOperator is a hash join: the right (build) side is consumed fully into
// a hash table, then left (probe) pages stream through. CROSS joins use a
// nested-loop over the buffered build side.
//
// Under memory pressure (with spill enabled) it degrades to a multi-pass
// join: build pages that do not fit are spilled to runs, the probe side is
// buffered (spilling under the same pressure), and then each build chunk —
// the leftover in-memory pages plus each spilled run — is loaded in turn,
// its hash table rebuilt, and the whole probe stream replayed against it.
// LEFT joins track per-probe-row match flags across passes and emit the
// null-extended rows in a final pass. Output order in spilled mode differs
// from the streaming path (hash-join output order is unspecified).
type joinOperator struct {
	node  *planner.Join
	left  Operator
	right Operator
	mem   *opMem

	built      bool
	buildRows  []*rowRef
	buildTable map[string][]*rowRef
	buildPages []*block.Page

	// Spilled-mode state.
	spilled       bool
	buildRuns     []*resource.Run
	buildMemBytes int64
	probe         *pageStream
	probeIter     *streamIter
	probeBase     int
	chunkIdx      int
	chunkBytes    int64
	matched       []bool
	finalLeft     bool

	leftTypes  []*types.Type
	rightTypes []*types.Type
}

type rowRef struct {
	page *block.Page
	row  int
}

func newJoinOperator(node *planner.Join, left, right Operator, mem *opMem) *joinOperator {
	lo, ro := node.Left.Outputs(), node.Right.Outputs()
	lt := make([]*types.Type, len(lo))
	for i, c := range lo {
		lt[i] = c.Type
	}
	rt := make([]*types.Type, len(ro))
	for i, c := range ro {
		rt[i] = c.Type
	}
	return &joinOperator{node: node, left: left, right: right, mem: mem, leftTypes: lt, rightTypes: rt}
}

func (o *joinOperator) build() error {
	o.buildTable = map[string][]*rowRef{}
	// Per-row scratch hoisted out of the build loop; the key bytes are only
	// materialized to a string at map-insert time.
	keys := make([]any, len(o.node.RightKeys))
	var keyBuf []byte
	for {
		p, err := o.right.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if p.Count() == 0 {
			continue
		}
		sz := int64(p.SizeBytes())
		ok, err := o.mem.reserve(sz)
		if err != nil {
			return err
		}
		if !ok {
			// First refusal flips the operator into multi-pass mode: the
			// buffered rows go to disk and the incremental hash table is
			// dropped — it is rebuilt per chunk while probing.
			o.spilled = true
			o.buildRows, o.buildTable = nil, nil
			if err := o.spillPages(&o.buildPages, &o.buildRuns, &o.buildMemBytes, "join-build"); err != nil {
				return err
			}
			if err := o.mem.hardReserve(sz); err != nil {
				return err
			}
		}
		o.buildPages = append(o.buildPages, p)
		o.buildMemBytes += sz
		if o.spilled {
			continue
		}
		for row := 0; row < p.Count(); row++ {
			ref := &rowRef{page: p, row: row}
			o.buildRows = append(o.buildRows, ref)
			if len(o.node.RightKeys) > 0 {
				null := false
				for i, ch := range o.node.RightKeys {
					keys[i] = p.Blocks[ch].Value(row)
					if keys[i] == nil {
						null = true
					}
				}
				if null {
					continue // NULL keys never match
				}
				keyBuf = appendGroupKey(keyBuf[:0], keys)
				k := string(keyBuf)
				o.buildTable[k] = append(o.buildTable[k], ref)
			}
		}
	}
	if o.spilled {
		// The leftover buffered pages become the last run: the multi-pass
		// phase hard-reserves one full chunk at a time, so entering it with
		// build pages still charged would double-count against the cap that
		// just forced the spill.
		if err := o.spillPages(&o.buildPages, &o.buildRuns, &o.buildMemBytes, "join-build"); err != nil {
			return err
		}
		return o.bufferProbe()
	}
	return nil
}

// spillPages writes the given in-memory pages out as one run and frees their
// reservation.
func (o *joinOperator) spillPages(pages *[]*block.Page, runs *[]*resource.Run, memBytes *int64, tag string) error {
	if len(*pages) == 0 {
		return nil
	}
	w, err := o.mem.newRun(tag)
	if err != nil {
		return err
	}
	for _, p := range *pages {
		if err := w.WritePage(p); err != nil {
			w.Abandon()
			return o.mem.fail(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	*runs = append(*runs, run)
	o.mem.addSpilled(run.Bytes())
	*pages = (*pages)[:0]
	o.mem.release(*memBytes)
	*memBytes = 0
	return nil
}

// bufferProbe consumes the whole probe side into a replayable stream,
// spilling under the same memory pressure as the build side.
func (o *joinOperator) bufferProbe() error {
	o.probe = &pageStream{}
	var memBytes int64
	for {
		p, err := o.left.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if p.Count() == 0 {
			continue
		}
		sz := int64(p.SizeBytes())
		ok, err := o.mem.reserve(sz)
		if err != nil {
			return err
		}
		if !ok {
			if err := o.spillPages(&o.probe.pages, &o.probe.runs, &memBytes, "join-probe"); err != nil {
				return err
			}
			if err := o.mem.hardReserve(sz); err != nil {
				return err
			}
		}
		o.probe.pages = append(o.probe.pages, p)
		memBytes += sz
	}
	// Same reasoning as the build leftovers: chunk loading hard-reserves up
	// to the full budget, so the probe leftovers go to disk too and are
	// streamed back one page at a time per replay.
	return o.spillPages(&o.probe.pages, &o.probe.runs, &memBytes, "join-probe")
}

func (o *joinOperator) Next() (*block.Page, error) {
	if !o.built {
		if err := o.build(); err != nil {
			return nil, err
		}
		o.built = true
	}
	if o.spilled {
		return o.spilledNext()
	}
	for {
		p, err := o.left.Next()
		if err != nil {
			return nil, err
		}
		out, err := o.probeRows(p, 0, true)
		if err != nil {
			return nil, err
		}
		if out.Count() == 0 {
			continue
		}
		return out, nil
	}
}

// spilledNext drives the multi-pass join: one replay of the probe stream per
// build chunk, then (for LEFT joins) a final replay emitting unmatched rows.
func (o *joinOperator) spilledNext() (*block.Page, error) {
	for {
		if o.probeIter != nil {
			p, err := o.probeIter.next()
			if err == nil {
				base := o.probeBase
				o.probeBase += p.Count()
				var out *block.Page
				if o.finalLeft {
					out, err = o.unmatchedPage(p, base)
				} else {
					o.growMatched(base + p.Count())
					out, err = o.probeRows(p, base, false)
				}
				if err != nil {
					return nil, err
				}
				if out.Count() > 0 {
					return out, nil
				}
				continue
			}
			if !errors.Is(err, io.EOF) {
				return nil, err
			}
			if cerr := o.probeIter.close(); cerr != nil {
				return nil, cerr
			}
			o.probeIter = nil
			o.probeBase = 0
			o.releaseChunk()
			if o.finalLeft {
				return nil, io.EOF
			}
		}
		ok, err := o.loadNextChunk()
		if err != nil {
			return nil, err
		}
		if !ok {
			if o.node.Kind == planner.JoinLeft && !o.finalLeft {
				o.finalLeft = true
				o.probeIter = o.probe.iter()
				continue
			}
			return nil, io.EOF
		}
		o.probeIter = o.probe.iter()
	}
}

func (o *joinOperator) growMatched(n int) {
	if o.node.Kind != planner.JoinLeft || n <= len(o.matched) {
		return
	}
	o.matched = append(o.matched, make([]bool, n-len(o.matched))...)
}

// loadNextChunk advances to the next build chunk: index 0 is the leftover
// in-memory build pages, then one chunk per spilled run (loaded back with a
// hard reservation and removed once read). Reports false when no chunks
// remain.
func (o *joinOperator) loadNextChunk() (bool, error) {
	for {
		if o.chunkIdx == 0 {
			o.chunkIdx++
			if len(o.buildPages) > 0 {
				o.rebuildTable(o.buildPages)
				o.chunkBytes = o.buildMemBytes
				o.buildPages, o.buildMemBytes = nil, 0
				return true, nil
			}
			continue
		}
		if o.chunkIdx > len(o.buildRuns) {
			return false, nil
		}
		run := o.buildRuns[o.chunkIdx-1]
		o.chunkIdx++
		rr, err := run.Open()
		if err != nil {
			return false, err
		}
		var pages []*block.Page
		var bytes int64
		for {
			p, err := rr.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				o.mem.release(bytes)
				return false, errors.Join(err, rr.Close())
			}
			sz := int64(p.SizeBytes())
			if err := o.mem.hardReserve(sz); err != nil {
				o.mem.release(bytes)
				return false, errors.Join(err, rr.Close())
			}
			bytes += sz
			pages = append(pages, p)
		}
		if err := rr.Close(); err != nil {
			o.mem.release(bytes)
			return false, err
		}
		run.Remove()
		if len(pages) == 0 {
			continue
		}
		o.chunkBytes = bytes
		o.rebuildTable(pages)
		return true, nil
	}
}

// rebuildTable constructs the hash table (and row list) over one chunk.
func (o *joinOperator) rebuildTable(pages []*block.Page) {
	o.buildTable = map[string][]*rowRef{}
	o.buildRows = o.buildRows[:0]
	keys := make([]any, len(o.node.RightKeys))
	var keyBuf []byte
	for _, p := range pages {
		for row := 0; row < p.Count(); row++ {
			ref := &rowRef{page: p, row: row}
			o.buildRows = append(o.buildRows, ref)
			if len(o.node.RightKeys) > 0 {
				null := false
				for i, ch := range o.node.RightKeys {
					keys[i] = p.Blocks[ch].Value(row)
					if keys[i] == nil {
						null = true
					}
				}
				if null {
					continue // NULL keys never match
				}
				keyBuf = appendGroupKey(keyBuf[:0], keys)
				k := string(keyBuf)
				o.buildTable[k] = append(o.buildTable[k], ref)
			}
		}
	}
}

// releaseChunk frees the chunk loaded by loadNextChunk.
func (o *joinOperator) releaseChunk() {
	o.mem.release(o.chunkBytes)
	o.chunkBytes = 0
	o.buildTable = nil
	o.buildRows = nil
}

// probeRows probes one page against the current build table. In streaming
// mode (emitLeft) unmatched LEFT rows are null-extended inline; in spilled
// mode match flags are recorded at base+row instead, for the final pass.
func (o *joinOperator) probeRows(p *block.Page, base int, emitLeft bool) (*block.Page, error) {
	outTypes := append(append([]*types.Type{}, o.leftTypes...), o.rightTypes...)
	pb := block.NewPageBuilder(outTypes)
	combined := make([]any, len(outTypes))
	keys := make([]any, len(o.node.LeftKeys)) // probe-key scratch, reused per row
	var keyBuf []byte
	for row := 0; row < p.Count(); row++ {
		var candidates []*rowRef
		if len(o.node.LeftKeys) > 0 {
			null := false
			for i, ch := range o.node.LeftKeys {
				keys[i] = p.Blocks[ch].Value(row)
				if keys[i] == nil {
					null = true
				}
			}
			if !null {
				keyBuf = appendGroupKey(keyBuf[:0], keys)
				candidates = o.buildTable[string(keyBuf)]
			}
		} else {
			candidates = o.buildRows
		}
		matched := false
		for c := 0; c < len(o.leftTypes); c++ {
			combined[c] = p.Blocks[c].Value(row)
		}
		for _, ref := range candidates {
			for c := 0; c < len(o.rightTypes); c++ {
				combined[len(o.leftTypes)+c] = ref.page.Blocks[c].Value(ref.row)
			}
			if o.node.Residual != nil {
				ok, err := expr.EvalRowValue(o.node.Residual, combined)
				if err != nil {
					return nil, err
				}
				if ok != true {
					continue
				}
			}
			matched = true
			pb.AppendRow(combined)
		}
		if matched && !emitLeft && o.node.Kind == planner.JoinLeft {
			o.matched[base+row] = true
		}
		if !matched && emitLeft && o.node.Kind == planner.JoinLeft {
			for c := 0; c < len(o.rightTypes); c++ {
				combined[len(o.leftTypes)+c] = nil
			}
			pb.AppendRow(combined)
		}
	}
	return pb.Build(), nil
}

// unmatchedPage emits the null-extended rows for probe rows no chunk
// matched (the LEFT-join final pass).
func (o *joinOperator) unmatchedPage(p *block.Page, base int) (*block.Page, error) {
	outTypes := append(append([]*types.Type{}, o.leftTypes...), o.rightTypes...)
	pb := block.NewPageBuilder(outTypes)
	combined := make([]any, len(outTypes))
	for row := 0; row < p.Count(); row++ {
		if base+row < len(o.matched) && o.matched[base+row] {
			continue
		}
		for c := 0; c < len(o.leftTypes); c++ {
			combined[c] = p.Blocks[c].Value(row)
		}
		pb.AppendRow(combined)
	}
	return pb.Build(), nil
}

func (o *joinOperator) Close() error {
	var errs []error
	if o.probeIter != nil {
		errs = append(errs, o.probeIter.close())
		o.probeIter = nil
	}
	for _, r := range o.buildRuns {
		r.Remove()
	}
	if o.probe != nil {
		for _, r := range o.probe.runs {
			r.Remove()
		}
	}
	o.mem.releaseAll()
	errs = append(errs, o.left.Close(), o.right.Close())
	return errors.Join(errs...)
}

// pageStream is a replayable page sequence split between spilled runs and
// in-memory pages (runs first — they hold the earlier input, preserving the
// original order).
type pageStream struct {
	runs  []*resource.Run
	pages []*block.Page
}

func (s *pageStream) iter() *streamIter { return &streamIter{s: s} }

// streamIter walks a pageStream, holding one spilled page at a time. The
// read-back page is transient engine overhead (one bounded frame), not user
// memory — charging it against the cap that forced the spill would deadlock
// the replay. Runs are not removed — the stream is replayed per chunk.
type streamIter struct {
	s      *pageStream
	runIdx int
	rr     *resource.RunReader
	memIdx int
}

func (it *streamIter) next() (*block.Page, error) {
	for it.runIdx < len(it.s.runs) {
		if it.rr == nil {
			rr, err := it.s.runs[it.runIdx].Open()
			if err != nil {
				return nil, err
			}
			it.rr = rr
		}
		p, err := it.rr.Next()
		if errors.Is(err, io.EOF) {
			if cerr := it.rr.Close(); cerr != nil {
				return nil, cerr
			}
			it.rr = nil
			it.runIdx++
			continue
		}
		if err != nil {
			return nil, err
		}
		return p, nil
	}
	if it.memIdx < len(it.s.pages) {
		p := it.s.pages[it.memIdx]
		it.memIdx++
		return p, nil
	}
	return nil, io.EOF
}

func (it *streamIter) close() error {
	if it.rr != nil {
		err := it.rr.Close()
		it.rr = nil
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// geoJoinOperator: the QuadTree spatial join (§VI). Build side geofences are
// indexed into a GeoIndex (build_geo_index on the fly); probe rows look up
// candidate shapes via the QuadTree and verify with exact point-in-polygon.

type geoJoinOperator struct {
	node  *planner.GeoJoin
	left  Operator
	right Operator

	built     bool
	index     *geo.GeoIndex
	buildRefs []*rowRef // parallel to index shapes

	leftTypes  []*types.Type
	rightTypes []*types.Type
}

func newGeoJoinOperator(node *planner.GeoJoin, left, right Operator) *geoJoinOperator {
	lo, ro := node.Left.Outputs(), node.Right.Outputs()
	lt := make([]*types.Type, len(lo))
	for i, c := range lo {
		lt[i] = c.Type
	}
	rt := make([]*types.Type, len(ro))
	for i, c := range ro {
		rt[i] = c.Type
	}
	return &geoJoinOperator{node: node, left: left, right: right, leftTypes: lt, rightTypes: rt}
}

func (o *geoJoinOperator) build() error {
	var wkts []string
	for {
		p, err := o.right.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		for row := 0; row < p.Count(); row++ {
			v := p.Blocks[o.node.ShapeChan].Value(row)
			if v == nil {
				continue
			}
			wkts = append(wkts, v.(string))
			o.buildRefs = append(o.buildRefs, &rowRef{page: p, row: row})
		}
	}
	idx, err := geo.BuildIndex(wkts)
	if err != nil {
		return fmt.Errorf("execution: building geo index: %w", err)
	}
	o.index = idx
	return nil
}

func (o *geoJoinOperator) Next() (*block.Page, error) {
	if !o.built {
		if err := o.build(); err != nil {
			return nil, err
		}
		o.built = true
	}
	outTypes := append(append([]*types.Type{}, o.leftTypes...), o.rightTypes...)
	combined := make([]any, len(outTypes)) // scratch: AppendRow copies per value
	for {
		p, err := o.left.Next()
		if err != nil {
			return nil, err
		}
		lngB, err := expr.Eval(o.node.Lng, p)
		if err != nil {
			return nil, err
		}
		latB, err := expr.Eval(o.node.Lat, p)
		if err != nil {
			return nil, err
		}
		lngB, latB = block.Unwrap(lngB), block.Unwrap(latB)
		pb := block.NewPageBuilder(outTypes)
		for row := 0; row < p.Count(); row++ {
			lv, av := lngB.Value(row), latB.Value(row)
			if lv == nil || av == nil {
				continue
			}
			matches := o.index.Lookup(geo.Point{Lng: toF64(lv), Lat: toF64(av)})
			if len(matches) == 0 {
				continue
			}
			for c := 0; c < len(o.leftTypes); c++ {
				combined[c] = p.Blocks[c].Value(row)
			}
			for _, shapeIdx := range matches {
				ref := o.buildRefs[shapeIdx]
				for c := 0; c < len(o.rightTypes); c++ {
					combined[len(o.leftTypes)+c] = ref.page.Blocks[c].Value(ref.row)
				}
				pb.AppendRow(combined)
			}
		}
		if pb.Len() == 0 {
			continue
		}
		return pb.Build(), nil
	}
}

func toF64(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	panic(fmt.Sprintf("execution: not numeric: %T", v))
}

func (o *geoJoinOperator) Close() error {
	return errors.Join(o.left.Close(), o.right.Close())
}
