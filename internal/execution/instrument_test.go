package execution

import (
	"strings"
	"testing"

	"prestolite/internal/expr"
	"prestolite/internal/obs"
	"prestolite/internal/planner"
	"prestolite/internal/types"
)

// valuesPlan builds Output(Filter(Values)) with 3 rows, of which 2 pass.
func valuesPlan() planner.Node {
	vals := &planner.Values{
		Cols: []planner.Column{{Name: "x", Type: types.Bigint}},
		Rows: [][]any{{int64(1)}, {int64(2)}, {int64(3)}},
	}
	pred := expr.MustCall("gt",
		expr.NewVariable("x", 0, types.Bigint), expr.NewConstant(int64(1), types.Bigint))
	filter := &planner.Filter{Child: vals, Predicate: pred}
	return &planner.Output{Child: filter, Names: []string{"x"}}
}

func TestBuildRecordsOperatorStats(t *testing.T) {
	stats := obs.NewTaskStats()
	ctx := &Context{Stats: stats}
	op, err := Build(valuesPlan(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 || pages[0].Count() != 2 {
		t.Fatalf("pages = %v", pages)
	}

	snap := stats.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("want 3 operators, got %d: %+v", len(snap), snap)
	}
	// Pre-order: 0=Output, 1=Filter, 2=Values.
	if !strings.HasPrefix(snap[0].Name, "Output") || !strings.HasPrefix(snap[1].Name, "Filter") || !strings.HasPrefix(snap[2].Name, "Values") {
		t.Fatalf("names = %q %q %q", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[2].RowsOut != 3 {
		t.Errorf("values rows out = %d", snap[2].RowsOut)
	}
	if snap[1].RowsIn != 3 || snap[1].RowsOut != 2 {
		t.Errorf("filter in/out = %d/%d", snap[1].RowsIn, snap[1].RowsOut)
	}
	if snap[0].RowsOut != 2 {
		t.Errorf("output rows out = %d", snap[0].RowsOut)
	}
	for _, s := range snap {
		if s.Pages == 0 || s.PeakBatchRows == 0 {
			t.Errorf("operator %q missing batch stats: %+v", s.Name, s)
		}
	}
}

func TestBuildWithoutStatsIsUnwrapped(t *testing.T) {
	op, err := Build(valuesPlan(), &Context{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*statsOperator); ok {
		t.Fatal("stats disabled but operator is wrapped")
	}
}

// TestFormatAnnotatedGolden pins the EXPLAIN ANALYZE rendering with
// synthetic (deterministic) statistics.
func TestFormatAnnotatedGolden(t *testing.T) {
	plan := valuesPlan()
	snaps := []obs.OperatorStatsSnapshot{
		{ID: 0, Name: "Output[x]", RowsIn: 2, RowsOut: 2, BytesOut: 16, WallNanos: 2_500_000, Pages: 1, PeakBatchRows: 2, Tasks: 1},
		{ID: 1, Name: "Filter", RowsIn: 3, RowsOut: 2, BytesOut: 16, WallNanos: 2_000_000, Pages: 1, PeakBatchRows: 2, Tasks: 1},
		{ID: 2, Name: "Values", RowsIn: 3, RowsOut: 3, BytesOut: 24, WallNanos: 1_000_000, Pages: 1, PeakBatchRows: 3, Tasks: 2},
	}
	got := FormatAnnotated(plan, snaps)
	want := strings.Join([]string{
		"- Output[x]",
		"  rows: 2 in, 2 out (16B), wall: 2.5ms, batches: 1 (peak 2 rows)",
		"    - Filter[(x > 1)]",
		"      rows: 3 in, 2 out (16B), wall: 2ms, batches: 1 (peak 2 rows)",
		"        - Values[3 rows]",
		"          rows: 3 in, 3 out (24B), wall: 1ms, batches: 1 (peak 3 rows), tasks: 2",
		"",
	}, "\n")
	if got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:           "0B",
		512:         "512B",
		2048:        "2.0KB",
		3 << 20:     "3.0MB",
		5 << 30:     "5.0GB",
		1536 * 1024: "1.5MB",
	}
	for n, want := range cases {
		if got := formatBytes(n); got != want {
			t.Errorf("formatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
