package execution

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"prestolite/internal/block"
	"prestolite/internal/execution/vector"
)

// exchangeMode selects how a local exchange routes pages from its source
// streams to its output streams. Local exchanges are the only place the
// execution layer starts goroutines: every source runs in its own producer,
// so the exchange is both a router and the boundary where a task's drivers
// actually become concurrent (the paper's §III driver model).
type exchangeMode int

const (
	// exGather funnels every source stream into one output (n→1), bridging a
	// parallel pipeline segment back to a serial consumer.
	exGather exchangeMode = iota
	// exRoundRobin fans pages out across outputs (k→n) with no key affinity,
	// rebalancing work when upstream produced fewer streams than drivers
	// (e.g. a table with a single split).
	exRoundRobin
	// exPassthrough connects source i to output i (n→n, order-preserving per
	// stream). It adds no routing — its value is purely that it drives all
	// sources concurrently, e.g. running per-driver sorts in parallel under a
	// streaming merge.
	exPassthrough
	// exPartition routes each row to the output chosen by hashing its key
	// columns (k→n), so all rows of one group/join key land on one driver.
	exPartition
	// exBroadcast copies every page to every output (k→n). Never chosen
	// statically — it is the adaptive exchange's small-build-side decision
	// for joins, where shipping the whole build table to each driver is
	// cheaper than repartitioning the (much larger) probe side.
	exBroadcast
	// exAdaptive starts undecided: pages are buffered until the observed
	// row count crosses the limit (decide exPartition) or every producer
	// finishes under it (decide the configured small mode — exGather for
	// aggregations, exBroadcast for join build sides). Repartitioning only
	// pays for itself when there is enough data to spread; below the limit
	// the partition step is pure overhead, the measured cause of the 1→2
	// driver regression on small group-by workloads.
	exAdaptive
	// exAdaptiveFollow is the probe side of an adaptively-exchanged join:
	// it waits for the build side's decision, then partitions (build was
	// partitioned) or round-robins (build was broadcast, any driver can
	// join any probe row).
	exAdaptiveFollow
)

// exchangeBuffer is the per-output channel capacity. Pages in flight inside
// an exchange are bounded engine overhead (mode-dependent, at most
// exchangeBuffer frames per output) and are not charged to the query pool —
// like spill read-back frames, charging them against the budget that shaped
// the plan would deadlock producers against consumers.
const exchangeBuffer = 2

// localExchange moves pages between pipeline segments inside one task.
// Producers are started lazily on the first Next of any output, so building
// a plan never spawns goroutines. A closed done channel is the exchange-wide
// stop signal: the first source error, a context cancellation, or the last
// output Close (limit satisfied, query torn down) closes it, and every
// sibling producer observes it on its next send or pull — this is what makes
// "stop sibling drivers promptly" hold.
type localExchange struct {
	mode    exchangeMode
	sources []Operator
	keys    []int // partitioning key channels (exPartition only)
	ctx     context.Context

	outs []*exchangeOut
	done chan struct{}
	wg   sync.WaitGroup
	rr   atomic.Uint64 // round-robin cursor
	open atomic.Int32  // output endpoints not yet closed

	startOnce sync.Once
	launched  bool // set under startOnce: producers actually started
	stopOnce  sync.Once

	adapt *adaptiveState // exAdaptive / exAdaptiveFollow only

	mu       sync.Mutex
	err      error // first produce-side error (surfaced by Next after EOF)
	closeErr error // source Close errors (surfaced by the last output Close)
}

// defaultAdaptiveRows is the buffered-row threshold below which an adaptive
// exchange skips repartitioning (Context.AdaptiveExchangeRows overrides).
const defaultAdaptiveRows = 4096

// adaptiveState is the decision shared between an adaptive exchange and its
// follower: undecided while pages accumulate in buf, then fixed to either
// exPartition (the data outgrew the limit) or the small-side mode.
type adaptiveState struct {
	limit int
	small exchangeMode  // decision when the build side stays under limit
	ch    chan struct{} // closed once mode is valid
	mode  exchangeMode

	mu      sync.Mutex
	decided bool
	buf     []*block.Page
	rows    int
}

func newAdaptiveState(ctx *Context, small exchangeMode) *adaptiveState {
	limit := ctx.AdaptiveExchangeRows
	if limit == 0 {
		limit = defaultAdaptiveRows
	}
	return &adaptiveState{limit: limit, small: small, ch: make(chan struct{})}
}

// decideLocked fixes the routing mode and hands the buffered pages to the
// caller for flushing (outside the lock — sends can block on consumers).
func (st *adaptiveState) decideLocked(mode exchangeMode) []*block.Page {
	st.decided = true
	st.mode = mode
	close(st.ch)
	buf := st.buf
	st.buf = nil
	return buf
}

func (st *adaptiveState) isDecided() bool {
	select {
	case <-st.ch:
		return true
	default:
		return false
	}
}

// exchangeOut is one output stream of a localExchange. Each endpoint has a
// single consumer goroutine; the last endpoint closed tears the exchange
// down (stopping and joining producers, closing sources).
type exchangeOut struct {
	ex     *localExchange
	ch     chan *block.Page
	closed bool
	// dead is closed by Close: producers drop pages routed to a closed
	// endpoint instead of blocking on its full channel forever — without
	// this, one driver finishing early (its LIMIT satisfied) would wedge the
	// producers and starve every sibling driver of the same exchange.
	dead chan struct{}
}

// newLocalExchange wires sources to `outputs` fresh endpoints. keys is only
// used by exPartition. No goroutines start until an endpoint's first Next.
func newLocalExchange(ctx *Context, sources []Operator, mode exchangeMode, keys []int, outputs int) []Operator {
	ex := &localExchange{
		mode:    mode,
		sources: sources,
		keys:    keys,
		ctx:     ctx.Ctx,
		done:    make(chan struct{}),
	}
	ex.outs = make([]*exchangeOut, outputs)
	endpoints := make([]Operator, outputs)
	for i := range ex.outs {
		o := &exchangeOut{ex: ex, ch: make(chan *block.Page, exchangeBuffer), dead: make(chan struct{})}
		ex.outs[i] = o
		endpoints[i] = o
	}
	ex.open.Store(int32(outputs))
	return endpoints
}

// newAdaptiveExchange wires a partition exchange that may skip partitioning:
// it returns the endpoints plus the shared decision state a follower exchange
// (the join probe side) can key off. A negative Context.AdaptiveExchangeRows
// disables adaptivity and yields a plain partition exchange (nil state).
func newAdaptiveExchange(ctx *Context, sources []Operator, keys []int, outputs int, small exchangeMode) ([]Operator, *adaptiveState) {
	if ctx.AdaptiveExchangeRows < 0 {
		return newLocalExchange(ctx, sources, exPartition, keys, outputs), nil
	}
	st := newAdaptiveState(ctx, small)
	ends := newLocalExchange(ctx, sources, exAdaptive, keys, outputs)
	ends[0].(*exchangeOut).ex.adapt = st
	return ends, st
}

// newFollowerExchange wires the probe side of an adaptively-exchanged join:
// partition when the build side partitioned, round-robin when it broadcast.
// With adaptivity disabled (nil state) it is a plain partition exchange.
func newFollowerExchange(ctx *Context, sources []Operator, keys []int, outputs int, st *adaptiveState) []Operator {
	if st == nil {
		return newLocalExchange(ctx, sources, exPartition, keys, outputs)
	}
	ends := newLocalExchange(ctx, sources, exAdaptiveFollow, keys, outputs)
	ends[0].(*exchangeOut).ex.adapt = st
	return ends
}

// gatherOne reduces k streams to a single serial operator (identity for k=1).
func gatherOne(ctx *Context, streams []Operator) Operator {
	if len(streams) == 1 {
		return streams[0]
	}
	return newLocalExchange(ctx, streams, exGather, nil, 1)[0]
}

func (ex *localExchange) start() {
	ex.startOnce.Do(func() {
		ex.launched = true
		ex.wg.Add(len(ex.sources))
		for i := range ex.sources {
			go ex.produce(i)
		}
		if ex.mode != exPassthrough {
			// Outputs are shared by all producers: a closer goroutine closes
			// them once every producer has exited (and recorded any error).
			go func() {
				ex.wg.Wait()
				if ex.mode == exAdaptive {
					// Every producer finished while undecided: the data
					// stayed under the limit, so skip partitioning and
					// flush the buffer in the small mode.
					ex.flushAdaptive()
				}
				for _, o := range ex.outs {
					close(o.ch)
				}
			}()
		}
	})
}

// produce runs one source stream to completion, routing its pages.
func (ex *localExchange) produce(i int) {
	defer ex.wg.Done()
	src := ex.sources[i]
	defer func() {
		if err := src.Close(); err != nil {
			ex.mu.Lock()
			ex.closeErr = errors.Join(ex.closeErr, err)
			ex.mu.Unlock()
		}
	}()
	if ex.mode == exPassthrough {
		// Sole writer of outs[i]: closing it per-producer lets the consumer
		// see this stream's EOF without waiting for sibling producers.
		defer close(ex.outs[i].ch)
	}
	var pt *partitioner
	if ex.mode == exPartition || ex.mode == exAdaptive || ex.mode == exAdaptiveFollow {
		pt = newPartitioner(ex)
		defer pt.release()
	}
	for {
		select {
		case <-ex.done:
			return
		default:
		}
		if ex.ctx != nil {
			if err := ex.ctx.Err(); err != nil {
				ex.fail(err)
				return
			}
		}
		p, err := src.Next()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			ex.fail(err)
			return
		}
		if p == nil || p.Count() == 0 {
			continue
		}
		if !ex.dispatch(i, pt, p) {
			return
		}
	}
}

// dispatch routes one page; false means the exchange is stopping.
func (ex *localExchange) dispatch(i int, pt *partitioner, p *block.Page) bool {
	switch ex.mode {
	case exGather:
		return ex.send(0, p)
	case exPassthrough:
		return ex.send(i, p)
	case exRoundRobin:
		j := int(ex.rr.Add(1)-1) % len(ex.outs)
		return ex.send(j, p)
	case exAdaptive:
		return ex.adaptDispatch(pt, p)
	case exAdaptiveFollow:
		return ex.followDispatch(pt, p)
	case exBroadcast:
		return ex.broadcast(p)
	default: // exPartition
		return pt.dispatch(p)
	}
}

// broadcast copies one page to every output.
func (ex *localExchange) broadcast(p *block.Page) bool {
	for j := range ex.outs {
		if !ex.send(j, p) {
			return false
		}
	}
	return true
}

// adaptDispatch routes one page of an undecided-or-decided adaptive
// exchange. While undecided, pages are buffered under the state lock; the
// producer that pushes the row count over the limit makes the partition
// decision and flushes the backlog through its own partitioner (hashing is
// deterministic, so whose partitioner does it is irrelevant).
func (ex *localExchange) adaptDispatch(pt *partitioner, p *block.Page) bool {
	st := ex.adapt
	if st.isDecided() {
		return ex.routeDecided(pt, p)
	}
	st.mu.Lock()
	if st.decided {
		st.mu.Unlock()
		return ex.routeDecided(pt, p)
	}
	// Buffered pages outlive this producer and may be consumed from any
	// driver; force lazy columns now, while a single goroutine owns them.
	p = forceLazy(p)
	st.buf = append(st.buf, p)
	st.rows += p.Count()
	if st.rows <= st.limit {
		st.mu.Unlock()
		return true
	}
	buf := st.decideLocked(exPartition)
	st.mu.Unlock()
	for _, q := range buf {
		if !pt.dispatch(q) {
			return false
		}
	}
	return true
}

// routeDecided routes per the adaptive decision.
func (ex *localExchange) routeDecided(pt *partitioner, p *block.Page) bool {
	switch ex.adapt.mode {
	case exPartition:
		return pt.dispatch(p)
	case exBroadcast:
		return ex.broadcast(forceLazy(p))
	default: // exGather
		return ex.send(0, p)
	}
}

// flushAdaptive runs after the last producer exits: an undecided exchange
// stayed under the limit, so fix the small mode and deliver the backlog.
func (ex *localExchange) flushAdaptive() {
	st := ex.adapt
	st.mu.Lock()
	if st.decided {
		st.mu.Unlock()
		return
	}
	buf := st.decideLocked(st.small)
	st.mu.Unlock()
	for _, p := range buf {
		var ok bool
		if st.mode == exBroadcast {
			ok = ex.broadcast(p)
		} else {
			ok = ex.send(0, p)
		}
		if !ok {
			return
		}
	}
}

// followDispatch blocks until the build side decides, then mirrors it:
// partition with the same hash (matching keys meet on one driver) or
// round-robin against the broadcast build table.
func (ex *localExchange) followDispatch(pt *partitioner, p *block.Page) bool {
	st := ex.adapt
	var cancelled <-chan struct{}
	if ex.ctx != nil {
		cancelled = ex.ctx.Done()
	}
	select {
	case <-st.ch:
	case <-ex.done:
		return false
	case <-cancelled:
		ex.fail(ex.ctx.Err())
		return false
	}
	if st.mode == exPartition {
		return pt.dispatch(p)
	}
	j := int(ex.rr.Add(1)-1) % len(ex.outs)
	return ex.send(j, p)
}

// send delivers a page to output j. It returns false only when the whole
// exchange is stopping (last consumer closed, sibling error) or the task
// context is cancelled; a page routed to an individually closed endpoint is
// dropped (true) — that consumer declared it needs nothing more.
func (ex *localExchange) send(j int, p *block.Page) bool {
	out := ex.outs[j]
	var cancelled <-chan struct{}
	if ex.ctx != nil {
		cancelled = ex.ctx.Done()
	}
	select {
	case out.ch <- p:
		return true
	case <-out.dead:
		return true
	case <-ex.done:
		return false
	case <-cancelled:
		ex.fail(ex.ctx.Err())
		return false
	}
}

// fail records the first produce-side error and stops every sibling.
func (ex *localExchange) fail(err error) {
	ex.mu.Lock()
	if ex.err == nil {
		ex.err = err
	}
	ex.mu.Unlock()
	ex.stopOnce.Do(func() { close(ex.done) })
}

func (ex *localExchange) firstErr() error {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.err
}

// release is called by each endpoint Close; the last one tears down: stop
// producers, join them (so no goroutine outlives the operator tree — the
// chaos suite leak-checks this), and close sources that never ran.
func (ex *localExchange) release() error {
	if ex.open.Add(-1) > 0 {
		return nil
	}
	ex.stopOnce.Do(func() { close(ex.done) })
	// Claim the start once: either producers were launched (join them) or
	// they never will be (close the sources ourselves).
	ex.startOnce.Do(func() {})
	if ex.launched {
		ex.wg.Wait()
	} else {
		var errs error
		for _, s := range ex.sources {
			errs = errors.Join(errs, s.Close())
		}
		ex.mu.Lock()
		ex.closeErr = errors.Join(ex.closeErr, errs)
		ex.mu.Unlock()
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.closeErr
}

func (o *exchangeOut) Next() (*block.Page, error) {
	o.ex.start()
	p, ok := <-o.ch
	if !ok {
		// Channel closed ⇒ producers exited ⇒ any error is published.
		if err := o.ex.firstErr(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	return p, nil
}

func (o *exchangeOut) Close() error {
	if o.closed {
		return nil
	}
	o.closed = true
	close(o.dead)
	return o.ex.release()
}

// ---------------------------------------------------------------------------
// Hash partitioning.

// partitioner is one producer's scratch state for exPartition: per-output
// selection vectors (leased from the block pool) and a reusable hash buffer,
// so routing a page allocates nothing beyond the masked output blocks.
type partitioner struct {
	ex        *localExchange
	selectors []*block.Positions
	hasher    vector.Hasher
	hashes    []uint64
}

func newPartitioner(ex *localExchange) *partitioner {
	pt := &partitioner{
		ex:        ex,
		selectors: make([]*block.Positions, len(ex.outs)),
	}
	for i := range pt.selectors {
		pt.selectors[i] = block.GetPositions()
	}
	return pt
}

func (pt *partitioner) release() {
	for _, s := range pt.selectors {
		block.PutPositions(s)
	}
	pt.selectors = nil
}

// dispatch routes the rows of one page by key hash — vector.Hasher hashes
// whole key columns at a time (encoding-aware, no per-row boxing), which is
// what keeps a 2-driver partition exchange cheaper than the serial plan it
// replaces. Rows are batched into per-output selection vectors and masked
// out vectorized (Mask copies the selected rows, so the vectors are reusable
// immediately); a page whose rows all hash to one output is forwarded as-is.
// Both sides of a partitioned join route through this same value-based hash,
// which is what makes matching keys meet on the same driver.
func (pt *partitioner) dispatch(p *block.Page) bool {
	// Force lazy columns here, in the single producer goroutine: masking a
	// lazy block yields derived blocks whose loaders all funnel into the
	// parent's first Load, and Load is not safe for concurrent first use —
	// sibling consumers would race on it. (Rows crossing a partition
	// exchange feed aggregations/joins that read every column anyway, so
	// nothing is decoded that lazy reads would have skipped.)
	p = forceLazy(p)
	ex := pt.ex
	n := uint64(len(ex.outs))
	for _, s := range pt.selectors {
		s.Buf = s.Buf[:0]
	}
	rows := p.Count()
	if cap(pt.hashes) < rows {
		pt.hashes = make([]uint64, rows)
	}
	hashes := pt.hashes[:rows]
	pt.hasher.HashPage(p, ex.keys, hashes)
	for r, h := range hashes {
		j := h % n
		pt.selectors[j].Buf = append(pt.selectors[j].Buf, r)
	}
	for j, s := range pt.selectors {
		switch {
		case len(s.Buf) == 0:
			continue
		case len(s.Buf) == p.Count():
			if !ex.send(j, p) {
				return false
			}
		default:
			if !ex.send(j, p.Mask(s.Buf)) {
				return false
			}
		}
	}
	return true
}

// forceLazy returns p with every top-level lazy column materialized (a
// no-op page without them).
func forceLazy(p *block.Page) *block.Page {
	lazy := false
	for _, b := range p.Blocks {
		if _, ok := b.(*block.LazyBlock); ok {
			lazy = true
			break
		}
	}
	if !lazy {
		return p
	}
	blocks := make([]block.Block, len(p.Blocks))
	for i, b := range p.Blocks {
		if l, ok := b.(*block.LazyBlock); ok {
			blocks[i] = l.Load()
		} else {
			blocks[i] = b
		}
	}
	return &block.Page{Blocks: blocks, N: p.N}
}
