package execution

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"prestolite/internal/block"
)

// exchangeMode selects how a local exchange routes pages from its source
// streams to its output streams. Local exchanges are the only place the
// execution layer starts goroutines: every source runs in its own producer,
// so the exchange is both a router and the boundary where a task's drivers
// actually become concurrent (the paper's §III driver model).
type exchangeMode int

const (
	// exGather funnels every source stream into one output (n→1), bridging a
	// parallel pipeline segment back to a serial consumer.
	exGather exchangeMode = iota
	// exRoundRobin fans pages out across outputs (k→n) with no key affinity,
	// rebalancing work when upstream produced fewer streams than drivers
	// (e.g. a table with a single split).
	exRoundRobin
	// exPassthrough connects source i to output i (n→n, order-preserving per
	// stream). It adds no routing — its value is purely that it drives all
	// sources concurrently, e.g. running per-driver sorts in parallel under a
	// streaming merge.
	exPassthrough
	// exPartition routes each row to the output chosen by hashing its key
	// columns (k→n), so all rows of one group/join key land on one driver.
	exPartition
)

// exchangeBuffer is the per-output channel capacity. Pages in flight inside
// an exchange are bounded engine overhead (mode-dependent, at most
// exchangeBuffer frames per output) and are not charged to the query pool —
// like spill read-back frames, charging them against the budget that shaped
// the plan would deadlock producers against consumers.
const exchangeBuffer = 2

// localExchange moves pages between pipeline segments inside one task.
// Producers are started lazily on the first Next of any output, so building
// a plan never spawns goroutines. A closed done channel is the exchange-wide
// stop signal: the first source error, a context cancellation, or the last
// output Close (limit satisfied, query torn down) closes it, and every
// sibling producer observes it on its next send or pull — this is what makes
// "stop sibling drivers promptly" hold.
type localExchange struct {
	mode    exchangeMode
	sources []Operator
	keys    []int // partitioning key channels (exPartition only)
	ctx     context.Context

	outs []*exchangeOut
	done chan struct{}
	wg   sync.WaitGroup
	rr   atomic.Uint64 // round-robin cursor
	open atomic.Int32  // output endpoints not yet closed

	startOnce sync.Once
	launched  bool // set under startOnce: producers actually started
	stopOnce  sync.Once

	mu       sync.Mutex
	err      error // first produce-side error (surfaced by Next after EOF)
	closeErr error // source Close errors (surfaced by the last output Close)
}

// exchangeOut is one output stream of a localExchange. Each endpoint has a
// single consumer goroutine; the last endpoint closed tears the exchange
// down (stopping and joining producers, closing sources).
type exchangeOut struct {
	ex     *localExchange
	ch     chan *block.Page
	closed bool
	// dead is closed by Close: producers drop pages routed to a closed
	// endpoint instead of blocking on its full channel forever — without
	// this, one driver finishing early (its LIMIT satisfied) would wedge the
	// producers and starve every sibling driver of the same exchange.
	dead chan struct{}
}

// newLocalExchange wires sources to `outputs` fresh endpoints. keys is only
// used by exPartition. No goroutines start until an endpoint's first Next.
func newLocalExchange(ctx *Context, sources []Operator, mode exchangeMode, keys []int, outputs int) []Operator {
	ex := &localExchange{
		mode:    mode,
		sources: sources,
		keys:    keys,
		ctx:     ctx.Ctx,
		done:    make(chan struct{}),
	}
	ex.outs = make([]*exchangeOut, outputs)
	endpoints := make([]Operator, outputs)
	for i := range ex.outs {
		o := &exchangeOut{ex: ex, ch: make(chan *block.Page, exchangeBuffer), dead: make(chan struct{})}
		ex.outs[i] = o
		endpoints[i] = o
	}
	ex.open.Store(int32(outputs))
	return endpoints
}

// gatherOne reduces k streams to a single serial operator (identity for k=1).
func gatherOne(ctx *Context, streams []Operator) Operator {
	if len(streams) == 1 {
		return streams[0]
	}
	return newLocalExchange(ctx, streams, exGather, nil, 1)[0]
}

func (ex *localExchange) start() {
	ex.startOnce.Do(func() {
		ex.launched = true
		ex.wg.Add(len(ex.sources))
		for i := range ex.sources {
			go ex.produce(i)
		}
		if ex.mode != exPassthrough {
			// Outputs are shared by all producers: a closer goroutine closes
			// them once every producer has exited (and recorded any error).
			go func() {
				ex.wg.Wait()
				for _, o := range ex.outs {
					close(o.ch)
				}
			}()
		}
	})
}

// produce runs one source stream to completion, routing its pages.
func (ex *localExchange) produce(i int) {
	defer ex.wg.Done()
	src := ex.sources[i]
	defer func() {
		if err := src.Close(); err != nil {
			ex.mu.Lock()
			ex.closeErr = errors.Join(ex.closeErr, err)
			ex.mu.Unlock()
		}
	}()
	if ex.mode == exPassthrough {
		// Sole writer of outs[i]: closing it per-producer lets the consumer
		// see this stream's EOF without waiting for sibling producers.
		defer close(ex.outs[i].ch)
	}
	var pt *partitioner
	if ex.mode == exPartition {
		pt = newPartitioner(ex)
		defer pt.release()
	}
	for {
		select {
		case <-ex.done:
			return
		default:
		}
		if ex.ctx != nil {
			if err := ex.ctx.Err(); err != nil {
				ex.fail(err)
				return
			}
		}
		p, err := src.Next()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			ex.fail(err)
			return
		}
		if p == nil || p.Count() == 0 {
			continue
		}
		if !ex.dispatch(i, pt, p) {
			return
		}
	}
}

// dispatch routes one page; false means the exchange is stopping.
func (ex *localExchange) dispatch(i int, pt *partitioner, p *block.Page) bool {
	switch ex.mode {
	case exGather:
		return ex.send(0, p)
	case exPassthrough:
		return ex.send(i, p)
	case exRoundRobin:
		j := int(ex.rr.Add(1)-1) % len(ex.outs)
		return ex.send(j, p)
	default: // exPartition
		return pt.dispatch(p)
	}
}

// send delivers a page to output j. It returns false only when the whole
// exchange is stopping (last consumer closed, sibling error) or the task
// context is cancelled; a page routed to an individually closed endpoint is
// dropped (true) — that consumer declared it needs nothing more.
func (ex *localExchange) send(j int, p *block.Page) bool {
	out := ex.outs[j]
	var cancelled <-chan struct{}
	if ex.ctx != nil {
		cancelled = ex.ctx.Done()
	}
	select {
	case out.ch <- p:
		return true
	case <-out.dead:
		return true
	case <-ex.done:
		return false
	case <-cancelled:
		ex.fail(ex.ctx.Err())
		return false
	}
}

// fail records the first produce-side error and stops every sibling.
func (ex *localExchange) fail(err error) {
	ex.mu.Lock()
	if ex.err == nil {
		ex.err = err
	}
	ex.mu.Unlock()
	ex.stopOnce.Do(func() { close(ex.done) })
}

func (ex *localExchange) firstErr() error {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.err
}

// release is called by each endpoint Close; the last one tears down: stop
// producers, join them (so no goroutine outlives the operator tree — the
// chaos suite leak-checks this), and close sources that never ran.
func (ex *localExchange) release() error {
	if ex.open.Add(-1) > 0 {
		return nil
	}
	ex.stopOnce.Do(func() { close(ex.done) })
	// Claim the start once: either producers were launched (join them) or
	// they never will be (close the sources ourselves).
	ex.startOnce.Do(func() {})
	if ex.launched {
		ex.wg.Wait()
	} else {
		var errs error
		for _, s := range ex.sources {
			errs = errors.Join(errs, s.Close())
		}
		ex.mu.Lock()
		ex.closeErr = errors.Join(ex.closeErr, errs)
		ex.mu.Unlock()
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.closeErr
}

func (o *exchangeOut) Next() (*block.Page, error) {
	o.ex.start()
	p, ok := <-o.ch
	if !ok {
		// Channel closed ⇒ producers exited ⇒ any error is published.
		if err := o.ex.firstErr(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	return p, nil
}

func (o *exchangeOut) Close() error {
	if o.closed {
		return nil
	}
	o.closed = true
	close(o.dead)
	return o.ex.release()
}

// ---------------------------------------------------------------------------
// Hash partitioning.

// partitioner is one producer's scratch state for exPartition: per-output
// selection vectors (leased from the block pool) and a reusable key buffer,
// so routing a page allocates nothing beyond the masked output blocks.
type partitioner struct {
	ex        *localExchange
	selectors []*block.Positions
	keyVals   []any
	keyBuf    []byte
}

func newPartitioner(ex *localExchange) *partitioner {
	pt := &partitioner{
		ex:        ex,
		selectors: make([]*block.Positions, len(ex.outs)),
		keyVals:   make([]any, len(ex.keys)),
	}
	for i := range pt.selectors {
		pt.selectors[i] = block.GetPositions()
	}
	return pt
}

func (pt *partitioner) release() {
	for _, s := range pt.selectors {
		block.PutPositions(s)
	}
	pt.selectors = nil
}

// dispatch routes the rows of one page by key hash. Rows are batched into
// per-output selection vectors and masked out vectorized (Mask copies the
// selected rows, so the vectors are reusable immediately); a page whose rows
// all hash to one output is forwarded as-is.
func (pt *partitioner) dispatch(p *block.Page) bool {
	// Force lazy columns here, in the single producer goroutine: masking a
	// lazy block yields derived blocks whose loaders all funnel into the
	// parent's first Load, and Load is not safe for concurrent first use —
	// sibling consumers would race on it. (Rows crossing a partition
	// exchange feed aggregations/joins that read every column anyway, so
	// nothing is decoded that lazy reads would have skipped.)
	p = forceLazy(p)
	ex := pt.ex
	n := uint64(len(ex.outs))
	for _, s := range pt.selectors {
		s.Buf = s.Buf[:0]
	}
	for r := 0; r < p.Count(); r++ {
		for k, ch := range ex.keys {
			pt.keyVals[k] = p.Blocks[ch].Value(r)
		}
		pt.keyBuf = appendGroupKey(pt.keyBuf[:0], pt.keyVals)
		j := hashKeyBytes(pt.keyBuf) % n
		pt.selectors[j].Buf = append(pt.selectors[j].Buf, r)
	}
	for j, s := range pt.selectors {
		switch {
		case len(s.Buf) == 0:
			continue
		case len(s.Buf) == p.Count():
			if !ex.send(j, p) {
				return false
			}
		default:
			if !ex.send(j, p.Mask(s.Buf)) {
				return false
			}
		}
	}
	return true
}

// forceLazy returns p with every top-level lazy column materialized (a
// no-op page without them).
func forceLazy(p *block.Page) *block.Page {
	lazy := false
	for _, b := range p.Blocks {
		if _, ok := b.(*block.LazyBlock); ok {
			lazy = true
			break
		}
	}
	if !lazy {
		return p
	}
	blocks := make([]block.Block, len(p.Blocks))
	for i, b := range p.Blocks {
		if l, ok := b.(*block.LazyBlock); ok {
			blocks[i] = l.Load()
		} else {
			blocks[i] = b
		}
	}
	return &block.Page{Blocks: blocks, N: p.N}
}

// hashKeyBytes is inline FNV-1a (hash/fnv would allocate a hasher per row on
// this hot path). The same function routes both sides of a partitioned join,
// which is what makes matching keys meet on the same driver.
func hashKeyBytes(b []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
