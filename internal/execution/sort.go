package execution

import (
	"errors"
	"io"
	"sort"

	"prestolite/internal/block"
	"prestolite/internal/expr"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
	"prestolite/internal/types"
)

// sortOperator buffers its input and emits sorted output. NULLs sort last
// ascending / first descending. When everything fits the query's memory
// budget it emits one page of indirection blocks over the buffered input, so
// sorting never copies or re-encodes values; when a reservation is refused
// (and spill is enabled) it sorts what it holds, writes the sorted run to
// disk, and k-way merges the runs on read-back — an external sort.
type sortOperator struct {
	child    Operator
	keys     []planner.SortKey
	outTypes []*types.Type
	mem      *opMem

	consumed bool
	done     bool
	pages    []*block.Page
	runs     []*resource.Run
	cursors  []*sortCursor
	scratch  []any
}

// sortCursor reads one spilled run during the merge, holding one page at a
// time. Read-back pages are transient engine overhead (one bounded frame per
// open run), not user memory: charging them against the query cap that just
// forced the spill would deadlock the merge.
type sortCursor struct {
	rr   *resource.RunReader
	run  *resource.Run
	page *block.Page
	row  int
	done bool
}

func newSortOperator(node *planner.Sort, child Operator, mem *opMem) *sortOperator {
	outs := node.Outputs()
	ts := make([]*types.Type, len(outs))
	for i, c := range outs {
		ts[i] = c.Type
	}
	return &sortOperator{child: child, keys: node.Keys, outTypes: ts, mem: mem}
}

func (o *sortOperator) Next() (*block.Page, error) {
	if o.done {
		return nil, io.EOF
	}
	if !o.consumed {
		if err := o.consume(); err != nil {
			return nil, err
		}
		o.consumed = true
	}
	if len(o.runs) == 0 {
		o.done = true
		if len(o.pages) == 0 {
			return nil, io.EOF
		}
		return o.sortedView(), nil
	}
	return o.mergeNext()
}

func (o *sortOperator) consume() error {
	for {
		p, err := o.child.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if p.Count() == 0 {
			continue
		}
		sz := int64(p.SizeBytes())
		ok, err := o.mem.reserve(sz)
		if err != nil {
			return err
		}
		if !ok {
			if err := o.spillBuffer(); err != nil {
				return err
			}
			if err := o.mem.hardReserve(sz); err != nil {
				return err
			}
		}
		o.pages = append(o.pages, p)
	}
	if len(o.runs) == 0 {
		return nil
	}
	// Spilled at least once: the leftover buffer becomes the last run and
	// the merge takes over.
	if err := o.spillBuffer(); err != nil {
		return err
	}
	return o.openMerge()
}

// sortedView sorts the buffered pages and returns a zero-copy page of
// indirection blocks over them.
func (o *sortOperator) sortedView() *block.Page {
	pages := o.pages
	type idx struct {
		page int32
		row  int32
	}
	var rows []idx
	for pi, p := range pages {
		for r := 0; r < p.Count(); r++ {
			rows = append(rows, idx{page: int32(pi), row: int32(r)})
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for _, k := range o.keys {
			va := pages[rows[a].page].Blocks[k.Channel].Value(int(rows[a].row))
			vb := pages[rows[b].page].Blocks[k.Channel].Value(int(rows[b].row))
			c := compareNullable(va, vb)
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	pageIdx := make([]int32, len(rows))
	rowIdx := make([]int32, len(rows))
	for i, r := range rows {
		pageIdx[i] = r.page
		rowIdx[i] = r.row
	}
	width := len(pages[0].Blocks)
	blocks := make([]block.Block, width)
	for ch := 0; ch < width; ch++ {
		sources := make([]block.Block, len(pages))
		for pi, p := range pages {
			sources[pi] = p.Blocks[ch]
		}
		blocks[ch] = &indirectBlock{sources: sources, pageIdx: pageIdx, rowIdx: rowIdx}
	}
	return &block.Page{Blocks: blocks, N: len(rows)}
}

// spillBuffer sorts the buffered pages and writes the sorted rows out as one
// run, then frees their memory.
func (o *sortOperator) spillBuffer() error {
	if len(o.pages) == 0 {
		return nil
	}
	view := o.sortedView()
	w, err := o.mem.newRun("sort")
	if err != nil {
		return err
	}
	for off := 0; off < view.Count(); off += spillPageRows {
		n := spillPageRows
		if off+n > view.Count() {
			n = view.Count() - off
		}
		if err := w.WritePage(view.Region(off, n)); err != nil {
			w.Abandon()
			return o.mem.fail(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	o.runs = append(o.runs, run)
	o.mem.addSpilled(run.Bytes())
	o.pages = o.pages[:0]
	o.mem.releaseAll()
	return nil
}

func (o *sortOperator) openMerge() error {
	for _, r := range o.runs {
		rr, err := r.Open()
		if err != nil {
			return err
		}
		c := &sortCursor{rr: rr, run: r}
		o.cursors = append(o.cursors, c)
		if err := o.advancePage(c); err != nil {
			return err
		}
	}
	return nil
}

// advancePage drops the cursor's current page and loads the next one; at the
// end of the run the file is removed immediately.
func (o *sortOperator) advancePage(c *sortCursor) error {
	c.page, c.row = nil, 0
	p, err := c.rr.Next()
	if errors.Is(err, io.EOF) {
		c.done = true
		err := c.rr.Close()
		c.run.Remove()
		return err
	}
	if err != nil {
		return err
	}
	c.page = p
	return nil
}

// mergeNext emits the next page of the k-way merge over the spilled runs.
func (o *sortOperator) mergeNext() (*block.Page, error) {
	pb := block.NewPageBuilder(o.outTypes)
	if o.scratch == nil {
		o.scratch = make([]any, len(o.outTypes))
	}
	row := o.scratch
	for pb.Len() < spillPageRows {
		c := o.minCursor()
		if c == nil {
			break
		}
		for ch := range o.outTypes {
			row[ch] = c.page.Blocks[ch].Value(c.row)
		}
		pb.AppendRow(row)
		c.row++
		if c.row >= c.page.Count() {
			if err := o.advancePage(c); err != nil {
				return nil, err
			}
		}
	}
	if pb.Len() == 0 {
		o.done = true
		return nil, io.EOF
	}
	return pb.Build(), nil
}

// minCursor picks the live cursor with the smallest current row. Ties stay
// with the earliest run — runs hold earlier input rows, so the merge keeps
// the stability of the in-memory sort.
func (o *sortOperator) minCursor() *sortCursor {
	var best *sortCursor
	for _, c := range o.cursors {
		if c.done {
			continue
		}
		if best == nil || o.cursorLess(c, best) {
			best = c
		}
	}
	return best
}

func (o *sortOperator) cursorLess(a, b *sortCursor) bool {
	for _, k := range o.keys {
		va := a.page.Blocks[k.Channel].Value(a.row)
		vb := b.page.Blocks[k.Channel].Value(b.row)
		c := compareNullable(va, vb)
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

// compareNullable orders values with NULL greatest (NULLS LAST ascending).
func compareNullable(a, b any) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return 1
	case b == nil:
		return -1
	}
	return expr.CompareValues(a, b)
}

func (o *sortOperator) Close() error {
	var errs []error
	for _, c := range o.cursors {
		if c.rr != nil && !c.done {
			errs = append(errs, c.rr.Close())
		}
	}
	for _, r := range o.runs {
		r.Remove()
	}
	o.mem.releaseAll()
	errs = append(errs, o.child.Close())
	return errors.Join(errs...)
}

// indirectBlock is a zero-copy view over rows scattered across multiple
// source blocks.
type indirectBlock struct {
	sources []block.Block
	pageIdx []int32
	rowIdx  []int32
}

func (b *indirectBlock) Count() int { return len(b.pageIdx) }

func (b *indirectBlock) IsNull(i int) bool {
	return b.sources[b.pageIdx[i]].IsNull(int(b.rowIdx[i]))
}

func (b *indirectBlock) Value(i int) any {
	return b.sources[b.pageIdx[i]].Value(int(b.rowIdx[i]))
}

func (b *indirectBlock) Region(offset, length int) block.Block {
	return &indirectBlock{
		sources: b.sources,
		pageIdx: b.pageIdx[offset : offset+length],
		rowIdx:  b.rowIdx[offset : offset+length],
	}
}

func (b *indirectBlock) Mask(positions []int) block.Block {
	pi := make([]int32, len(positions))
	ri := make([]int32, len(positions))
	for out, p := range positions {
		pi[out] = b.pageIdx[p]
		ri[out] = b.rowIdx[p]
	}
	return &indirectBlock{sources: b.sources, pageIdx: pi, rowIdx: ri}
}

func (b *indirectBlock) SizeBytes() int { return 8 * len(b.pageIdx) }

// Materialize converts the view into concrete blocks (needed before pages
// cross a process boundary).
func (b *indirectBlock) Materialize() block.Block {
	// Mask each source to its positions in output order, then concatenate
	// runs. Positions alternate between sources, so build per-run masks.
	var parts []block.Block
	i := 0
	for i < len(b.pageIdx) {
		src := b.pageIdx[i]
		j := i
		var positions []int
		for j < len(b.pageIdx) && b.pageIdx[j] == src {
			positions = append(positions, int(b.rowIdx[j]))
			j++
		}
		parts = append(parts, b.sources[src].Mask(positions))
		i = j
	}
	return block.Concat(parts)
}
