package execution

import (
	"errors"
	"io"
	"sort"

	"prestolite/internal/block"
	"prestolite/internal/expr"
	"prestolite/internal/planner"
)

// sortOperator buffers all input and emits one sorted page. NULLs sort last
// ascending / first descending. The output page uses indirection blocks over
// the buffered pages, so sorting never copies or re-encodes values (it works
// for any block type, including nested ones).
type sortOperator struct {
	child       Operator
	keys        []planner.SortKey
	memoryLimit int64
	done        bool
}

func (o *sortOperator) Next() (*block.Page, error) {
	if o.done {
		return nil, io.EOF
	}
	var pages []*block.Page
	var buffered int64
	for {
		p, err := o.child.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if p.Count() > 0 {
			pages = append(pages, p)
			buffered += int64(p.SizeBytes())
			if o.memoryLimit > 0 && buffered > o.memoryLimit {
				return nil, ErrInsufficientResources{Operator: "ORDER BY buffering", Limit: o.memoryLimit}
			}
		}
	}
	o.done = true
	if len(pages) == 0 {
		return nil, io.EOF
	}
	type idx struct {
		page int32
		row  int32
	}
	var rows []idx
	for pi, p := range pages {
		for r := 0; r < p.Count(); r++ {
			rows = append(rows, idx{page: int32(pi), row: int32(r)})
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for _, k := range o.keys {
			va := pages[rows[a].page].Blocks[k.Channel].Value(int(rows[a].row))
			vb := pages[rows[b].page].Blocks[k.Channel].Value(int(rows[b].row))
			c := compareNullable(va, vb)
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	pageIdx := make([]int32, len(rows))
	rowIdx := make([]int32, len(rows))
	for i, r := range rows {
		pageIdx[i] = r.page
		rowIdx[i] = r.row
	}
	width := len(pages[0].Blocks)
	blocks := make([]block.Block, width)
	for ch := 0; ch < width; ch++ {
		sources := make([]block.Block, len(pages))
		for pi, p := range pages {
			sources[pi] = p.Blocks[ch]
		}
		blocks[ch] = &indirectBlock{sources: sources, pageIdx: pageIdx, rowIdx: rowIdx}
	}
	return &block.Page{Blocks: blocks, N: len(rows)}, nil
}

// compareNullable orders values with NULL greatest (NULLS LAST ascending).
func compareNullable(a, b any) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return 1
	case b == nil:
		return -1
	}
	return expr.CompareValues(a, b)
}

func (o *sortOperator) Close() error { return o.child.Close() }

// indirectBlock is a zero-copy view over rows scattered across multiple
// source blocks.
type indirectBlock struct {
	sources []block.Block
	pageIdx []int32
	rowIdx  []int32
}

func (b *indirectBlock) Count() int { return len(b.pageIdx) }

func (b *indirectBlock) IsNull(i int) bool {
	return b.sources[b.pageIdx[i]].IsNull(int(b.rowIdx[i]))
}

func (b *indirectBlock) Value(i int) any {
	return b.sources[b.pageIdx[i]].Value(int(b.rowIdx[i]))
}

func (b *indirectBlock) Region(offset, length int) block.Block {
	return &indirectBlock{
		sources: b.sources,
		pageIdx: b.pageIdx[offset : offset+length],
		rowIdx:  b.rowIdx[offset : offset+length],
	}
}

func (b *indirectBlock) Mask(positions []int) block.Block {
	pi := make([]int32, len(positions))
	ri := make([]int32, len(positions))
	for out, p := range positions {
		pi[out] = b.pageIdx[p]
		ri[out] = b.rowIdx[p]
	}
	return &indirectBlock{sources: b.sources, pageIdx: pi, rowIdx: ri}
}

func (b *indirectBlock) SizeBytes() int { return 8 * len(b.pageIdx) }

// Materialize converts the view into concrete blocks (needed before pages
// cross a process boundary).
func (b *indirectBlock) Materialize() block.Block {
	// Mask each source to its positions in output order, then concatenate
	// runs. Positions alternate between sources, so build per-run masks.
	var parts []block.Block
	i := 0
	for i < len(b.pageIdx) {
		src := b.pageIdx[i]
		j := i
		var positions []int
		for j < len(b.pageIdx) && b.pageIdx[j] == src {
			positions = append(positions, int(b.rowIdx[j]))
			j++
		}
		parts = append(parts, b.sources[src].Mask(positions))
		i = j
	}
	return block.Concat(parts)
}
