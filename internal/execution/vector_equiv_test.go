package execution

// Property-based equivalence suite for the vectorized kernels: random
// schemas, encodings, NULL densities, cardinalities and driver counts are
// generated from a seed, run through the vectorized operators, and compared
// row-exactly against the row-at-a-time reference path (DisableVectorized,
// serial Build). Every failure logs its seed; replay one with
// EQUIV_SEED=<seed> go test -run TestVector.*Equivalence ./internal/execution/.
//
// DOUBLE columns only hold multiples of 0.5 with small magnitudes, so
// floating-point sums are exact regardless of addition order — that is what
// makes row-exact comparison valid across driver counts and partial/final
// splits that add values in different orders.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
	"prestolite/internal/types"
)

// equivSeeds returns the seeds to run, honoring an EQUIV_SEED override.
func equivSeeds(t *testing.T) []int64 {
	if env := os.Getenv("EQUIV_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad EQUIV_SEED %q: %v", env, err)
		}
		return []int64{seed}
	}
	return []int64{1, 7, 42, 1234}
}

// ---------------------------------------------------------------------------
// Connector serving pre-generated pages.

type equivSplit struct{ pages []*block.Page }

func (s *equivSplit) Description() string { return "equiv split" }

type equivHandle struct{ name string }

func (h equivHandle) Description() string { return h.name }

type equivConnector struct{ splits []connector.Split }

func (c *equivConnector) Name() string                                   { return "equiv" }
func (c *equivConnector) Metadata() connector.Metadata                   { return nil }
func (c *equivConnector) SplitManager() connector.SplitManager           { return c }
func (c *equivConnector) RecordSetProvider() connector.RecordSetProvider { return c }

func (c *equivConnector) Splits(connector.TableHandle) ([]connector.Split, error) {
	return c.splits, nil
}

func (c *equivConnector) CreatePageSource(_ connector.TableHandle, split connector.Split, columns []int) (connector.PageSource, error) {
	return &equivPageSource{pages: split.(*equivSplit).pages, columns: columns}, nil
}

type equivPageSource struct {
	pages   []*block.Page
	columns []int
	pos     int
}

func (s *equivPageSource) Next() (*block.Page, error) {
	if s.pos >= len(s.pages) {
		return nil, io.EOF
	}
	p := s.pages[s.pos]
	s.pos++
	blocks := make([]block.Block, len(s.columns))
	for i, ord := range s.columns {
		blocks[i] = p.Blocks[ord]
	}
	return block.NewPage(blocks...), nil
}

func (s *equivPageSource) Close() error { return nil }

// ---------------------------------------------------------------------------
// Random data generation.

// equivColSpec describes one generated column: its type, the size of its
// value domain (key cardinality) and the probability of NULL per row.
type equivColSpec struct {
	name    string
	typ     *types.Type
	card    int
	nullDen float64
}

var equivTypes = []*types.Type{
	types.Bigint, types.Integer, types.Double, types.Varchar, types.Boolean, types.Date,
}

func equivColSpecs(rng *rand.Rand, prefix string, n int, cards []int) []equivColSpec {
	dens := []float64{0, 0.05, 0.3}
	specs := make([]equivColSpec, n)
	for i := range specs {
		specs[i] = equivColSpec{
			name:    fmt.Sprintf("%s%d", prefix, i),
			typ:     equivTypes[rng.Intn(len(equivTypes))],
			card:    cards[rng.Intn(len(cards))],
			nullDen: dens[rng.Intn(len(dens))],
		}
	}
	return specs
}

// equivValue maps domain index d to a value of type t. DOUBLE values are
// multiples of 0.5 so any-order summation stays exact (see file comment).
func equivValue(t *types.Type, d int) any {
	switch t.Kind {
	case types.KindBigint:
		return int64(d*7 - 3)
	case types.KindInteger:
		return int64(d)
	case types.KindDate:
		return int64(18000 + d)
	case types.KindDouble:
		return float64(d) + 0.5
	case types.KindBoolean:
		return d%2 == 0
	default:
		return "v" + strconv.Itoa(d)
	}
}

// equivBlock generates one page column of n rows in a random physical
// encoding: flat, dictionary (possibly with duplicate entries and -1 null
// ids) or run-length (constant page).
func equivBlock(rng *rand.Rand, spec equivColSpec, n int) block.Block {
	switch rng.Intn(4) {
	case 0: // run-length: the whole page shares one value (or NULL)
		var v any
		if rng.Float64() >= spec.nullDen {
			v = equivValue(spec.typ, rng.Intn(spec.card))
		}
		return block.NewRunLengthBlock(block.SingleValue(spec.typ, v), n)
	case 1: // dictionary
		m := 1 + rng.Intn(8)
		vals := make([]any, m)
		for i := range vals {
			vals[i] = equivValue(spec.typ, rng.Intn(spec.card))
		}
		ids := make([]int32, n)
		for i := range ids {
			if rng.Float64() < spec.nullDen {
				ids[i] = -1
			} else {
				ids[i] = int32(rng.Intn(m))
			}
		}
		return &block.DictionaryBlock{Dictionary: block.FromValues(spec.typ, vals...), Ids: ids}
	default: // flat
		vals := make([]any, n)
		for i := range vals {
			if rng.Float64() >= spec.nullDen {
				vals[i] = equivValue(spec.typ, rng.Intn(spec.card))
			}
		}
		return block.FromValues(spec.typ, vals...)
	}
}

// equivScan builds a table scan over `target` generated rows dealt into
// random page sizes across a random number of splits.
func equivScan(rng *rand.Rand, catalog string, specs []equivColSpec, target int) (*planner.TableScan, *equivConnector) {
	var sizes []int
	for remaining := target; remaining > 0; {
		n := 1 + rng.Intn(256)
		if n > remaining {
			n = remaining
		}
		sizes = append(sizes, n)
		remaining -= n
	}
	nsplits := 1 + rng.Intn(4)
	pages := make([][]*block.Page, nsplits)
	for i, n := range sizes {
		blocks := make([]block.Block, len(specs))
		for j, spec := range specs {
			blocks[j] = equivBlock(rng, spec, n)
		}
		pages[i%nsplits] = append(pages[i%nsplits], block.NewPage(blocks...))
	}
	c := &equivConnector{}
	for _, p := range pages {
		c.splits = append(c.splits, &equivSplit{pages: p})
	}
	cols := make([]planner.Column, len(specs))
	ords := make([]int, len(specs))
	for i, spec := range specs {
		cols[i] = planner.Column{Name: spec.name, Type: spec.typ}
		ords[i] = i
	}
	scan := &planner.TableScan{
		Catalog: catalog, Schema: "s", Table: catalog, Handle: equivHandle{catalog},
		Cols: cols, ColumnOrdinals: ords, PushedLimit: -1,
	}
	return scan, c
}

// equivAggs picks one aggregate per non-key column (type-compatible, typed
// through the same registry resolution the analyzer uses) plus count(*).
func equivAggs(rng *rand.Rand, specs []equivColSpec, nKeys int) []planner.Aggregation {
	aggs := []planner.Aggregation{{
		FuncName: "count", OutputName: "cnt", InterType: types.Bigint, FinalType: types.Bigint,
	}}
	for j := nKeys; j < len(specs); j++ {
		t := specs[j].typ
		fns := []string{"count", "min", "max"}
		if t.IsNumeric() {
			fns = []string{"count", "sum", "min", "max", "avg"}
		}
		name := fns[rng.Intn(len(fns))]
		fn, err := expr.ResolveAggregate(name, []*types.Type{t})
		if err != nil {
			continue
		}
		aggs = append(aggs, planner.Aggregation{
			FuncName: name, Args: []int{j}, ArgTypes: []*types.Type{t},
			OutputName: fmt.Sprintf("a%d", j),
			InterType:  fn.IntermediateType([]*types.Type{t}),
			FinalType:  fn.FinalType([]*types.Type{t}),
		})
	}
	return aggs
}

// maybeFilter wraps node in a random comparison filter over one column when
// the function registry supports it — exercising the selection-vector
// kernels (including dictionary/RLE fast paths) inside full plans.
func maybeFilter(rng *rand.Rand, node planner.Node, specs []equivColSpec) planner.Node {
	if rng.Intn(2) == 0 {
		return node
	}
	ch := rng.Intn(len(specs))
	spec := specs[ch]
	v := expr.NewVariable(spec.name, ch, spec.typ)
	var pred expr.RowExpression
	var err error
	if spec.typ.Kind == types.KindBoolean {
		pred, err = expr.NewCall("eq", v, expr.NewConstant(true, types.Boolean))
	} else {
		pred, err = expr.NewCall("lt", v, expr.NewConstant(equivValue(spec.typ, spec.card/2), spec.typ))
	}
	if err != nil {
		return node
	}
	return &planner.Filter{Child: node, Predicate: pred}
}

// ---------------------------------------------------------------------------
// Running and comparing.

// equivConfig is one engine configuration a generated plan runs under.
type equivConfig struct {
	name     string
	drivers  int
	disable  bool // DisableVectorized: row-at-a-time operators
	adaptive int  // AdaptiveExchangeRows: 0 default, >0 low threshold, <0 off
	bypass   int  // PartialAggBypassRows: 0 default, >0 eager trigger, <0 off
}

// equivConfigs covers vectorized × driver counts × adaptive-exchange modes,
// plus the row reference operators behind parallel exchanges.
var equivConfigs = []equivConfig{
	{name: "vector-1", drivers: 1},
	{name: "vector-2", drivers: 2},
	{name: "vector-8", drivers: 8},
	{name: "vector-8-forcepartition", drivers: 8, adaptive: 1},
	{name: "vector-4-noadaptive", drivers: 4, adaptive: -1},
	// bypass: 1 arms adaptive partial aggregation on the first ratio check
	// (any partial seeing <20% reduction streams through); -1 pins the
	// always-hash behavior the other configs mostly exhibit anyway.
	{name: "vector-4-bypass", drivers: 4, bypass: 1},
	{name: "vector-2-forcepartition-bypass", drivers: 2, adaptive: 1, bypass: 1},
	{name: "vector-8-nobypass", drivers: 8, bypass: -1},
	{name: "row-8", drivers: 8, disable: true},
}

// runEquiv executes plan under cfg and returns the sorted row multiset.
func runEquiv(t *testing.T, plan planner.Node, reg *connector.Registry, cfg equivConfig) []string {
	t.Helper()
	ctx := &Context{
		Catalogs: reg, Drivers: cfg.drivers,
		DisableVectorized: cfg.disable, AdaptiveExchangeRows: cfg.adaptive,
		PartialAggBypassRows: cfg.bypass,
	}
	op, err := BuildParallel(plan, ctx)
	if err != nil {
		t.Fatalf("%s: build: %v", cfg.name, err)
	}
	return sortedMultiset(drainRows(t, op))
}

// equivReference is the oracle: serial row-at-a-time Build.
var equivReference = equivConfig{name: "reference", drivers: 1, disable: true}

func checkEquivalence(t *testing.T, seed int64, plan planner.Node, reg *connector.Registry) {
	t.Helper()
	want := runEquiv(t, plan, reg, equivReference)
	for _, cfg := range equivConfigs {
		got := runEquiv(t, plan, reg, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d, %s: %d rows diverge from reference's %d\nplan:\n%s",
				seed, cfg.name, len(got), len(want), planner.Format(plan))
			return
		}
	}
}

// ---------------------------------------------------------------------------
// The suites.

// TestVectorAggEquivalence: random grouped aggregations (random key types,
// cardinalities, NULL densities, encodings, optional filter, every agg
// function with a typed kernel) must produce row-identical results on the
// vectorized path at any driver count.
func TestVectorAggEquivalence(t *testing.T) {
	for _, seed := range equivSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 3; trial++ {
				nKeys := 1 + rng.Intn(2)
				specs := equivColSpecs(rng, "k", nKeys, []int{1, 2, 5, 40, 300})
				specs = append(specs, equivColSpecs(rng, "v", 1+rng.Intn(2), []int{7, 1000})...)
				scan, conn := equivScan(rng, "t", specs, rng.Intn(3000))
				reg := connector.NewRegistry()
				reg.Register("t", conn)
				child := maybeFilter(rng, scan, specs)
				groupBy := make([]int, nKeys)
				for i := range groupBy {
					groupBy[i] = i
				}
				plan := &planner.Aggregate{
					Child: child, GroupBy: groupBy,
					Aggs: equivAggs(rng, specs, nKeys), Step: planner.AggSingle,
				}
				checkEquivalence(t, seed, plan, reg)
			}
		})
	}
}

// TestVectorJoinEquivalence: random inner/left equi-joins (shared key
// domains so matches actually occur, mixed encodings and NULL keys) must
// produce row-identical results on the vectorized path at any driver count,
// under every adaptive-exchange mode (broadcast-small and partitioned).
func TestVectorJoinEquivalence(t *testing.T) {
	for _, seed := range equivSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 2; trial++ {
				keys := equivColSpecs(rng, "k", 1+rng.Intn(2), []int{10, 50, 200})
				left := append(append([]equivColSpec{}, keys...),
					equivColSpecs(rng, "lv", 1, []int{1000})...)
				right := append(append([]equivColSpec{}, keys...),
					equivColSpecs(rng, "rv", 1, []int{1000})...)
				scanL, connL := equivScan(rng, "l", left, rng.Intn(600))
				scanR, connR := equivScan(rng, "r", right, rng.Intn(250))
				reg := connector.NewRegistry()
				reg.Register("l", connL)
				reg.Register("r", connR)
				kind := planner.JoinInner
				if rng.Intn(2) == 0 {
					kind = planner.JoinLeft
				}
				jk := make([]int, len(keys))
				for i := range jk {
					jk[i] = i
				}
				plan := &planner.Join{
					Kind: kind, Left: scanL, Right: scanR,
					LeftKeys: jk, RightKeys: append([]int{}, jk...),
				}
				checkEquivalence(t, seed, plan, reg)
			}
		})
	}
}

// runEquivSpill executes plan serially with a capped pool and a spill
// manager, returning the sorted row multiset and the pool (for spill
// assertions). Serial keeps spill triggering deterministic.
func runEquivSpill(t *testing.T, plan planner.Node, reg *connector.Registry, limit int64, disable bool) ([]string, *resource.Pool) {
	t.Helper()
	pool, mgr := spillEnv(t, limit)
	ctx := &Context{
		Catalogs: reg, Drivers: 1, Memory: pool, Spill: mgr, DisableVectorized: disable,
	}
	op, err := BuildParallel(plan, ctx)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return sortedMultiset(drainRows(t, op)), pool
}

// TestVectorAggSpillEquivalence: the vectorized aggregation under memory
// pressure must spill (not fail), and the post-spill merge must reproduce
// the unlimited reference results exactly — including the grown-slice reuse
// after Reset that the spill path exercises.
func TestVectorAggSpillEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	specs := []equivColSpec{
		{name: "k0", typ: types.Bigint, card: 600, nullDen: 0.05},
		{name: "v0", typ: types.Bigint, card: 1000},
		{name: "v1", typ: types.Double, card: 500, nullDen: 0.1},
	}
	scan, conn := equivScan(rng, "t", specs, 4000)
	reg := connector.NewRegistry()
	reg.Register("t", conn)
	plan := &planner.Aggregate{
		Child: scan, GroupBy: []int{0},
		Aggs: equivAggs(rng, specs, 1), Step: planner.AggSingle,
	}
	want := runEquiv(t, plan, reg, equivReference)
	got, pool := runEquivSpill(t, plan, reg, 32<<10, false)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spilled vector aggregation diverged: %d vs %d rows", len(got), len(want))
	}
	if pool.Spilled() == 0 {
		t.Fatal("vector aggregation never spilled despite the tiny limit")
	}
}

// TestVectorJoinSpillEquivalence: the vectorized join under memory pressure
// degrades to the spilling row join; results must match the unlimited
// reference exactly.
func TestVectorJoinSpillEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	keys := []equivColSpec{{name: "k0", typ: types.Bigint, card: 400, nullDen: 0.05}}
	left := append(append([]equivColSpec{}, keys...),
		equivColSpec{name: "lv", typ: types.Varchar, card: 1000})
	right := append(append([]equivColSpec{}, keys...),
		equivColSpec{name: "rv", typ: types.Double, card: 1000})
	scanL, connL := equivScan(rng, "l", left, 1500)
	scanR, connR := equivScan(rng, "r", right, 3000)
	reg := connector.NewRegistry()
	reg.Register("l", connL)
	reg.Register("r", connR)
	plan := &planner.Join{
		Kind: planner.JoinLeft, Left: scanL, Right: scanR,
		LeftKeys: []int{0}, RightKeys: []int{0},
	}
	want := runEquiv(t, plan, reg, equivReference)
	got, pool := runEquivSpill(t, plan, reg, 32<<10, false)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spilled vector join diverged: %d vs %d rows", len(got), len(want))
	}
	if pool.Spilled() == 0 {
		t.Fatal("vector join never spilled despite the tiny limit")
	}
}

// TestPartialAggBypassStreams pins the adaptive-partial-aggregation trip
// itself, not just its end-to-end invisibility: over a nearly-unique key
// with an eager trigger, a partial step must stop hashing and stream rows
// through, so its output row count exceeds the group count a fully-hashed
// partial collapses to. The disabled-trigger run doubles as the oracle for
// the group count, and both shapes must agree with the rowwise reference
// after a final step (covered by the equivalence configs above).
func TestPartialAggBypassStreams(t *testing.T) {
	const seed, rows = 21, 2000
	// card 3x rows: ~15% of rows repeat a key, so the reduction ratio stays
	// above the 80% trigger while pass-through visibly outgrows the groups.
	specs := []equivColSpec{{name: "k0", typ: types.Bigint, card: 3 * rows}}
	outRows := func(bypass int) int {
		rng := rand.New(rand.NewSource(seed))
		scan, conn := equivScan(rng, "t", specs, rows)
		reg := connector.NewRegistry()
		reg.Register("t", conn)
		partial := &planner.Aggregate{
			Child:   scan,
			GroupBy: []int{0},
			Aggs: []planner.Aggregation{{
				FuncName: "count", OutputName: "cnt", InterType: types.Bigint, FinalType: types.Bigint,
			}},
			Step: planner.AggPartial,
		}
		op, err := Build(partial, &Context{Catalogs: reg, Drivers: 1, PartialAggBypassRows: bypass})
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return len(drainRows(t, op))
	}
	groups := outRows(-1) // bypass disabled: one output row per group
	passed := outRows(1)  // eager trigger: pass-through after the first page
	if groups >= rows {
		t.Fatalf("want duplicate keys in the input: %d groups for %d rows", groups, rows)
	}
	if passed <= groups {
		t.Fatalf("partial bypass never engaged: %d output rows with eager trigger, %d groups without", passed, groups)
	}
}
