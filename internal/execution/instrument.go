package execution

import (
	"fmt"
	"strings"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/obs"
	"prestolite/internal/planner"
)

// planOperatorIDs assigns stable pre-order ids to every node of a plan.
// Build (when Context.Stats is set) and FormatAnnotated both use this walk,
// so stats recorded during execution line up with the rendered tree — on the
// coordinator and on every worker running the same fragment.
func planOperatorIDs(root planner.Node) map[planner.Node]int {
	ids := map[planner.Node]int{}
	next := 0
	var walk func(n planner.Node)
	walk = func(n planner.Node) {
		ids[n] = next
		next++
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(root)
	return ids
}

// instrument wraps op so it records rows/bytes out, wall time, page count
// and peak batch size into ctx.Stats. No-op when stats are disabled.
//
// Under BuildParallel one plan node becomes several driver instances; they
// all record into one shared OperatorStats (its fields are atomics), each
// through its own single-writer Recorder, and the node's driver count is
// what EXPLAIN ANALYZE renders as "drivers: N". Wall time therefore sums
// across drivers — cumulative like Presto's operator CPU accounting, so it
// can exceed the query's wall clock.
func (ctx *Context) instrument(node planner.Node, op Operator) Operator {
	if ctx.Stats == nil {
		return op
	}
	st := ctx.opStats[node]
	if st == nil {
		children := node.Children()
		childIDs := make([]int, len(children))
		for i, c := range children {
			childIDs[i] = ctx.ids[c]
		}
		st = ctx.Stats.Register(ctx.ids[node], node.Describe(), childIDs)
		if ctx.opStats == nil {
			ctx.opStats = map[planner.Node]*obs.OperatorStats{}
		}
		ctx.opStats[node] = st
	} else {
		st.AddDriver()
	}
	return &statsOperator{child: op, rec: obs.NewRecorder(st)}
}

// statsOperator is the instrumentation wrapper. Wall time is cumulative: a
// parent's Next includes the time its children spend producing input, like
// Presto's operator-level CPU accounting.
type statsOperator struct {
	child Operator
	rec   *obs.Recorder
}

func (o *statsOperator) Next() (*block.Page, error) {
	start := time.Now()
	p, err := o.child.Next()
	o.rec.RecordWall(time.Since(start))
	if err != nil {
		o.rec.Flush() // EOF or failure: publish exact totals
		return nil, err
	}
	if p != nil {
		o.rec.RecordPage(p.Count(), int64(p.SizeBytes()))
	}
	return p, nil
}

func (o *statsOperator) Close() error {
	o.rec.Flush()
	return o.child.Close()
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE rendering.

// FormatAnnotated renders a plan tree like planner.Format, annotating each
// node with the actual statistics recorded during execution (matched by the
// shared pre-order ids). Operators with no recorded stats (e.g. a fragment
// that never ran) render unannotated.
func FormatAnnotated(root planner.Node, snaps []obs.OperatorStatsSnapshot) string {
	byID := make(map[int]obs.OperatorStatsSnapshot, len(snaps))
	for _, s := range snaps {
		byID[s.ID] = s
	}
	ids := planOperatorIDs(root)
	var sb strings.Builder
	var walk func(n planner.Node, depth int)
	walk = func(n planner.Node, depth int) {
		indent := strings.Repeat("    ", depth)
		sb.WriteString(indent)
		sb.WriteString("- ")
		sb.WriteString(n.Describe())
		sb.WriteByte('\n')
		if s, ok := byID[ids[n]]; ok {
			sb.WriteString(indent)
			sb.WriteString("  ")
			sb.WriteString(formatOperatorStats(s))
			sb.WriteByte('\n')
		}
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return sb.String()
}

// formatOperatorStats renders one stats annotation line.
func formatOperatorStats(s obs.OperatorStatsSnapshot) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rows: %d in, %d out (%s), wall: %s, batches: %d (peak %d rows)",
		s.RowsIn, s.RowsOut, formatBytes(s.BytesOut),
		time.Duration(s.WallNanos).Round(time.Microsecond), s.Pages, s.PeakBatchRows)
	if s.Tasks > 1 {
		fmt.Fprintf(&sb, ", tasks: %d", s.Tasks)
	}
	// Drivers accumulate across tasks too; when every task ran serially
	// drivers == tasks and the count adds nothing, so only genuine
	// intra-task parallelism is annotated.
	if s.Drivers > s.Tasks {
		fmt.Fprintf(&sb, ", drivers: %d", s.Drivers)
	}
	return sb.String()
}

// formatBytes humanizes a byte count.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
