package execution

import (
	"errors"
	"io"

	"prestolite/internal/block"
	"prestolite/internal/execution/vector"
	"prestolite/internal/planner"
	"prestolite/internal/types"
)

// newJoinOp picks the join implementation for a plan node: the vectorized
// operator for residual-free INNER/LEFT equi-joins over scalar columns,
// otherwise the row-at-a-time reference operator (cross joins, residual
// predicates, nested build-side types).
func newJoinOp(ctx *Context, node *planner.Join, left, right Operator) Operator {
	if vectorJoinEligible(ctx, node) {
		return newVectorJoinOperator(node, left, right, newOpMem("the build side of a join", ctx))
	}
	return newJoinOperator(node, left, right, newOpMem("the build side of a join", ctx))
}

func vectorJoinEligible(ctx *Context, node *planner.Join) bool {
	if ctx.DisableVectorized || len(node.LeftKeys) == 0 || node.Residual != nil {
		return false
	}
	if node.Kind != planner.JoinInner && node.Kind != planner.JoinLeft {
		return false
	}
	// Every build-side column lands in a typed store; probe-side keys need
	// typed views. Probe non-key columns pass through untouched.
	for _, c := range node.Right.Outputs() {
		if !vector.Supported(c.Type) {
			return false
		}
	}
	leftCols := node.Left.Outputs()
	for _, ch := range node.LeftKeys {
		if !vector.Supported(leftCols[ch].Type) {
			return false
		}
	}
	return true
}

// vectorJoinOperator is a hash equi-join over the vector kernels: the build
// side is compacted into flat typed column stores indexed by a chained
// open-addressing JoinTable, and probe pages are hashed and matched in
// batch — matches come out as (probe selection vector, build row gather),
// so output columns are built with two typed copies instead of per-row
// boxing.
//
// Memory pressure degrades to the reference operator: the compacted store
// is synthesized back into pages and replayed into a row joinOperator,
// whose multi-pass spill machinery takes over.
type vectorJoinOperator struct {
	node  *planner.Join
	left  Operator
	right Operator
	mem   *opMem

	leftTypes  []*types.Type
	rightTypes []*types.Type
	keyKinds   []vector.Kind

	cols    []*vector.Column
	jt      *vector.JoinTable
	rows    int
	charged int64
	built   bool

	hasher   vector.Hasher
	hashes   []uint64
	rowViews []*vector.View
	keyViews []*vector.View
	probeSel []int
	extraSel []int
	matched  []bool

	pending  []*block.Page
	fallback Operator
}

func newVectorJoinOperator(node *planner.Join, left, right Operator, mem *opMem) Operator {
	lo, ro := node.Left.Outputs(), node.Right.Outputs()
	lt := make([]*types.Type, len(lo))
	for i, c := range lo {
		lt[i] = c.Type
	}
	rt := make([]*types.Type, len(ro))
	cols := make([]*vector.Column, len(ro))
	for i, c := range ro {
		rt[i] = c.Type
		cols[i], _ = vector.NewColumn(c.Type)
	}
	keyCols := make([]*vector.Column, len(node.RightKeys))
	for i, ch := range node.RightKeys {
		keyCols[i] = cols[ch]
	}
	keyKinds := make([]vector.Kind, len(node.LeftKeys))
	for i, ch := range node.LeftKeys {
		keyKinds[i], _ = vector.KindOf(lt[ch])
	}
	return &vectorJoinOperator{
		node:       node,
		left:       left,
		right:      right,
		mem:        mem,
		leftTypes:  lt,
		rightTypes: rt,
		keyKinds:   keyKinds,
		cols:       cols,
		jt:         vector.NewJoinTable(keyCols),
		rowViews:   newViews(len(ro)),
		keyViews:   newViews(len(node.LeftKeys)),
	}
}

// build consumes the build side into the column stores and join table,
// charging retained bytes as it grows. The first refused reservation hands
// the operator over to the row reference implementation (degrade), whose
// spill machinery is built for exactly that regime.
func (o *vectorJoinOperator) build() error {
	rightKinds := make([]vector.Kind, len(o.rightTypes))
	for i, t := range o.rightTypes {
		rightKinds[i], _ = vector.KindOf(t)
	}
	insViews := make([]*vector.View, len(o.node.RightKeys))
	for {
		p, err := o.right.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n := p.Count()
		if n == 0 {
			continue
		}
		if cap(o.hashes) < n {
			o.hashes = make([]uint64, n)
		}
		hashes := o.hashes[:n]
		o.hasher.HashPage(p, o.node.RightKeys, hashes)
		for c := range o.cols {
			if err := viewOf(p.Blocks[c], rightKinds[c], n, o.rowViews[c]); err != nil {
				return err
			}
		}
		base := o.rows
		for c, col := range o.cols {
			col.Append(o.rowViews[c], n)
		}
		for i, ch := range o.node.RightKeys {
			insViews[i] = o.rowViews[ch]
		}
		o.jt.Insert(insViews, n, hashes, base)
		o.rows += n

		var held int64
		for _, col := range o.cols {
			held += col.Bytes()
		}
		held += o.jt.Bytes()
		delta := held - o.charged
		o.charged = held
		if delta <= 0 {
			continue
		}
		ok, err := o.mem.reserve(delta)
		if err != nil {
			return err
		}
		if !ok {
			return o.degrade()
		}
	}
	return nil
}

// degrade synthesizes the compacted build side back into pages, releases
// the vector state, and replays everything (plus the unread remainder of
// the build stream) into a row joinOperator — which immediately faces the
// same memory pressure and takes its multi-pass spill path.
func (o *vectorJoinOperator) degrade() error {
	var pages []*block.Page
	for from := 0; from < o.rows; from += spillPageRows {
		to := min(from+spillPageRows, o.rows)
		blocks := make([]block.Block, len(o.cols))
		for c, col := range o.cols {
			blocks[c] = col.Block(from, to)
		}
		pages = append(pages, &block.Page{Blocks: blocks, N: to - from})
	}
	o.cols, o.jt = nil, nil
	o.charged = 0
	o.mem.releaseAll()
	replay := &pageReplayOperator{pages: pages, rest: o.right}
	o.fallback = newJoinOperator(o.node, o.left, replay, o.mem)
	return nil
}

func (o *vectorJoinOperator) Next() (*block.Page, error) {
	if !o.built {
		if err := o.build(); err != nil {
			return nil, err
		}
		o.built = true
	}
	if o.fallback != nil {
		return o.fallback.Next()
	}
	for {
		if len(o.pending) > 0 {
			p := o.pending[0]
			o.pending = o.pending[1:]
			return p, nil
		}
		p, err := o.left.Next()
		if err != nil {
			return nil, err
		}
		if err := o.probePage(p); err != nil {
			return nil, err
		}
	}
}

// probePage matches one probe page, queueing the matched page and (for LEFT
// joins) the null-extended unmatched page.
func (o *vectorJoinOperator) probePage(p *block.Page) error {
	n := p.Count()
	if n == 0 {
		return nil
	}
	if cap(o.hashes) < n {
		o.hashes = make([]uint64, n)
	}
	hashes := o.hashes[:n]
	o.hasher.HashPage(p, o.node.LeftKeys, hashes)
	for i, ch := range o.node.LeftKeys {
		if err := viewOf(p.Blocks[ch], o.keyKinds[i], n, o.keyViews[i]); err != nil {
			return err
		}
	}
	isLeft := o.node.Kind == planner.JoinLeft
	var matched []bool
	if isLeft {
		if cap(o.matched) < n {
			o.matched = make([]bool, n)
		}
		matched = o.matched[:n]
		for r := range matched {
			matched[r] = false
		}
	}
	probeSel, buildRows := o.jt.Probe(o.keyViews, n, hashes, o.probeSel[:0], nil, matched)
	o.probeSel = probeSel[:0] // retain capacity for the next page
	if len(probeSel) > 0 {
		blocks := make([]block.Block, len(o.leftTypes)+len(o.rightTypes))
		for c := range o.leftTypes {
			blocks[c] = p.Blocks[c].Mask(probeSel)
		}
		for c, col := range o.cols {
			blocks[len(o.leftTypes)+c] = col.Gather(buildRows)
		}
		o.pending = append(o.pending, &block.Page{Blocks: blocks, N: len(probeSel)})
	}
	if isLeft {
		unmatched := o.extraSel[:0]
		for r := 0; r < n; r++ {
			if !matched[r] {
				unmatched = append(unmatched, r)
			}
		}
		o.extraSel = unmatched[:0]
		if len(unmatched) > 0 {
			blocks := make([]block.Block, len(o.leftTypes)+len(o.rightTypes))
			for c := range o.leftTypes {
				blocks[c] = p.Blocks[c].Mask(unmatched)
			}
			for c, t := range o.rightTypes {
				blocks[len(o.leftTypes)+c] = vector.NullBlock(t, len(unmatched))
			}
			o.pending = append(o.pending, &block.Page{Blocks: blocks, N: len(unmatched)})
		}
	}
	return nil
}

func (o *vectorJoinOperator) Close() error {
	if o.fallback != nil {
		// The fallback owns left and (via the replay wrapper) right.
		return o.fallback.Close()
	}
	o.mem.releaseAll()
	return errors.Join(o.left.Close(), o.right.Close())
}

// pageReplayOperator serves buffered pages, then streams from rest — the
// degrade path's bridge from the compacted store back to a page stream.
type pageReplayOperator struct {
	pages []*block.Page
	idx   int
	rest  Operator
}

func (o *pageReplayOperator) Next() (*block.Page, error) {
	if o.idx < len(o.pages) {
		p := o.pages[o.idx]
		o.pages[o.idx] = nil
		o.idx++
		return p, nil
	}
	return o.rest.Next()
}

func (o *pageReplayOperator) Close() error { return o.rest.Close() }
