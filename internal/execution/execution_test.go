package execution

import (
	"errors"
	"io"
	"reflect"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/planner"
	"prestolite/internal/types"
)

// pagesOperator feeds fixed pages.
type pagesOperator struct {
	pages []*block.Page
	pos   int
}

func (o *pagesOperator) Next() (*block.Page, error) {
	if o.pos >= len(o.pages) {
		return nil, io.EOF
	}
	p := o.pages[o.pos]
	o.pos++
	return p, nil
}

func (o *pagesOperator) Close() error { return nil }

func intPage(vals ...int64) *block.Page {
	return block.NewPage(block.NewInt64Block(vals))
}

func TestFilterOperator(t *testing.T) {
	child := &pagesOperator{pages: []*block.Page{intPage(1, 2, 3), intPage(4, 5)}}
	pred := expr.MustCall("gte", expr.NewVariable("v", 0, types.Bigint), expr.NewConstant(int64(3), types.Bigint))
	op := &filterOperator{child: child, predicate: pred}
	pages, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, p := range pages {
		for i := 0; i < p.Count(); i++ {
			got = append(got, p.Row(i)[0].(int64))
		}
	}
	if !reflect.DeepEqual(got, []int64{3, 4, 5}) {
		t.Fatalf("got %v", got)
	}
}

func TestLimitOperator(t *testing.T) {
	child := &pagesOperator{pages: []*block.Page{intPage(1, 2, 3), intPage(4, 5)}}
	op := &limitOperator{child: child, remaining: 4}
	pages, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range pages {
		total += p.Count()
	}
	if total != 4 {
		t.Fatalf("total = %d", total)
	}
}

func TestSortOperatorStableAndNullsLast(t *testing.T) {
	p1 := block.NewPage(
		block.FromValues(types.Bigint, int64(3), nil, int64(1)),
		block.FromValues(types.Varchar, "a", "b", "c"),
	)
	p2 := block.NewPage(
		block.FromValues(types.Bigint, int64(2)),
		block.FromValues(types.Varchar, "d"),
	)
	op := &sortOperator{
		child: &pagesOperator{pages: []*block.Page{p1, p2}},
		keys:  []planner.SortKey{{Channel: 0}},
		mem:   &opMem{op: "test"},
	}
	pages, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 {
		t.Fatalf("pages = %d", len(pages))
	}
	var keys []any
	for i := 0; i < pages[0].Count(); i++ {
		keys = append(keys, pages[0].Row(i)[0])
	}
	want := []any{int64(1), int64(2), int64(3), nil}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("keys = %v", keys)
	}
	// Sorted view materializes for the wire.
	if _, err := block.EncodePage(pages[0]); err != nil {
		t.Fatalf("encode sorted page: %v", err)
	}
}

func TestAggregateOperatorPartialFinal(t *testing.T) {
	agg := &planner.Aggregate{
		Child: &planner.Values{Cols: []planner.Column{
			{Name: "k", Type: types.Bigint}, {Name: "v", Type: types.Bigint},
		}},
		GroupBy: []int{0},
		Aggs: []planner.Aggregation{{
			FuncName: "avg", Args: []int{1}, ArgTypes: []*types.Type{types.Bigint},
			OutputName: "a",
			InterType:  types.NewRow(types.Field{Name: "sum", Type: types.Double}, types.Field{Name: "count", Type: types.Bigint}),
			FinalType:  types.Double,
		}},
		Step: planner.AggPartial,
	}
	input := block.NewPage(
		block.NewInt64Block([]int64{1, 1, 2}),
		block.NewInt64Block([]int64{10, 20, 30}),
	)
	partialOp, err := newAggregateOperator(agg, &pagesOperator{pages: []*block.Page{input}}, &opMem{op: "test"})
	if err != nil {
		t.Fatal(err)
	}
	partials, err := Drain(partialOp)
	if err != nil {
		t.Fatal(err)
	}

	finalAgg := &planner.Aggregate{
		Child:   &planner.Values{Cols: agg.Outputs()},
		GroupBy: []int{0},
		Aggs: []planner.Aggregation{{
			FuncName: "avg", Args: []int{1}, ArgTypes: []*types.Type{types.Bigint},
			OutputName: "a", InterType: agg.Aggs[0].InterType, FinalType: types.Double,
		}},
		Step: planner.AggFinal,
	}
	finalOp, err := newAggregateOperator(finalAgg, &pagesOperator{pages: partials}, &opMem{op: "test"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Drain(finalOp)
	if err != nil {
		t.Fatal(err)
	}
	got := map[any]any{}
	for _, p := range out {
		for i := 0; i < p.Count(); i++ {
			r := p.Row(i)
			got[r[0]] = r[1]
		}
	}
	if got[int64(1)] != 15.0 || got[int64(2)] != 30.0 {
		t.Fatalf("avg = %v", got)
	}
}

func TestJoinOperatorNullKeysNeverMatch(t *testing.T) {
	left := block.NewPage(block.FromValues(types.Bigint, int64(1), nil, int64(2)))
	right := block.NewPage(block.FromValues(types.Bigint, nil, int64(1)))
	join := &planner.Join{
		Kind:     planner.JoinInner,
		Left:     &planner.Values{Cols: []planner.Column{{Name: "l", Type: types.Bigint}}},
		Right:    &planner.Values{Cols: []planner.Column{{Name: "r", Type: types.Bigint}}},
		LeftKeys: []int{0}, RightKeys: []int{0},
	}
	op := newJoinOperator(join,
		&pagesOperator{pages: []*block.Page{left}},
		&pagesOperator{pages: []*block.Page{right}},
		&opMem{op: "test"})
	pages, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range pages {
		total += p.Count()
	}
	if total != 1 { // only 1=1; NULL keys match nothing
		t.Fatalf("matched rows = %d", total)
	}
}

func TestBuildRejectsRemoteSourceWithoutContext(t *testing.T) {
	_, err := Build(&planner.RemoteSource{FragmentID: 1}, &Context{Catalogs: connector.NewRegistry()})
	if err == nil {
		t.Error("RemoteSource without resolver accepted")
	}
}

func TestDrainPropagatesErrors(t *testing.T) {
	op := &errOperator{}
	if _, err := Drain(op); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("err = %v", err)
	}
}

type errOperator struct{}

func (errOperator) Next() (*block.Page, error) { return nil, errors.New("boom") }
func (errOperator) Close() error               { return nil }
