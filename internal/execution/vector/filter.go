package vector

import "cmp"

// CmpOp is a comparison operator for the selection kernels. The values
// mirror the expression registry's comparison function names.
type CmpOp uint8

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// Name returns the registry function name ("eq", "lt", ...).
func (op CmpOp) Name() string {
	switch op {
	case CmpEq:
		return "eq"
	case CmpNe:
		return "neq"
	case CmpLt:
		return "lt"
	case CmpLe:
		return "lte"
	case CmpGt:
		return "gt"
	default:
		return "gte"
	}
}

// CmpOpFor maps a registry function name onto a CmpOp.
func CmpOpFor(name string) (CmpOp, bool) {
	switch name {
	case "eq":
		return CmpEq, true
	case "neq":
		return CmpNe, true
	case "lt":
		return CmpLt, true
	case "lte":
		return CmpLe, true
	case "gt":
		return CmpGt, true
	case "gte":
		return CmpGe, true
	}
	return 0, false
}

// cmpOrd applies op to an ordered pair. For floats this is IEEE ordering
// (every comparison with NaN is false), matching the row engine's boxed
// comparison functions.
func cmpOrd[T cmp.Ordered](op CmpOp, a, b T) bool {
	switch op {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	default:
		return a >= b
	}
}

// selectFlat is the null-free tight loop: op dispatched once, then a branch
// per row.
func selectFlat[T cmp.Ordered](vals []T, n int, op CmpOp, c T, sel []int) []int {
	v := vals[:n]
	switch op {
	case CmpEq:
		for r, x := range v {
			if x == c {
				sel = append(sel, r)
			}
		}
	case CmpNe:
		for r, x := range v {
			if x != c {
				sel = append(sel, r)
			}
		}
	case CmpLt:
		for r, x := range v {
			if x < c {
				sel = append(sel, r)
			}
		}
	case CmpLe:
		for r, x := range v {
			if x <= c {
				sel = append(sel, r)
			}
		}
	case CmpGt:
		for r, x := range v {
			if x > c {
				sel = append(sel, r)
			}
		}
	default:
		for r, x := range v {
			if x >= c {
				sel = append(sel, r)
			}
		}
	}
	return sel
}

// Filter holds reusable scratch for the selection kernels (the per-distinct
// verdict vector of the dictionary path). The zero value is ready to use.
type Filter struct {
	keep []bool
}

// SelectConst appends to sel the positions in [0, n) of view v whose value
// compares op-true against the boxed constant c. Null rows never pass, and a
// nil constant selects nothing (SQL comparison semantics). ok is false when
// the constant's type does not match the view's kind — callers then fall
// back to the boxed path.
//
// Encodings cost what they contain: a run-length view is one comparison for
// the whole batch, a dictionary view is one comparison per distinct value
// plus an id-vector scan.
func (f *Filter) SelectConst(v *View, n int, op CmpOp, c any, sel []int) ([]int, bool) {
	if c == nil {
		return sel, true
	}
	switch v.Kind {
	case KindInt64:
		cv, ok := c.(int64)
		if !ok {
			return sel, false
		}
		return selectTyped(f, v, v.I64, n, op, cv, sel), true
	case KindFloat64:
		cv, ok := c.(float64)
		if !ok {
			return sel, false
		}
		return selectTyped(f, v, v.F64, n, op, cv, sel), true
	case KindString:
		cv, ok := c.(string)
		if !ok {
			return sel, false
		}
		return selectTyped(f, v, v.S, n, op, cv, sel), true
	default: // KindBool: order as false < true, like expr.CompareValues
		cv, ok := c.(bool)
		if !ok {
			return sel, false
		}
		return f.selectBoolCmp(v, n, op, cv, sel), true
	}
}

// selectTyped runs the ordered-kind selection over one view shape (a free
// function because Go methods cannot carry type parameters).
func selectTyped[T cmp.Ordered](f *Filter, v *View, vals []T, n int, op CmpOp, c T, sel []int) []int {
	switch {
	case v.Const:
		if i := v.at(0); i >= 0 && cmpOrd(op, vals[i], c) {
			for r := 0; r < n; r++ {
				sel = append(sel, r)
			}
		}
	case v.Ids != nil:
		m := v.dictLen()
		f.keep = grown(f.keep[:0], m)
		for i := 0; i < m; i++ {
			f.keep[i] = (v.Nulls == nil || !v.Nulls[i]) && cmpOrd(op, vals[i], c)
		}
		for r, id := range v.Ids[:n] {
			if id >= 0 && f.keep[id] {
				sel = append(sel, r)
			}
		}
	case v.Nulls == nil:
		sel = selectFlat(vals, n, op, c, sel)
	default:
		for r := 0; r < n; r++ {
			if i := v.at(r); i >= 0 && cmpOrd(op, vals[i], c) {
				sel = append(sel, r)
			}
		}
	}
	return sel
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// selectBoolCmp compares a boolean view against a boolean constant using
// false < true ordering.
func (f *Filter) selectBoolCmp(v *View, n int, op CmpOp, c bool, sel []int) []int {
	cv := b2i(c)
	switch {
	case v.Const:
		if i := v.at(0); i >= 0 && cmpOrd(op, b2i(v.B[i]), cv) {
			for r := 0; r < n; r++ {
				sel = append(sel, r)
			}
		}
	case v.Ids != nil:
		for r := 0; r < n; r++ {
			if i := v.at(r); i >= 0 && cmpOrd(op, b2i(v.B[i]), cv) {
				sel = append(sel, r)
			}
		}
	case v.Nulls == nil:
		for r, x := range v.B[:n] {
			if cmpOrd(op, b2i(x), cv) {
				sel = append(sel, r)
			}
		}
	default:
		for r := 0; r < n; r++ {
			if i := v.at(r); i >= 0 && cmpOrd(op, b2i(v.B[i]), cv) {
				sel = append(sel, r)
			}
		}
	}
	return sel
}

// SelectTrue appends to sel the positions in [0, n) where the boolean view
// is true and non-null (SQL WHERE semantics over an evaluated predicate).
func SelectTrue(v *View, n int, sel []int) []int {
	switch {
	case v.Const:
		if i := v.at(0); i >= 0 && v.B[i] {
			for r := 0; r < n; r++ {
				sel = append(sel, r)
			}
		}
	case v.Ids == nil && v.Nulls == nil:
		for r, x := range v.B[:n] {
			if x {
				sel = append(sel, r)
			}
		}
	default:
		for r := 0; r < n; r++ {
			if i := v.at(r); i >= 0 && v.B[i] {
				sel = append(sel, r)
			}
		}
	}
	return sel
}
