package vector

// Fuzz harnesses for the open-addressing hash tables and the
// selection-vector filter kernels. Each target decodes the fuzz input into
// batched operations, runs them through the vectorized structure, and
// checks every observable result against a straightforward reference
// (a Go map, or the boxed block.Value path). The `dampen` selector shrinks
// the stored hash space down to a handful of values, forcing the collision
// and slot-growth paths that random 64-bit hashes would almost never take.
//
// Seed corpus lives in testdata/fuzz/<Target>/; CI runs each target briefly
// (make fuzz-smoke), and `go test -fuzz=<Target> ./internal/execution/vector/`
// digs deeper locally.

import (
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/types"
)

// fuzzDampens are the stored-hash masks a fuzz input can select: production
// (all bits), pathological (every key collides), and two small spaces.
var fuzzDampens = []uint64{^uint64(0), 0, 0x7, 0x3f}

// fuzzKey is the reference identity of one decoded key: a small int64
// domain with deliberate duplicates, plus NULL (byte ≥ 0xf0).
type fuzzKey struct {
	null bool
	v    int64
}

// decodeKeys turns a chunk of fuzz bytes into a flat BIGINT block and the
// matching reference keys.
func decodeKeys(chunk []byte) (*block.Int64Block, []fuzzKey) {
	n := len(chunk)
	vals := make([]int64, n)
	var nulls []bool
	keys := make([]fuzzKey, n)
	for i, b := range chunk {
		if b >= 0xf0 {
			if nulls == nil {
				nulls = make([]bool, n)
			}
			nulls[i] = true
			keys[i] = fuzzKey{null: true}
			continue
		}
		v := int64(b%61) - 7
		vals[i] = v
		keys[i] = fuzzKey{v: v}
	}
	return &block.Int64Block{Values: vals, Nulls: nulls}, keys
}

// FuzzGroupTable drives GroupTable.Assign through random key streams —
// duplicates, NULL keys, forced hash collisions, slot growth past the
// initial 64, and Reset (the post-spill rebuild) — checking the key→id
// mapping against a map: same key, same dense id; new key, next id; stored
// keys round-trip through KeyValues.
func FuzzGroupTable(f *testing.F) {
	f.Add(uint8(0), []byte{1, 2, 3, 1, 2, 3, 0xf0})
	f.Add(uint8(1), []byte("collide-all-hashes-through-equality"))
	f.Add(uint8(2), []byte{0, 61, 122, 0xff, 0, 61, 122}) // dup values, then Reset
	f.Fuzz(func(t *testing.T, d uint8, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		gt, ok := NewGroupTable([]*types.Type{types.Bigint})
		if !ok {
			t.Fatal("bigint key rejected")
		}
		gt.dampen = fuzzDampens[int(d)%len(fuzzDampens)]
		ref := map[fuzzKey]int32{}
		var hasher Hasher
		for len(data) > 0 {
			if data[0] == 0xff { // spill boundary: drop all state, rebuild
				gt.Reset()
				ref = map[fuzzKey]int32{}
				data = data[1:]
				continue
			}
			n := min(len(data), 32)
			blk, keys := decodeKeys(data[:n])
			data = data[n:]
			var view View
			if !Of(blk, &view) {
				t.Fatal("no view over flat int64")
			}
			hashes := make([]uint64, n)
			hasher.HashPage(block.NewPage(blk), []int{0}, hashes)
			ids := make([]int32, n)
			gt.Assign([]*View{&view}, n, hashes, ids)
			for i, k := range keys {
				if want, seen := ref[k]; seen {
					if ids[i] != want {
						t.Fatalf("key %v: got id %d, want %d", k, ids[i], want)
					}
				} else {
					if int(ids[i]) != len(ref) {
						t.Fatalf("new key %v: got id %d, want next dense id %d", k, ids[i], len(ref))
					}
					ref[k] = ids[i]
				}
			}
			if gt.Len() != len(ref) {
				t.Fatalf("table has %d groups, reference %d", gt.Len(), len(ref))
			}
		}
		// Stored keys must round-trip: group g's key is the one that was
		// assigned id g.
		inv := make(map[int32]fuzzKey, len(ref))
		for k, g := range ref {
			inv[g] = k
		}
		dst := make([]any, 1)
		for g := 0; g < gt.Len(); g++ {
			gt.KeyValues(g, dst)
			k := inv[int32(g)]
			switch {
			case k.null && dst[0] != nil:
				t.Fatalf("group %d: stored %v, want NULL", g, dst[0])
			case !k.null && dst[0] != k.v:
				t.Fatalf("group %d: stored %v, want %d", g, dst[0], k.v)
			}
		}
	})
}

// FuzzJoinTable drives JoinTable.Insert/Probe through random build and
// probe streams — duplicate keys chained through next, NULL keys on both
// sides (never matching), forced collisions and slot growth — checking the
// matched pairs against a map from key to build-row set.
func FuzzJoinTable(f *testing.F) {
	f.Add(uint8(0), []byte{1, 2, 3, 1}, []byte{1, 4, 0xf0})
	f.Add(uint8(1), []byte("same-hash-different-keys"), []byte("probe-it-all"))
	f.Fuzz(func(t *testing.T, d uint8, buildData, probeData []byte) {
		if len(buildData) > 2048 {
			buildData = buildData[:2048]
		}
		if len(probeData) > 2048 {
			probeData = probeData[:2048]
		}
		col, ok := NewColumn(types.Bigint)
		if !ok {
			t.Fatal("bigint column rejected")
		}
		jt := NewJoinTable([]*Column{col})
		jt.dampen = fuzzDampens[int(d)%len(fuzzDampens)]
		ref := map[int64]map[int32]bool{}
		var hasher Hasher
		base := 0
		for len(buildData) > 0 {
			n := min(len(buildData), 32)
			blk, keys := decodeKeys(buildData[:n])
			buildData = buildData[n:]
			var view View
			Of(blk, &view)
			hashes := make([]uint64, n)
			hasher.HashPage(block.NewPage(blk), []int{0}, hashes)
			col.Append(&view, n)
			jt.Insert([]*View{&view}, n, hashes, base)
			for i, k := range keys {
				if k.null {
					continue
				}
				if ref[k.v] == nil {
					ref[k.v] = map[int32]bool{}
				}
				ref[k.v][int32(base+i)] = true
			}
			base += n
		}
		for len(probeData) > 0 {
			n := min(len(probeData), 32)
			blk, keys := decodeKeys(probeData[:n])
			probeData = probeData[n:]
			var view View
			Of(blk, &view)
			hashes := make([]uint64, n)
			hasher.HashPage(block.NewPage(blk), []int{0}, hashes)
			matched := make([]bool, n)
			probeSel, buildRows := jt.Probe([]*View{&view}, n, hashes, nil, nil, matched)
			got := make([]map[int32]bool, n)
			for i := range probeSel {
				r := probeSel[i]
				if got[r] == nil {
					got[r] = map[int32]bool{}
				}
				if got[r][buildRows[i]] {
					t.Fatalf("probe row %d matched build row %d twice", r, buildRows[i])
				}
				got[r][buildRows[i]] = true
			}
			for r, k := range keys {
				var want map[int32]bool
				if !k.null {
					want = ref[k.v]
				}
				if len(got[r]) != len(want) {
					t.Fatalf("probe row %d (key %v): %d matches, want %d", r, k, len(got[r]), len(want))
				}
				for row := range want {
					if !got[r][row] {
						t.Fatalf("probe row %d (key %v): missing build row %d", r, k, row)
					}
				}
				if matched[r] != (len(want) > 0) {
					t.Fatalf("probe row %d (key %v): matched=%v, want %v", r, k, matched[r], len(want) > 0)
				}
			}
		}
	})
}

// fuzzBoolBlock decodes shape+data into a boolean block in one of the
// physical encodings SelectTrue special-cases.
func fuzzBoolBlock(shape uint8, data []byte, n int) block.Block {
	switch shape % 4 {
	case 0: // flat, no nulls
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = data[i]&1 == 1
		}
		return &block.BoolBlock{Values: vals}
	case 1: // flat with nulls
		vals := make([]bool, n)
		nulls := make([]bool, n)
		for i := range vals {
			vals[i] = data[i]&1 == 1
			nulls[i] = data[i]&2 == 2
		}
		return &block.BoolBlock{Values: vals, Nulls: nulls}
	case 2: // dictionary over {true, false}, ids with -1 nulls
		ids := make([]int32, n)
		for i := range ids {
			if data[i]&2 == 2 {
				ids[i] = -1
			} else {
				ids[i] = int32(data[i] & 1)
			}
		}
		return &block.DictionaryBlock{
			Dictionary: &block.BoolBlock{Values: []bool{true, false}},
			Ids:        ids,
		}
	default: // run-length: all-true, all-false or all-null
		var v any
		if data[0]&2 == 0 {
			v = data[0]&1 == 1
		}
		return block.NewRunLengthBlock(block.SingleValue(types.Boolean, v), n)
	}
}

// FuzzSelectTrue checks the WHERE-clause selection kernel against the boxed
// block.Value reference over every boolean encoding: selected positions are
// exactly the rows whose value is true and non-null.
func FuzzSelectTrue(f *testing.F) {
	f.Add(uint8(0), []byte{1, 0, 1, 3, 2})
	f.Add(uint8(2), []byte{0, 1, 2, 3, 0, 1})
	f.Add(uint8(3), []byte{1})
	f.Fuzz(func(t *testing.T, shape uint8, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		n := len(data)
		blk := fuzzBoolBlock(shape, data, n)
		var view View
		if !Of(blk, &view) {
			t.Fatal("no view over boolean block")
		}
		sel := SelectTrue(&view, n, nil)
		var want []int
		for r := 0; r < n; r++ {
			if v, ok := blk.Value(r).(bool); ok && v {
				want = append(want, r)
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("selected %d rows, want %d", len(sel), len(want))
		}
		for i := range sel {
			if sel[i] != want[i] {
				t.Fatalf("position %d: selected row %d, want %d", i, sel[i], want[i])
			}
		}
	})
}

// fuzzInt64Block decodes shape+data into a BIGINT block in one of the
// encodings SelectConst special-cases (flat / dictionary / run-length, with
// and without nulls).
func fuzzInt64Block(shape uint8, data []byte, n int) block.Block {
	switch shape % 4 {
	case 0: // flat, no nulls
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(data[i]%31) - 15
		}
		return &block.Int64Block{Values: vals}
	case 1: // flat with nulls
		blk, _ := decodeKeys(data[:n])
		return blk
	case 2: // dictionary
		ids := make([]int32, n)
		for i := range ids {
			if data[i] >= 0xf0 {
				ids[i] = -1
			} else {
				ids[i] = int32(data[i] % 8)
			}
		}
		return &block.DictionaryBlock{
			Dictionary: &block.Int64Block{Values: []int64{-3, 0, 1, 2, 2, 5, 8, 13}},
			Ids:        ids,
		}
	default: // run-length
		var v any
		if data[0] < 0xf0 {
			v = int64(data[0]%31) - 15
		}
		return block.NewRunLengthBlock(block.SingleValue(types.Bigint, v), n)
	}
}

// FuzzSelectConst checks the typed comparison selection kernels against the
// boxed reference across operators, encodings, NULLs and constants: the
// selection vector holds exactly the non-null rows whose comparison with
// the constant is true.
func FuzzSelectConst(f *testing.F) {
	f.Add(uint8(0), uint8(2), int64(0), []byte{1, 5, 9, 200, 13})
	f.Add(uint8(2), uint8(0), int64(2), []byte{0, 1, 2, 3, 4, 0xf0})
	f.Add(uint8(3), uint8(5), int64(-3), []byte{7, 7})
	f.Fuzz(func(t *testing.T, shape, opByte uint8, c int64, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		n := len(data)
		blk := fuzzInt64Block(shape, data, n)
		var view View
		if !Of(blk, &view) {
			t.Fatal("no view over bigint block")
		}
		op := CmpOp(opByte % 6)
		var flt Filter
		sel, ok := flt.SelectConst(&view, n, op, c, nil)
		if !ok {
			t.Fatalf("SelectConst rejected int64 constant for kind %v", view.Kind)
		}
		var want []int
		for r := 0; r < n; r++ {
			if v, okv := blk.Value(r).(int64); okv && cmpOrd(op, v, c) {
				want = append(want, r)
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("op %s const %d: selected %d rows, want %d", op.Name(), c, len(sel), len(want))
		}
		for i := range sel {
			if sel[i] != want[i] {
				t.Fatalf("op %s const %d, position %d: row %d, want %d", op.Name(), c, i, sel[i], want[i])
			}
		}
	})
}
