package vector

import (
	"fmt"
	"strings"

	"prestolite/internal/block"
	"prestolite/internal/types"
)

// Agg is a typed batch aggregator: one flat state slice indexed by group
// id, updated a page at a time. Intermediate and final emissions build
// typed blocks straight from the state slices (no boxing), and the
// intermediate formats match the row engine's expr.AggState contract
// exactly, so vector partials merge into row finals (and vice versa) across
// local exchanges, spill runs, and the distributed partial/final split:
//
//	count            -> int64 (never null)
//	sum(bigint)      -> int64 or null
//	sum(double)      -> float64 or null
//	min/max          -> value or null
//	avg              -> row(sum double, count bigint), never null
type Agg interface {
	// Grow extends the state to cover group ids < n.
	Grow(n int)
	// AddRaw accumulates raw input rows (arg is nil for count(*)).
	AddRaw(ids []int32, arg *View, n int)
	// AddIntermediate merges an intermediate column (the FINAL step).
	AddIntermediate(ids []int32, b block.Block, n int) error
	// EmitIntermediate / EmitFinal emit groups [from, to) as a column.
	EmitIntermediate(from, to int) block.Block
	EmitFinal(from, to int) block.Block
	// IntermediateValue boxes group g's intermediate (spill encoding).
	IntermediateValue(g int) any
	// Reset drops all state (post-spill rebuild).
	Reset()
}

// NewAgg builds the typed aggregator for a function name and argument type
// (nil for count(*)); ok is false for shapes the vector path does not
// cover (DISTINCT is handled by the caller, approx_distinct and nested
// argument types fall back to the row engine).
func NewAgg(name string, argType *types.Type) (Agg, bool) {
	switch strings.ToLower(name) {
	case "count":
		if argType == nil {
			return &countAgg{star: true}, true
		}
		if _, ok := kindOf(argType); !ok {
			return nil, false
		}
		return &countAgg{}, true
	case "sum":
		switch argType.Kind {
		case types.KindBigint, types.KindInteger:
			return &sumInt64Agg{}, true
		case types.KindDouble:
			return &sumFloat64Agg{}, true
		}
		return nil, false
	case "min", "max":
		k, ok := kindOf(argType)
		if !ok {
			return nil, false
		}
		return &minMaxAgg{kind: k, typ: argType, isMax: strings.ToLower(name) == "max"}, true
	case "avg":
		switch argType.Kind {
		case types.KindBigint, types.KindInteger, types.KindDouble:
			return &avgAgg{}, true
		}
		return nil, false
	default:
		return nil, false
	}
}

// viewOrNil fills v from b, returning nil on unsupported shapes (callers
// then use the boxed fallback).
func viewOrNil(b block.Block, v *View) *View {
	if Of(b, v) {
		return v
	}
	return nil
}

// ---------------------------------------------------------------------------
// count / count(x)

type countAgg struct {
	star   bool
	counts []int64
	view   View
}

func (a *countAgg) Grow(n int) { a.counts = grown(a.counts, n) }

func (a *countAgg) AddRaw(ids []int32, arg *View, n int) {
	if a.star {
		for r := 0; r < n; r++ {
			a.counts[ids[r]]++
		}
		return
	}
	for r := 0; r < n; r++ {
		if arg.at(r) >= 0 {
			a.counts[ids[r]]++
		}
	}
}

func (a *countAgg) AddIntermediate(ids []int32, b block.Block, n int) error {
	v := viewOrNil(b, &a.view)
	if v == nil || v.Kind != KindInt64 {
		return fmt.Errorf("vector: count intermediate is %T, want int64", b)
	}
	for r := 0; r < n; r++ {
		if i := v.at(r); i >= 0 {
			a.counts[ids[r]] += v.I64[i]
		}
	}
	return nil
}

func (a *countAgg) EmitIntermediate(from, to int) block.Block {
	return &block.Int64Block{Values: a.counts[from:to]}
}
func (a *countAgg) EmitFinal(from, to int) block.Block { return a.EmitIntermediate(from, to) }
func (a *countAgg) IntermediateValue(g int) any        { return a.counts[g] }
func (a *countAgg) Reset()                             { a.counts = a.counts[:0] }

// ---------------------------------------------------------------------------
// sum(bigint)

type sumInt64Agg struct {
	sums []int64
	set  []bool
	view View
}

func (a *sumInt64Agg) Grow(n int) {
	a.sums = grown(a.sums, n)
	a.set = grown(a.set, n)
}

func (a *sumInt64Agg) AddRaw(ids []int32, arg *View, n int) {
	if arg.flat() {
		for r, x := range arg.I64[:n] {
			g := ids[r]
			a.sums[g] += x
			a.set[g] = true
		}
		return
	}
	for r := 0; r < n; r++ {
		if i := arg.at(r); i >= 0 {
			g := ids[r]
			a.sums[g] += arg.I64[i]
			a.set[g] = true
		}
	}
}

func (a *sumInt64Agg) AddIntermediate(ids []int32, b block.Block, n int) error {
	v := viewOrNil(b, &a.view)
	if v == nil || v.Kind != KindInt64 {
		return fmt.Errorf("vector: sum(bigint) intermediate is %T, want int64", b)
	}
	a.AddRaw(ids, v, n)
	return nil
}

func (a *sumInt64Agg) EmitIntermediate(from, to int) block.Block {
	return &block.Int64Block{Values: a.sums[from:to], Nulls: nullsFromSet(a.set[from:to])}
}
func (a *sumInt64Agg) EmitFinal(from, to int) block.Block { return a.EmitIntermediate(from, to) }
func (a *sumInt64Agg) IntermediateValue(g int) any {
	if !a.set[g] {
		return nil
	}
	return a.sums[g]
}
func (a *sumInt64Agg) Reset() { a.sums, a.set = a.sums[:0], a.set[:0] }

// ---------------------------------------------------------------------------
// sum(double)

type sumFloat64Agg struct {
	sums []float64
	set  []bool
	view View
}

func (a *sumFloat64Agg) Grow(n int) {
	a.sums = grown(a.sums, n)
	a.set = grown(a.set, n)
}

func (a *sumFloat64Agg) AddRaw(ids []int32, arg *View, n int) {
	if arg.flat() {
		for r, x := range arg.F64[:n] {
			g := ids[r]
			a.sums[g] += x
			a.set[g] = true
		}
		return
	}
	for r := 0; r < n; r++ {
		if i := arg.at(r); i >= 0 {
			g := ids[r]
			a.sums[g] += arg.F64[i]
			a.set[g] = true
		}
	}
}

func (a *sumFloat64Agg) AddIntermediate(ids []int32, b block.Block, n int) error {
	v := viewOrNil(b, &a.view)
	if v == nil || v.Kind != KindFloat64 {
		return fmt.Errorf("vector: sum(double) intermediate is %T, want float64", b)
	}
	a.AddRaw(ids, v, n)
	return nil
}

func (a *sumFloat64Agg) EmitIntermediate(from, to int) block.Block {
	return &block.Float64Block{Values: a.sums[from:to], Nulls: nullsFromSet(a.set[from:to])}
}
func (a *sumFloat64Agg) EmitFinal(from, to int) block.Block { return a.EmitIntermediate(from, to) }
func (a *sumFloat64Agg) IntermediateValue(g int) any {
	if !a.set[g] {
		return nil
	}
	return a.sums[g]
}
func (a *sumFloat64Agg) Reset() { a.sums, a.set = a.sums[:0], a.set[:0] }

// ---------------------------------------------------------------------------
// min / max

// minMaxAgg keeps the best value per group in a typed Column-like layout.
// Float comparisons use real float ordering (not bit order) to match
// expr.CompareValues: NaN never replaces a best value, and a NaN best is
// never replaced — exactly the row engine's behavior.
type minMaxAgg struct {
	kind  Kind
	typ   *types.Type
	isMax bool
	i64   []int64
	f64   []float64
	str   []string
	set   []bool
	view  View
}

func (a *minMaxAgg) Grow(n int) {
	switch a.kind {
	case KindFloat64:
		a.f64 = grown(a.f64, n)
	case KindString:
		a.str = grown(a.str, n)
	default: // int64, bool (0/1)
		a.i64 = grown(a.i64, n)
	}
	a.set = grown(a.set, n)
}

func (a *minMaxAgg) AddRaw(ids []int32, arg *View, n int) {
	for r := 0; r < n; r++ {
		i := arg.at(r)
		if i < 0 {
			continue
		}
		g := ids[r]
		switch a.kind {
		case KindInt64:
			x := arg.I64[i]
			if !a.set[g] || (a.isMax && x > a.i64[g]) || (!a.isMax && x < a.i64[g]) {
				a.i64[g] = x
			}
		case KindFloat64:
			x := arg.F64[i]
			if !a.set[g] || (a.isMax && x > a.f64[g]) || (!a.isMax && x < a.f64[g]) {
				a.f64[g] = x
			}
		case KindBool:
			var x int64
			if arg.B[i] {
				x = 1
			}
			if !a.set[g] || (a.isMax && x > a.i64[g]) || (!a.isMax && x < a.i64[g]) {
				a.i64[g] = x
			}
		default:
			x := arg.S[i]
			if !a.set[g] || (a.isMax && x > a.str[g]) || (!a.isMax && x < a.str[g]) {
				a.str[g] = x
			}
		}
		a.set[g] = true
	}
}

func (a *minMaxAgg) AddIntermediate(ids []int32, b block.Block, n int) error {
	v := viewOrNil(b, &a.view)
	if v == nil || v.Kind != a.kind {
		return fmt.Errorf("vector: min/max intermediate is %T, want kind %d", b, a.kind)
	}
	a.AddRaw(ids, v, n)
	return nil
}

func (a *minMaxAgg) EmitIntermediate(from, to int) block.Block {
	nulls := nullsFromSet(a.set[from:to])
	switch a.kind {
	case KindFloat64:
		return &block.Float64Block{Values: a.f64[from:to], Nulls: nulls}
	case KindString:
		return &block.VarcharBlock{Values: a.str[from:to], Nulls: nulls}
	case KindBool:
		vals := make([]bool, to-from)
		for i := range vals {
			vals[i] = a.i64[from+i] != 0
		}
		return &block.BoolBlock{Values: vals, Nulls: nulls}
	default:
		return &block.Int64Block{Values: a.i64[from:to], Nulls: nulls}
	}
}
func (a *minMaxAgg) EmitFinal(from, to int) block.Block { return a.EmitIntermediate(from, to) }

func (a *minMaxAgg) IntermediateValue(g int) any {
	if !a.set[g] {
		return nil
	}
	switch a.kind {
	case KindFloat64:
		return a.f64[g]
	case KindString:
		return a.str[g]
	case KindBool:
		return a.i64[g] != 0
	default:
		return a.i64[g]
	}
}

func (a *minMaxAgg) Reset() {
	a.i64, a.f64, a.str, a.set = a.i64[:0], a.f64[:0], a.str[:0], a.set[:0]
}

// ---------------------------------------------------------------------------
// avg

type avgAgg struct {
	sums   []float64
	counts []int64
	view   View
}

func (a *avgAgg) Grow(n int) {
	a.sums = grown(a.sums, n)
	a.counts = grown(a.counts, n)
}

func (a *avgAgg) AddRaw(ids []int32, arg *View, n int) {
	for r := 0; r < n; r++ {
		i := arg.at(r)
		if i < 0 {
			continue
		}
		g := ids[r]
		if arg.Kind == KindFloat64 {
			a.sums[g] += arg.F64[i]
		} else {
			a.sums[g] += float64(arg.I64[i])
		}
		a.counts[g]++
	}
}

// AddIntermediate merges row(sum double, count bigint) intermediates. The
// typed path reads the RowBlock fields directly; other producers (spill
// read-back through generic builders) fall back to boxed pairs.
func (a *avgAgg) AddIntermediate(ids []int32, b block.Block, n int) error {
	if rb, ok := block.Unwrap(b).(*block.RowBlock); ok && len(rb.Fields) == 2 {
		sums, sok := block.Unwrap(rb.Fields[0]).(*block.Float64Block)
		counts, cok := block.Unwrap(rb.Fields[1]).(*block.Int64Block)
		if sok && cok {
			for r := 0; r < n; r++ {
				if rb.IsNull(r) || sums.IsNull(r) || counts.IsNull(r) {
					continue
				}
				g := ids[r]
				a.sums[g] += sums.Values[r]
				a.counts[g] += counts.Values[r]
			}
			return nil
		}
	}
	for r := 0; r < n; r++ {
		v := b.Value(r)
		if v == nil {
			continue
		}
		pair, ok := v.([]any)
		if !ok || len(pair) != 2 {
			return fmt.Errorf("vector: avg intermediate is %T, want (sum, count) pair", v)
		}
		g := ids[r]
		a.sums[g] += asF64(pair[0])
		a.counts[g] += asI64(pair[1])
	}
	return nil
}

func (a *avgAgg) EmitIntermediate(from, to int) block.Block {
	return block.NewRowBlock(to-from, []block.Block{
		&block.Float64Block{Values: a.sums[from:to]},
		&block.Int64Block{Values: a.counts[from:to]},
	}, nil)
}

func (a *avgAgg) EmitFinal(from, to int) block.Block {
	vals := make([]float64, to-from)
	var nulls []bool
	for i := range vals {
		n := a.counts[from+i]
		if n == 0 {
			if nulls == nil {
				nulls = make([]bool, to-from)
			}
			nulls[i] = true
			continue
		}
		vals[i] = a.sums[from+i] / float64(n)
	}
	return &block.Float64Block{Values: vals, Nulls: nulls}
}

func (a *avgAgg) IntermediateValue(g int) any { return []any{a.sums[g], a.counts[g]} }
func (a *avgAgg) Reset()                      { a.sums, a.counts = a.sums[:0], a.counts[:0] }

// ---------------------------------------------------------------------------

// nullsFromSet inverts a set mask into a null mask, or nil when every group
// is set.
func nullsFromSet(set []bool) []bool {
	var nulls []bool
	for i, s := range set {
		if !s {
			if nulls == nil {
				nulls = make([]bool, len(set))
			}
			nulls[i] = true
		}
	}
	return nulls
}

func asF64(v any) float64 {
	switch t := v.(type) {
	case float64:
		return t
	case int64:
		return float64(t)
	}
	panic(fmt.Sprintf("vector: not numeric: %T", v))
}

func asI64(v any) int64 {
	switch t := v.(type) {
	case int64:
		return t
	case float64:
		return int64(t)
	}
	panic(fmt.Sprintf("vector: not numeric: %T", v))
}
