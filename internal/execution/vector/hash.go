package vector

import (
	"fmt"
	"math"

	"prestolite/internal/block"
)

// nullHash is the value hash of SQL NULL; any fixed constant works as long
// as both sides of a partitioned join agree on it.
const nullHash uint64 = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer — a cheap full-avalanche bijection that
// turns raw 64-bit values into well-distributed hashes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// combine folds the next column's value hash into a row's running hash.
func combine(h, v uint64) uint64 {
	return mix64(h ^ (v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)))
}

// hashString is inline FNV-1a over the bytes followed by an avalanche —
// hash/fnv would allocate a hasher per value on this hot path.
func hashString(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

func hashBool(b bool) uint64 {
	if b {
		return mix64(1)
	}
	return mix64(0)
}

// Hasher computes per-row hash vectors over key columns. All paths hash the
// VALUE, never the encoding: an int64 hashes the same whether it arrived
// flat, dictionary-encoded, run-length-encoded, or boxed through the
// fallback — that invariant is what keeps partition routing consistent
// across pages and across both sides of a join, and what lets the group
// table compare pre-hashed keys from differently encoded pages. Floats hash
// (and compare) by bit pattern, matching the row engine's encoded group
// keys, so NaN groups with NaN and -0.0 stays distinct from +0.0.
//
// The zero Hasher is ready to use; it holds reusable scratch (dictionary
// hash vectors, a byte buffer for rare compound values) so hashing a page
// allocates nothing in steady state.
type Hasher struct {
	view View
	dict []uint64
	buf  []byte
}

// HashPage resets out[:n] and combines the value hashes of the key channels
// of p into it.
func (h *Hasher) HashPage(p *block.Page, keys []int, out []uint64) {
	n := p.Count()
	for r := 0; r < n; r++ {
		out[r] = 0
	}
	for _, ch := range keys {
		h.HashBlock(p.Blocks[ch], n, out)
	}
}

// HashBlock combines the value hashes of column b into out[:n].
func (h *Hasher) HashBlock(b block.Block, n int, out []uint64) {
	v := &h.view
	if !Of(b, v) {
		// Boxed fallback for shapes outside the typed kernels (nested
		// types). Values hash by their boxed scalar identity, consistent
		// with the typed paths below.
		for r := 0; r < n; r++ {
			out[r] = combine(out[r], h.hashValue(b.Value(r)))
		}
		return
	}
	switch {
	case v.Const:
		var hv uint64
		if i := v.at(0); i < 0 {
			hv = nullHash
		} else {
			hv = v.hashAt(i)
		}
		for r := 0; r < n; r++ {
			out[r] = combine(out[r], hv)
		}
	case v.Ids != nil:
		// Hash each distinct dictionary value once, then map rows through
		// the id vector.
		m := v.dictLen()
		h.dict = grown(h.dict[:0], m)
		for i := 0; i < m; i++ {
			if v.Nulls != nil && v.Nulls[i] {
				h.dict[i] = nullHash
			} else {
				h.dict[i] = v.hashAt(i)
			}
		}
		for r := 0; r < n; r++ {
			hv := nullHash
			if id := v.Ids[r]; id >= 0 {
				hv = h.dict[id]
			}
			out[r] = combine(out[r], hv)
		}
	case v.Nulls == nil:
		switch v.Kind {
		case KindInt64:
			for r, x := range v.I64[:n] {
				out[r] = combine(out[r], mix64(uint64(x)))
			}
		case KindFloat64:
			for r, x := range v.F64[:n] {
				out[r] = combine(out[r], mix64(math.Float64bits(x)))
			}
		case KindBool:
			for r, x := range v.B[:n] {
				out[r] = combine(out[r], hashBool(x))
			}
		case KindString:
			for r, x := range v.S[:n] {
				out[r] = combine(out[r], hashString(x))
			}
		}
	default:
		for r := 0; r < n; r++ {
			hv := nullHash
			if i := v.at(r); i >= 0 {
				hv = v.hashAt(i)
			}
			out[r] = combine(out[r], hv)
		}
	}
}

// dictLen is the number of distinct storage values behind a dictionary view.
func (v *View) dictLen() int {
	switch v.Kind {
	case KindInt64:
		return len(v.I64)
	case KindFloat64:
		return len(v.F64)
	case KindBool:
		return len(v.B)
	default:
		return len(v.S)
	}
}

// hashAt hashes the (non-null) value at storage index i.
func (v *View) hashAt(i int) uint64 {
	switch v.Kind {
	case KindInt64:
		return mix64(uint64(v.I64[i]))
	case KindFloat64:
		return mix64(math.Float64bits(v.F64[i]))
	case KindBool:
		return hashBool(v.B[i])
	default:
		return hashString(v.S[i])
	}
}

// hashValue hashes one boxed value, consistently with the typed paths.
func (h *Hasher) hashValue(val any) uint64 {
	switch t := val.(type) {
	case nil:
		return nullHash
	case int64:
		return mix64(uint64(t))
	case float64:
		return mix64(math.Float64bits(t))
	case bool:
		return hashBool(t)
	case string:
		return hashString(t)
	default:
		// Compound values (arrays, maps, rows) as keys are rare; a
		// deterministic rendered form keeps equal values hashing equal.
		//lint:ignore hotalloc compound-typed keys never take the typed kernels; scalar kinds are handled above and this branch is per distinct compound value
		h.buf = fmt.Appendf(h.buf[:0], "%T\x00%v", val, val)
		const offset64, prime64 = 14695981039346656037, 1099511628211
		fh := uint64(offset64)
		for _, c := range h.buf {
			fh ^= uint64(c)
			fh *= prime64
		}
		return mix64(fh)
	}
}

// grown extends s to length n, reusing capacity when possible.
func grown[T any](s []T, n int) []T {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		// The region beyond the old length may hold stale state from before
		// a Reset (truncation keeps the backing array) — new groups must
		// start from the zero value.
		ns := s[:n]
		clear(ns[len(s):])
		return ns
	}
	ns := make([]T, n, max(n, 2*cap(s)))
	copy(ns, s)
	return ns
}
