package vector

import (
	"math"

	"prestolite/internal/block"
	"prestolite/internal/types"
)

// Column is an appendable typed column store: the group table stores its
// key columns in them and the vector join compacts its whole build side
// into them, so probing and emission touch flat slices instead of chasing
// per-row page references. Floats are stored as their bit patterns
// (math.Float64bits) so equality and hashing agree with the row engine's
// encoded group keys (NaN == NaN, +0.0 != -0.0).
type Column struct {
	typ      *types.Type
	kind     Kind
	i64      []int64 // KindInt64, KindFloat64 (bits), KindBool (0/1)
	str      []string
	nulls    []bool
	hasNulls bool
	bytes    int64 // retained-byte estimate, string payloads included
}

// NewColumn builds an empty store for type t; ok is false for unsupported
// (nested) types.
func NewColumn(t *types.Type) (*Column, bool) {
	k, ok := kindOf(t)
	if !ok {
		return nil, false
	}
	return &Column{typ: t, kind: k}, true
}

// Len is the number of stored rows.
func (c *Column) Len() int {
	if c.kind == KindString {
		return len(c.str)
	}
	return len(c.i64)
}

// Bytes is the retained-byte estimate (used for memory accounting).
func (c *Column) Bytes() int64 { return c.bytes }

// appendNull stores a null row.
func (c *Column) appendNull() {
	if c.kind == KindString {
		c.str = append(c.str, "")
	} else {
		c.i64 = append(c.i64, 0)
	}
	c.nulls = append(c.nulls, true)
	c.hasNulls = true
	c.bytes += 9
}

// AppendRow stores row r of view v.
func (c *Column) AppendRow(v *View, r int) {
	i := v.at(r)
	if i < 0 {
		c.appendNull()
		return
	}
	switch c.kind {
	case KindInt64:
		c.i64 = append(c.i64, v.I64[i])
	case KindFloat64:
		c.i64 = append(c.i64, int64(math.Float64bits(v.F64[i])))
	case KindBool:
		var x int64
		if v.B[i] {
			x = 1
		}
		c.i64 = append(c.i64, x)
	default:
		s := v.S[i]
		c.str = append(c.str, s)
		c.bytes += int64(len(s))
	}
	c.nulls = append(c.nulls, false)
	c.bytes += 9
}

// Append stores all n rows of view v.
func (c *Column) Append(v *View, n int) {
	// The flat typed shapes bulk-append; everything else goes row-wise.
	if v.flat() {
		switch c.kind {
		case KindInt64:
			c.i64 = append(c.i64, v.I64[:n]...)
		case KindFloat64:
			for _, x := range v.F64[:n] {
				c.i64 = append(c.i64, int64(math.Float64bits(x)))
			}
		case KindBool:
			for _, x := range v.B[:n] {
				var b int64
				if x {
					b = 1
				}
				c.i64 = append(c.i64, b)
			}
		default:
			for _, s := range v.S[:n] {
				c.str = append(c.str, s)
				c.bytes += int64(len(s))
			}
		}
		c.nulls = append(c.nulls, make([]bool, n)...)
		c.bytes += int64(9 * n)
		return
	}
	for r := 0; r < n; r++ {
		c.AppendRow(v, r)
	}
}

// equalRow reports whether stored row i equals row r of view v, with nulls
// comparing equal to nulls (group-key semantics; join probes never reach
// here with null keys).
func (c *Column) equalRow(i int, v *View, r int) bool {
	j := v.at(r)
	if c.nulls[i] {
		return j < 0
	}
	if j < 0 {
		return false
	}
	switch c.kind {
	case KindInt64:
		return c.i64[i] == v.I64[j]
	case KindFloat64:
		return uint64(c.i64[i]) == math.Float64bits(v.F64[j])
	case KindBool:
		return (c.i64[i] != 0) == v.B[j]
	default:
		return c.str[i] == v.S[j]
	}
}

// hashRow hashes stored row i, consistently with Hasher's value hashing.
func (c *Column) hashRow(i int) uint64 {
	if c.nulls[i] {
		return nullHash
	}
	switch c.kind {
	case KindString:
		return hashString(c.str[i])
	case KindBool:
		return hashBool(c.i64[i] != 0)
	default:
		// Int64 stores raw values, Float64 stores bits: both hash mix64.
		return mix64(uint64(c.i64[i]))
	}
}

// ValueAt boxes stored row i (cold paths: spill encoding, debugging).
func (c *Column) ValueAt(i int) any {
	if c.nulls[i] {
		return nil
	}
	switch c.kind {
	case KindInt64:
		return c.i64[i]
	case KindFloat64:
		return math.Float64frombits(uint64(c.i64[i]))
	case KindBool:
		return c.i64[i] != 0
	default:
		return c.str[i]
	}
}

// nullsFor returns the null mask for [from, to), or nil when clean.
func (c *Column) nullsFor(from, to int) []bool {
	if !c.hasNulls {
		return nil
	}
	return c.nulls[from:to]
}

// Block emits rows [from, to) as a block sharing storage where the
// representation allows it.
func (c *Column) Block(from, to int) block.Block {
	switch c.kind {
	case KindInt64:
		return &block.Int64Block{Values: c.i64[from:to], Nulls: c.nullsFor(from, to)}
	case KindFloat64:
		vals := make([]float64, to-from)
		for i := range vals {
			vals[i] = math.Float64frombits(uint64(c.i64[from+i]))
		}
		return &block.Float64Block{Values: vals, Nulls: c.nullsFor(from, to)}
	case KindBool:
		vals := make([]bool, to-from)
		for i := range vals {
			vals[i] = c.i64[from+i] != 0
		}
		return &block.BoolBlock{Values: vals, Nulls: c.nullsFor(from, to)}
	default:
		return &block.VarcharBlock{Values: c.str[from:to], Nulls: c.nullsFor(from, to)}
	}
}

// Gather emits the given stored rows, in order, as a block (the join output
// path: build-side rows matched by a probe batch).
func (c *Column) Gather(rows []int32) block.Block {
	var nulls []bool
	if c.hasNulls {
		nulls = make([]bool, len(rows))
		for out, r := range rows {
			nulls[out] = c.nulls[r]
		}
	}
	switch c.kind {
	case KindInt64:
		vals := make([]int64, len(rows))
		for out, r := range rows {
			vals[out] = c.i64[r]
		}
		return &block.Int64Block{Values: vals, Nulls: nulls}
	case KindFloat64:
		vals := make([]float64, len(rows))
		for out, r := range rows {
			vals[out] = math.Float64frombits(uint64(c.i64[r]))
		}
		return &block.Float64Block{Values: vals, Nulls: nulls}
	case KindBool:
		vals := make([]bool, len(rows))
		for out, r := range rows {
			vals[out] = c.i64[r] != 0
		}
		return &block.BoolBlock{Values: vals, Nulls: nulls}
	default:
		vals := make([]string, len(rows))
		for out, r := range rows {
			vals[out] = c.str[r]
		}
		return &block.VarcharBlock{Values: vals, Nulls: nulls}
	}
}

// NullBlock builds an all-null block of n rows for type t (LEFT-join null
// extension). Only supported scalar types reach it.
func NullBlock(t *types.Type, n int) block.Block {
	k, _ := kindOf(t)
	nulls := make([]bool, n)
	for i := range nulls {
		nulls[i] = true
	}
	switch k {
	case KindFloat64:
		return &block.Float64Block{Values: make([]float64, n), Nulls: nulls}
	case KindBool:
		return &block.BoolBlock{Values: make([]bool, n), Nulls: nulls}
	case KindString:
		return &block.VarcharBlock{Values: make([]string, n), Nulls: nulls}
	default:
		return &block.Int64Block{Values: make([]int64, n), Nulls: nulls}
	}
}
