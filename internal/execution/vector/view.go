// Package vector implements the batch-at-a-time kernel layer of the
// execution engine: typed views over the block encodings, value-based batch
// hashing, flat open-addressing hash tables keyed on pre-hashed column
// vectors, selection-vector filter kernels, and typed batch aggregators.
//
// The row-at-a-time operators in internal/execution pay one interface
// dispatch (Block.Value) plus one boxed key encoding per row per column;
// this package replaces those inner loops with typed slice traversals that
// dispatch once per block. Dictionary and run-length encodings are first
// class: a kernel touches each distinct dictionary value once and maps the
// result through the id vector, and an RLE block costs one evaluation for
// the whole batch.
//
// Everything here is deliberately dependency-light (block and types only):
// the execution operators, the expression evaluator, and the local exchange
// all layer on top of it.
package vector

import (
	"prestolite/internal/block"
	"prestolite/internal/types"
)

// Kind is the storage kind of a View or Column. Every SQL scalar maps onto
// one of four physical representations.
type Kind uint8

const (
	// KindInt64 backs BIGINT, INTEGER and DATE.
	KindInt64 Kind = iota
	// KindFloat64 backs DOUBLE.
	KindFloat64
	// KindBool backs BOOLEAN.
	KindBool
	// KindString backs VARCHAR.
	KindString
)

// kindOf maps a SQL type to its storage kind; ok is false for nested and
// unknown types (those stay on the row-at-a-time reference path).
func kindOf(t *types.Type) (Kind, bool) {
	if t == nil {
		return 0, false
	}
	switch t.Kind {
	case types.KindBigint, types.KindInteger, types.KindDate:
		return KindInt64, true
	case types.KindDouble:
		return KindFloat64, true
	case types.KindBoolean:
		return KindBool, true
	case types.KindVarchar:
		return KindString, true
	default:
		return 0, false
	}
}

// Supported reports whether columns of type t can flow through the vector
// kernels (hash tables, aggregators, join stores).
func Supported(t *types.Type) bool {
	_, ok := kindOf(t)
	return ok
}

// KindOf exposes the type→kind mapping to the operators layer.
func KindOf(t *types.Type) (Kind, bool) { return kindOf(t) }

// View is a typed, allocation-free window onto one block. Exactly one of
// the value slices (I64/F64/B/S) is populated, according to Kind. Row r of
// the view reads storage index at(r):
//
//   - flat blocks: storage index == r;
//   - dictionary blocks: Ids[r] indirects into the (usually small) value
//     slices, -1 marking null — kernels can evaluate per distinct value and
//     map through Ids;
//   - run-length blocks: Const is set and every row reads index 0.
//
// Nulls (when non-nil) is indexed by storage position, like the value
// slices.
type View struct {
	Kind  Kind
	N     int
	I64   []int64
	F64   []float64
	B     []bool
	S     []string
	Nulls []bool
	Ids   []int32
	Const bool
}

// Of fills v with a typed view of b, forcing lazy blocks. It reports false
// for shapes the kernels do not understand (nested types, nested
// encodings); callers then take the boxed Value fallback.
func Of(b block.Block, v *View) bool {
	b = block.Unwrap(b)
	switch t := b.(type) {
	case *block.Int64Block:
		*v = View{Kind: KindInt64, N: len(t.Values), I64: t.Values, Nulls: t.Nulls}
	case *block.Float64Block:
		*v = View{Kind: KindFloat64, N: len(t.Values), F64: t.Values, Nulls: t.Nulls}
	case *block.BoolBlock:
		*v = View{Kind: KindBool, N: len(t.Values), B: t.Values, Nulls: t.Nulls}
	case *block.VarcharBlock:
		*v = View{Kind: KindString, N: len(t.Values), S: t.Values, Nulls: t.Nulls}
	case *block.DictionaryBlock:
		if !Of(t.Dictionary, v) || v.Ids != nil || v.Const {
			return false // nested encodings stay on the reference path
		}
		v.Ids = t.Ids
		v.N = len(t.Ids)
	case *block.RunLengthBlock:
		if !Of(t.Single, v) {
			return false
		}
		v.Const = true
		v.N = t.N
	default:
		return false
	}
	return true
}

// at returns the storage index backing row r, or -1 when the row is null.
// It is the generic accessor; hot kernels special-case the flat-no-null
// shape before falling back to it.
func (v *View) at(r int) int {
	if v.Const {
		r = 0
	}
	if v.Ids != nil {
		i := v.Ids[r]
		if i < 0 || (v.Nulls != nil && v.Nulls[i]) {
			return -1
		}
		return int(i)
	}
	if v.Nulls != nil && v.Nulls[r] {
		return -1
	}
	return r
}

// flat reports whether the view is a plain null-free slice — the shape the
// specialized inner loops handle without per-row branching.
func (v *View) flat() bool { return v.Ids == nil && !v.Const && v.Nulls == nil }

// Materialize fills v with a flat typed copy of b's first n rows through the
// boxed Value path — the slow lane for encodings Of rejects (e.g. nested
// dictionaries). It allocates per call; callers reach it only off the hot
// path. ok is false when a boxed value does not match the storage kind.
func Materialize(b block.Block, k Kind, n int, v *View) bool {
	*v = View{Kind: k, N: n}
	var nulls []bool
	setNull := func(r int) {
		if nulls == nil {
			nulls = make([]bool, n)
		}
		nulls[r] = true
	}
	switch k {
	case KindInt64:
		v.I64 = make([]int64, n)
		for r := 0; r < n; r++ {
			switch t := b.Value(r).(type) {
			case nil:
				setNull(r)
			case int64:
				v.I64[r] = t
			default:
				return false
			}
		}
	case KindFloat64:
		v.F64 = make([]float64, n)
		for r := 0; r < n; r++ {
			switch t := b.Value(r).(type) {
			case nil:
				setNull(r)
			case float64:
				v.F64[r] = t
			default:
				return false
			}
		}
	case KindBool:
		v.B = make([]bool, n)
		for r := 0; r < n; r++ {
			switch t := b.Value(r).(type) {
			case nil:
				setNull(r)
			case bool:
				v.B[r] = t
			default:
				return false
			}
		}
	default:
		v.S = make([]string, n)
		for r := 0; r < n; r++ {
			switch t := b.Value(r).(type) {
			case nil:
				setNull(r)
			case string:
				v.S[r] = t
			default:
				return false
			}
		}
	}
	v.Nulls = nulls
	return true
}
