package vector

import (
	"prestolite/internal/block"
	"prestolite/internal/types"
)

// initialSlots is the starting slot-array size (power of two).
const initialSlots = 64

// GroupTable is a flat open-addressing (linear probe) hash table mapping
// group keys to dense group ids 0..Len()-1. Keys live in typed Column
// stores and rows arrive pre-hashed, so assigning a batch of rows does no
// per-row interface dispatch and no per-row key encoding — the two costs
// that dominate the row-at-a-time aggregation path.
type GroupTable struct {
	cols   []*Column
	hashes []uint64 // per group
	slots  []int32  // group id, or -1 when empty
	mask   uint64
	// dampen masks stored hashes; ^0 in production. The fuzz harness
	// shrinks it to force hash collisions through the equality path.
	dampen uint64
}

// NewGroupTable builds a table keyed by the given column types; ok is false
// when any key type is outside the vector kernels.
func NewGroupTable(keyTypes []*types.Type) (*GroupTable, bool) {
	t := &GroupTable{dampen: ^uint64(0)}
	for _, kt := range keyTypes {
		c, ok := NewColumn(kt)
		if !ok {
			return nil, false
		}
		t.cols = append(t.cols, c)
	}
	t.slots = newSlots(initialSlots)
	t.mask = initialSlots - 1
	return t, true
}

func newSlots(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// Len is the number of distinct groups.
func (t *GroupTable) Len() int { return len(t.hashes) }

// Bytes estimates retained memory: key stores plus hash/slot arrays.
func (t *GroupTable) Bytes() int64 {
	n := int64(8*len(t.hashes) + 4*len(t.slots))
	for _, c := range t.cols {
		n += c.Bytes()
	}
	return n
}

// KeyBytes is the retained size of the key stores alone.
func (t *GroupTable) KeyBytes() int64 {
	var n int64
	for _, c := range t.cols {
		n += c.Bytes()
	}
	return n
}

// Assign maps each of the n pre-hashed rows (key columns in views) to its
// group id, creating groups for unseen keys. ids[:n] receives the mapping.
func (t *GroupTable) Assign(views []*View, n int, hashes []uint64, ids []int32) {
	for r := 0; r < n; r++ {
		h := hashes[r] & t.dampen
		slot := h & t.mask
		for {
			g := t.slots[slot]
			if g < 0 {
				g = int32(len(t.hashes))
				t.hashes = append(t.hashes, h)
				for c, col := range t.cols {
					col.AppendRow(views[c], r)
				}
				t.slots[slot] = g
				ids[r] = g
				if 4*len(t.hashes) >= 3*len(t.slots) {
					t.growSlots()
				}
				break
			}
			if t.hashes[g] == h && t.equal(int(g), views, r) {
				ids[r] = g
				break
			}
			slot = (slot + 1) & t.mask
		}
	}
}

// equal compares group g's stored key against row r of the key views.
func (t *GroupTable) equal(g int, views []*View, r int) bool {
	for c, col := range t.cols {
		if !col.equalRow(g, views[c], r) {
			return false
		}
	}
	return true
}

// growSlots doubles the slot array and reinserts by stored hash (groups are
// distinct by construction, so no equality checks are needed).
func (t *GroupTable) growSlots() {
	slots := newSlots(2 * len(t.slots))
	mask := uint64(len(slots) - 1)
	for g, h := range t.hashes {
		slot := h & mask
		for slots[slot] >= 0 {
			slot = (slot + 1) & mask
		}
		slots[slot] = int32(g)
	}
	t.slots, t.mask = slots, mask
}

// KeyBlock emits key column c for groups [from, to).
func (t *GroupTable) KeyBlock(c, from, to int) block.Block { return t.cols[c].Block(from, to) }

// KeyValues boxes group g's key into dst (cold paths: spill encoding).
func (t *GroupTable) KeyValues(g int, dst []any) {
	for c, col := range t.cols {
		dst[c] = col.ValueAt(g)
	}
}

// Reset empties the table, retaining allocations where cheap (post-spill
// rebuild).
func (t *GroupTable) Reset() {
	for i, c := range t.cols {
		nc, _ := NewColumn(c.typ)
		t.cols[i] = nc
	}
	t.hashes = t.hashes[:0]
	t.slots = newSlots(initialSlots)
	t.mask = initialSlots - 1
}

// ---------------------------------------------------------------------------

// JoinTable maps join keys to chains of build-side row indices. The build
// rows themselves live in the caller's Column stores; the table keeps one
// entry per distinct key (hash + first row) and threads equal-keyed rows
// through next, so probing walks an int32 chain instead of a []*rowRef.
type JoinTable struct {
	keyCols []*Column // the caller's key-column stores (shared, not owned)
	hashes  []uint64  // per entry
	head    []int32   // per entry: most recently inserted row of the chain
	next    []int32   // per build row: next row with the same key, or -1
	slots   []int32   // entry index, or -1
	mask    uint64
	dampen  uint64
}

// NewJoinTable builds a table over the given key-column stores (the build
// side's key channels, shared with its output store).
func NewJoinTable(keyCols []*Column) *JoinTable {
	return &JoinTable{
		keyCols: keyCols,
		slots:   newSlots(initialSlots),
		mask:    initialSlots - 1,
		dampen:  ^uint64(0),
	}
}

// Bytes estimates the table's own retained memory (the key-column stores
// are accounted by their owner).
func (jt *JoinTable) Bytes() int64 {
	return int64(8*len(jt.hashes) + 4*len(jt.head) + 4*len(jt.next) + 4*len(jt.slots))
}

// Insert indexes rows [base, base+n) of the build store, whose key columns
// were just appended from views with the given hashes. Rows with any null
// key are skipped — NULL never matches in an equi-join.
func (jt *JoinTable) Insert(views []*View, n int, hashes []uint64, base int) {
	jt.next = grown(jt.next, base+n)
	for r := 0; r < n; r++ {
		row := int32(base + r)
		jt.next[row] = -1
		if nullKey(views, r) {
			continue
		}
		h := hashes[r] & jt.dampen
		slot := h & jt.mask
		for {
			e := jt.slots[slot]
			if e < 0 {
				e = int32(len(jt.hashes))
				jt.hashes = append(jt.hashes, h)
				jt.head = append(jt.head, row)
				jt.slots[slot] = e
				if 4*len(jt.hashes) >= 3*len(jt.slots) {
					jt.growSlots()
				}
				break
			}
			if jt.hashes[e] == h && jt.equalEntry(int(e), views, r) {
				jt.next[row] = jt.head[e]
				jt.head[e] = row
				break
			}
			slot = (slot + 1) & jt.mask
		}
	}
}

// equalEntry compares entry e's key (read from its first chained row in the
// shared stores) against probe/build row r of views.
func (jt *JoinTable) equalEntry(e int, views []*View, r int) bool {
	row := int(jt.head[e])
	for c, col := range jt.keyCols {
		if !col.equalRow(row, views[c], r) {
			return false
		}
	}
	return true
}

func (jt *JoinTable) growSlots() {
	slots := newSlots(2 * len(jt.slots))
	mask := uint64(len(slots) - 1)
	for e, h := range jt.hashes {
		slot := h & mask
		for slots[slot] >= 0 {
			slot = (slot + 1) & mask
		}
		slots[slot] = int32(e)
	}
	jt.slots, jt.mask = slots, mask
}

// nullKey reports whether row r has a null in any key view.
func nullKey(views []*View, r int) bool {
	for _, v := range views {
		if v.at(r) < 0 {
			return true
		}
	}
	return false
}

// Probe matches n pre-hashed probe rows (key columns in views) against the
// table, appending one (probe row, build row) pair per match to probeSel
// and buildRows. matched (when non-nil, length ≥ n) records probe rows with
// at least one match — the LEFT-join null-extension input. Probe rows with
// null keys never match.
func (jt *JoinTable) Probe(views []*View, n int, hashes []uint64, probeSel []int, buildRows []int32, matched []bool) ([]int, []int32) {
	for r := 0; r < n; r++ {
		if nullKey(views, r) {
			continue
		}
		h := hashes[r] & jt.dampen
		slot := h & jt.mask
		for {
			e := jt.slots[slot]
			if e < 0 {
				break
			}
			if jt.hashes[e] == h && jt.equalEntry(int(e), views, r) {
				for row := jt.head[e]; row >= 0; row = jt.next[row] {
					probeSel = append(probeSel, r)
					buildRows = append(buildRows, row)
				}
				if matched != nil {
					matched[r] = true
				}
				break
			}
			slot = (slot + 1) & jt.mask
		}
	}
	return probeSel, buildRows
}
