package vector

import (
	"math"
	"math/rand"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/types"
)

// encodeInt64 wraps the same logical int64 column in each encoding the view
// layer understands.
func encodeInt64(vals []int64, nulls []bool) []block.Block {
	n := len(vals)
	flat := &block.Int64Block{Values: vals, Nulls: nulls}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	dict := &block.DictionaryBlock{Dictionary: &block.Int64Block{Values: vals, Nulls: nulls}, Ids: ids}
	lazy := block.NewLazyBlock(n, func() block.Block { return flat })
	return []block.Block{flat, dict, lazy}
}

func TestHashEncodingIndependent(t *testing.T) {
	vals := []int64{3, -1, 3, 0, 42, math.MaxInt64}
	nulls := []bool{false, true, false, false, false, false}
	n := len(vals)
	var want []uint64
	for _, b := range encodeInt64(vals, nulls) {
		var h Hasher
		out := make([]uint64, n)
		h.HashPage(&block.Page{Blocks: []block.Block{b}, N: n}, []int{0}, out)
		if want == nil {
			want = out
			continue
		}
		for r := range out {
			if out[r] != want[r] {
				t.Fatalf("encoding %T row %d: hash %x != flat %x", b, r, out[r], want[r])
			}
		}
	}
	// The boxed fallback must agree with the typed paths too.
	var h Hasher
	for r := 0; r < n; r++ {
		var v any
		if !nulls[r] {
			v = vals[r]
		}
		if got := combine(0, h.hashValue(v)); got != want[r] {
			t.Fatalf("boxed row %d: hash %x != typed %x", r, got, want[r])
		}
	}
}

func TestHashRLEAndFloatBits(t *testing.T) {
	var h Hasher
	n := 4
	rle := block.NewRunLengthBlock(&block.Float64Block{Values: []float64{2.5}}, n)
	flat := &block.Float64Block{Values: []float64{2.5, 2.5, 2.5, 2.5}}
	a, b := make([]uint64, n), make([]uint64, n)
	h.HashBlock(rle, n, a)
	h.HashBlock(flat, n, b)
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("RLE row %d hash %x != flat %x", r, a[r], b[r])
		}
	}
	// NaN hashes equal to NaN; +0 and -0 stay distinct (bit-pattern keys).
	nan1, nan2 := h.hashValue(math.NaN()), h.hashValue(math.NaN())
	if nan1 != nan2 {
		t.Fatalf("NaN hash unstable: %x vs %x", nan1, nan2)
	}
	if h.hashValue(0.0) == h.hashValue(math.Copysign(0, -1)) {
		t.Fatal("+0.0 and -0.0 should hash differently (bit-pattern keys)")
	}
}

func TestGroupTableVsMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gt, ok := NewGroupTable([]*types.Type{types.Bigint, types.Varchar})
	if !ok {
		t.Fatal("NewGroupTable failed")
	}
	gt.dampen = 0xf // force collisions through the equality path
	ref := map[[2]any]int32{}
	var h Hasher
	strs := []string{"a", "bb", "ccc", ""}
	for page := 0; page < 20; page++ {
		n := 1 + rng.Intn(200)
		iv := make([]int64, n)
		inulls := make([]bool, n)
		sv := make([]string, n)
		snulls := make([]bool, n)
		for r := 0; r < n; r++ {
			iv[r] = int64(rng.Intn(7))
			inulls[r] = rng.Intn(5) == 0
			sv[r] = strs[rng.Intn(len(strs))]
			snulls[r] = rng.Intn(7) == 0
		}
		p := &block.Page{Blocks: []block.Block{
			&block.Int64Block{Values: iv, Nulls: inulls},
			&block.VarcharBlock{Values: sv, Nulls: snulls},
		}, N: n}
		hashes := make([]uint64, n)
		h.HashPage(p, []int{0, 1}, hashes)
		views := make([]*View, 2)
		for c := range views {
			views[c] = &View{}
			if !Of(p.Blocks[c], views[c]) {
				t.Fatal("Of failed on flat block")
			}
		}
		ids := make([]int32, n)
		gt.Assign(views, n, hashes, ids)
		for r := 0; r < n; r++ {
			var key [2]any
			if !inulls[r] {
				key[0] = iv[r]
			}
			if !snulls[r] {
				key[1] = sv[r]
			}
			want, seen := ref[key]
			if !seen {
				want = int32(len(ref))
				ref[key] = want
			}
			if ids[r] != want {
				t.Fatalf("page %d row %d key %v: id %d, want %d", page, r, key, ids[r], want)
			}
		}
	}
	if gt.Len() != len(ref) {
		t.Fatalf("table has %d groups, reference %d", gt.Len(), len(ref))
	}
	// Key emission round-trips the stored values.
	for key, id := range ref {
		dst := make([]any, 2)
		gt.KeyValues(int(id), dst)
		if dst[0] != key[0] || dst[1] != key[1] {
			t.Fatalf("group %d: KeyValues %v, want %v", id, dst, key)
		}
	}
}

func TestJoinTableVsNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store, _ := NewColumn(types.Bigint)
	jt := NewJoinTable([]*Column{store})
	jt.dampen = 0x7
	var h Hasher
	var buildVals []any // nil = NULL
	for page := 0; page < 5; page++ {
		n := 1 + rng.Intn(60)
		vals := make([]int64, n)
		nulls := make([]bool, n)
		for r := 0; r < n; r++ {
			vals[r] = int64(rng.Intn(9))
			nulls[r] = rng.Intn(6) == 0
			if nulls[r] {
				buildVals = append(buildVals, nil)
			} else {
				buildVals = append(buildVals, vals[r])
			}
		}
		b := &block.Int64Block{Values: vals, Nulls: nulls}
		v := &View{}
		Of(b, v)
		hashes := make([]uint64, n)
		h.HashBlock(b, n, hashes)
		base := store.Len()
		store.Append(v, n)
		jt.Insert([]*View{v}, n, hashes, base)
	}

	pn := 40
	pv := make([]int64, pn)
	pnulls := make([]bool, pn)
	for r := 0; r < pn; r++ {
		pv[r] = int64(rng.Intn(12))
		pnulls[r] = rng.Intn(6) == 0
	}
	pb := &block.Int64Block{Values: pv, Nulls: pnulls}
	v := &View{}
	Of(pb, v)
	hashes := make([]uint64, pn)
	h.HashBlock(pb, pn, hashes)
	matched := make([]bool, pn)
	probeSel, buildRows := jt.Probe([]*View{v}, pn, hashes, nil, nil, matched)

	got := map[[2]int]bool{}
	for i, r := range probeSel {
		got[[2]int{r, int(buildRows[i])}] = true
	}
	want := map[[2]int]bool{}
	for r := 0; r < pn; r++ {
		if pnulls[r] {
			continue
		}
		for brow, bval := range buildVals {
			if bval == pv[r] {
				want[[2]int{r, brow}] = true
			}
		}
	}
	if len(got) != len(want) || len(got) != len(probeSel) {
		t.Fatalf("probe found %d pairs (%d unique), nested loop %d", len(probeSel), len(got), len(want))
	}
	for pair := range want {
		if !got[pair] {
			t.Fatalf("missing match %v", pair)
		}
	}
	for r := 0; r < pn; r++ {
		wantMatched := false
		for pair := range want {
			if pair[0] == r {
				wantMatched = true
			}
		}
		if matched[r] != wantMatched {
			t.Fatalf("row %d matched=%v, want %v", r, matched[r], wantMatched)
		}
	}
}

func TestSelectConstMatchesBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 128
	vals := make([]int64, n)
	nulls := make([]bool, n)
	for r := range vals {
		vals[r] = int64(rng.Intn(10))
		nulls[r] = rng.Intn(4) == 0
	}
	blocks := encodeInt64(vals, nulls)
	blocks = append(blocks, block.NewRunLengthBlock(&block.Int64Block{Values: []int64{5}}, n))
	var f Filter
	for _, b := range blocks {
		for op := CmpEq; op <= CmpGe; op++ {
			v := &View{}
			if !Of(b, v) {
				t.Fatalf("Of failed on %T", b)
			}
			sel, ok := f.SelectConst(v, n, op, int64(5), nil)
			if !ok {
				t.Fatalf("SelectConst rejected %T", b)
			}
			var want []int
			for r := 0; r < n; r++ {
				if x := b.Value(r); x != nil && cmpOrd(op, x.(int64), 5) {
					want = append(want, r)
				}
			}
			if len(sel) != len(want) {
				t.Fatalf("%T op %s: %d rows, want %d", b, op.Name(), len(sel), len(want))
			}
			for i := range sel {
				if sel[i] != want[i] {
					t.Fatalf("%T op %s row %d: %d != %d", b, op.Name(), i, sel[i], want[i])
				}
			}
		}
	}
	// Null constant selects nothing.
	v := &View{}
	Of(blocks[0], v)
	if sel, ok := f.SelectConst(v, n, CmpEq, nil, nil); !ok || len(sel) != 0 {
		t.Fatalf("null constant: ok=%v len=%d", ok, len(sel))
	}
}

func TestSelectTrue(t *testing.T) {
	b := &block.BoolBlock{Values: []bool{true, false, true, true}, Nulls: []bool{false, false, true, false}}
	v := &View{}
	Of(b, v)
	sel := SelectTrue(v, 4, nil)
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 3 {
		t.Fatalf("SelectTrue = %v, want [0 3]", sel)
	}
}

func TestAggsMatchSemantics(t *testing.T) {
	// Two groups; group 1 sees only nulls for the argument.
	ids := []int32{0, 1, 0, 1}
	argVals := []int64{10, 0, 32, 0}
	argNulls := []bool{false, true, false, true}
	arg := &View{}
	Of(&block.Int64Block{Values: argVals, Nulls: argNulls}, arg)

	cases := []struct {
		name      string
		wantG0    any
		wantG1    any // nil = SQL NULL
		finalType Kind
	}{
		{"count", int64(2), int64(0), KindInt64},
		{"sum", int64(42), nil, KindInt64},
		{"min", int64(10), nil, KindInt64},
		{"max", int64(32), nil, KindInt64},
		{"avg", 21.0, nil, KindFloat64},
	}
	for _, tc := range cases {
		a, ok := NewAgg(tc.name, types.Bigint)
		if !ok {
			t.Fatalf("NewAgg(%s) not supported", tc.name)
		}
		a.Grow(2)
		a.AddRaw(ids, arg, len(ids))
		fin := a.EmitFinal(0, 2)
		if got := fin.Value(0); got != tc.wantG0 {
			t.Fatalf("%s group 0 = %v (%T), want %v", tc.name, got, got, tc.wantG0)
		}
		if got := fin.Value(1); got != tc.wantG1 {
			t.Fatalf("%s group 1 = %v (%T), want %v", tc.name, got, got, tc.wantG1)
		}
		// Merging the emitted intermediates into a fresh aggregator must
		// reproduce the final (the partial -> final contract).
		b, _ := NewAgg(tc.name, types.Bigint)
		b.Grow(2)
		inter := a.EmitIntermediate(0, 2)
		if err := b.AddIntermediate(ids[:2], inter, 2); err != nil {
			t.Fatalf("%s AddIntermediate: %v", tc.name, err)
		}
		fin2 := b.EmitFinal(0, 2)
		if fin2.Value(0) != tc.wantG0 || fin2.Value(1) != tc.wantG1 {
			t.Fatalf("%s merge round-trip: got (%v, %v), want (%v, %v)",
				tc.name, fin2.Value(0), fin2.Value(1), tc.wantG0, tc.wantG1)
		}
		// Boxed intermediates match the row engine's spill encoding shapes.
		switch tc.name {
		case "count":
			if a.IntermediateValue(1) != int64(0) {
				t.Fatalf("count intermediate for empty group must be 0, got %v", a.IntermediateValue(1))
			}
		case "sum", "min", "max":
			if a.IntermediateValue(1) != nil {
				t.Fatalf("%s intermediate for null group must be nil, got %v", tc.name, a.IntermediateValue(1))
			}
		case "avg":
			pair := a.IntermediateValue(1).([]any)
			if pair[0] != 0.0 || pair[1] != int64(0) {
				t.Fatalf("avg intermediate = %v, want [0 0]", pair)
			}
		}
	}
}

func TestMinMaxFloatNaN(t *testing.T) {
	a, _ := NewAgg("max", types.Double)
	a.Grow(1)
	v := &View{}
	Of(&block.Float64Block{Values: []float64{1.5, math.NaN(), 2.5}}, v)
	a.AddRaw([]int32{0, 0, 0}, v, 3)
	if got := a.EmitFinal(0, 1).Value(0); got != 2.5 {
		t.Fatalf("max with NaN = %v, want 2.5", got)
	}
	// A NaN first value sticks (CompareValues semantics: NaN never loses).
	b, _ := NewAgg("min", types.Double)
	b.Grow(1)
	Of(&block.Float64Block{Values: []float64{math.NaN(), 1.0}}, v)
	b.AddRaw([]int32{0, 0}, v, 2)
	got := b.EmitFinal(0, 1).Value(0)
	if f, ok := got.(float64); !ok || !math.IsNaN(f) {
		t.Fatalf("min(NaN, 1.0) = %v, want NaN", got)
	}
}

func TestColumnBlockRoundTrip(t *testing.T) {
	c, _ := NewColumn(types.Double)
	src := &View{}
	Of(&block.Float64Block{Values: []float64{1.5, 0, -2.25}, Nulls: []bool{false, true, false}}, src)
	c.Append(src, 3)
	out := c.Block(0, 3)
	want := []any{1.5, nil, -2.25}
	for i, w := range want {
		if out.Value(i) != w {
			t.Fatalf("row %d = %v, want %v", i, out.Value(i), w)
		}
	}
	g := c.Gather([]int32{2, 0, 1})
	if g.Value(0) != -2.25 || g.Value(1) != 1.5 || g.Value(2) != nil {
		t.Fatalf("gather = %v %v %v", g.Value(0), g.Value(1), g.Value(2))
	}
	nb := NullBlock(types.Varchar, 2)
	if nb.Count() != 2 || !nb.IsNull(0) || !nb.IsNull(1) {
		t.Fatal("NullBlock not all-null")
	}
}

func TestGroupTableGrowAndReset(t *testing.T) {
	gt, _ := NewGroupTable([]*types.Type{types.Bigint})
	var h Hasher
	n := 1000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	b := &block.Int64Block{Values: vals}
	v := &View{}
	Of(b, v)
	hashes := make([]uint64, n)
	h.HashBlock(b, n, hashes)
	ids := make([]int32, n)
	gt.Assign([]*View{v}, n, hashes, ids)
	if gt.Len() != n {
		t.Fatalf("Len = %d, want %d", gt.Len(), n)
	}
	// Re-assigning the same keys yields the same ids.
	ids2 := make([]int32, n)
	gt.Assign([]*View{v}, n, hashes, ids2)
	for i := range ids {
		if ids[i] != ids2[i] {
			t.Fatalf("row %d: id changed %d -> %d", i, ids[i], ids2[i])
		}
	}
	if gt.Bytes() <= 0 || gt.KeyBytes() <= 0 {
		t.Fatal("byte accounting empty")
	}
	gt.Reset()
	if gt.Len() != 0 {
		t.Fatalf("Len after Reset = %d", gt.Len())
	}
	gt.Assign([]*View{v}, n, hashes, ids)
	if gt.Len() != n {
		t.Fatalf("Len after rebuild = %d, want %d", gt.Len(), n)
	}
}

// TestAggResetClearsState is the spill-path regression: Reset truncates the
// state slices in place, and the next Grow must expose zeroed state — not
// the pre-spill groups' counts and sums.
func TestAggResetClearsState(t *testing.T) {
	for _, name := range []string{"count", "sum", "min", "max", "avg"} {
		agg, ok := NewAgg(name, types.Bigint)
		if !ok {
			t.Fatalf("NewAgg(%s) not ok", name)
		}
		arg := &View{Kind: KindInt64, N: 3, I64: []int64{7, 8, 9}}
		agg.Grow(3)
		agg.AddRaw([]int32{0, 1, 2}, arg, 3)
		agg.Reset()
		agg.Grow(3)
		for g := 0; g < 3; g++ {
			if v := agg.IntermediateValue(g); v != nil && v != int64(0) {
				if pair, ok := v.([]any); !ok || pair[0] != float64(0) || pair[1] != int64(0) {
					t.Errorf("%s: group %d holds stale state %v after Reset+Grow", name, g, v)
				}
			}
		}
		agg.AddRaw([]int32{0, 1, 2}, arg, 3)
		want := map[string]any{"count": int64(1), "sum": int64(8), "min": int64(8), "max": int64(8)}
		if w, ok := want[name]; ok {
			if got := agg.IntermediateValue(1); got != w {
				t.Errorf("%s: group 1 after Reset = %v, want %v", name, got, w)
			}
		}
	}
}
