// Package execution implements the vectorized physical operators (§III:
// "Presto is a vectorized engine, which processes a bunch of in memory
// encoded column values vectorized, instead of row by row") and the
// plan-to-operator builder.
package execution

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/obs"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
)

// Operator produces a stream of pages. Next returns io.EOF when exhausted.
type Operator interface {
	Next() (*block.Page, error)
	Close() error
}

// Context carries what operators need at runtime.
type Context struct {
	Catalogs *connector.Registry
	// RemoteSources resolves RemoteSource nodes to operators (nil outside
	// distributed execution).
	RemoteSources func(fragmentID int, cols []planner.Column) (Operator, error)
	// Splits optionally pins the splits a TableScan should process (used by
	// distributed tasks); nil means "enumerate all splits".
	Splits map[string][]connector.Split // key: catalog.schema.table
	// MemoryLimit bounds bytes buffered by blocking operators (join build,
	// sort, hash aggregation). 0 = unlimited. It is the legacy form of
	// Memory: when Memory is nil and MemoryLimit > 0, Build creates a
	// standalone pool with this limit, so exceeding it still fails the query
	// with the §XII.C "Insufficient Resources" error.
	MemoryLimit int64
	// Memory is the query's memory context (a child of the process-wide
	// pool). All blocking operators reserve their buffered bytes through it;
	// nil (with MemoryLimit 0) means unaccounted.
	Memory *resource.Pool
	// Spill, when non-nil, lets blocking operators spill buffered pages to
	// disk instead of failing when a reservation is refused — the §XII.C
	// degradation ladder's third rung. nil = spill disabled.
	Spill *resource.SpillManager
	// Stats, when non-nil, makes Build wrap every operator so it records
	// rows/bytes, wall time and batch counts (the observability subsystem;
	// used by EXPLAIN ANALYZE and worker task reporting).
	Stats *obs.TaskStats
	// Ctx, when non-nil, cancels the query: scans check it between pages and
	// splits, and local-exchange producers check it between sends, so a
	// cancelled task stops all of its drivers promptly. nil = never
	// cancelled.
	Ctx context.Context
	// Drivers is the intra-task parallelism degree for BuildParallel: how
	// many concurrent pipelines a task runs over its split queue (§III's
	// drivers). ≤1 means serial; Build ignores it.
	Drivers int
	// DisableVectorized forces every operator onto the row-at-a-time
	// reference implementations (session property vectorized_execution =
	// false). The vectorized kernels are the default; the reference path
	// exists as the behavioral oracle for the equivalence suite and as the
	// fallback for shapes the kernels do not cover.
	DisableVectorized bool
	// AdaptiveExchangeRows overrides the row threshold below which a
	// partitioned local exchange collapses to a low-cardinality plan
	// (gather or broadcast). 0 means the default; negative disables the
	// adaptation entirely.
	AdaptiveExchangeRows int
	// PartialAggBypassRows overrides how many input rows a partial
	// aggregation hashes before checking its reduction ratio and, when
	// nearly every row opens a new group, switching to pass-through
	// (adaptive partial aggregation). 0 means the default; negative
	// disables the bypass.
	PartialAggBypassRows int

	// ids assigns pre-order plan-node ids, computed on the first Build call
	// when Stats is enabled (see instrument.go).
	ids map[planner.Node]int
	// opStats caches the shared per-plan-node stats sink so the N driver
	// instances of one plan operator record into one accumulator (their
	// atomics make that safe) instead of registering N duplicate rows.
	opStats map[planner.Node]*obs.OperatorStats
	// revoke is the query's cooperative memory-revocation hub, created
	// lazily by the first spillable opMem (see memory.go).
	revoke *revokeHub
}

// ErrInsufficientResources is returned when a blocking operator exceeds the
// session memory limit — the top complaint in the paper's user surveys
// (§XII.C): "when users are joining two large tables, Presto will return an
// error with message Insufficient Resources".
type ErrInsufficientResources struct {
	Operator string
	Limit    int64
	// Cause is the underlying pool/spill error (resource.ErrPoolExhausted,
	// resource.ErrSpillBudgetExhausted, ...); errors.Is sees through it.
	Cause error
}

func (e ErrInsufficientResources) Error() string {
	msg := fmt.Sprintf("Insufficient Resources: %s exceeded the query memory limit of %d bytes; retry on a batch engine (e.g. Presto on Spark), raise query_max_memory, or enable spill_enabled", e.Operator, e.Limit)
	if e.Cause != nil {
		msg += " (" + e.Cause.Error() + ")"
	}
	return msg
}

// Unwrap exposes the underlying resource error.
func (e ErrInsufficientResources) Unwrap() error { return e.Cause }

// Build constructs the operator tree for a plan. With ctx.Stats set, every
// operator is wrapped to record execution statistics keyed by its pre-order
// position in the plan.
func Build(node planner.Node, ctx *Context) (Operator, error) {
	if ctx.Memory == nil && ctx.MemoryLimit > 0 {
		// Legacy callers that only set a byte limit get a standalone pool,
		// so every blocking operator goes through one accounting path.
		ctx.Memory = resource.NewPool("query", ctx.MemoryLimit)
	}
	if ctx.Stats != nil && ctx.ids == nil {
		ctx.ids = planOperatorIDs(node)
	}
	op, err := build(node, ctx)
	if err != nil {
		return nil, err
	}
	return ctx.instrument(node, op), nil
}

func build(node planner.Node, ctx *Context) (Operator, error) {
	switch t := node.(type) {
	case *planner.Output:
		// Build (not build) so the child is instrumented under its own id;
		// the Output wrapper then layers its own accounting on top.
		return Build(t.Child, ctx)
	case *planner.Values:
		return newValuesOperator(t), nil
	case *planner.TableScan:
		return newScanOperator(t, ctx)
	case *planner.Filter:
		child, err := Build(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &filterOperator{child: child, predicate: t.Predicate}, nil
	case *planner.Project:
		child, err := Build(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &projectOperator{child: child, exprs: t.Exprs}, nil
	case *planner.Limit:
		child, err := Build(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return &limitOperator{child: child, remaining: t.N}, nil
	case *planner.Sort:
		child, err := Build(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return newSortOperator(t, child, newOpMem("ORDER BY buffering", ctx)), nil
	case *planner.Aggregate:
		child, err := Build(t.Child, ctx)
		if err != nil {
			return nil, err
		}
		return newAggOp(ctx, t, child)
	case *planner.Join:
		left, err := Build(t.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := Build(t.Right, ctx)
		if err != nil {
			return nil, err
		}
		return newJoinOp(ctx, t, left, right), nil
	case *planner.GeoJoin:
		left, err := Build(t.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := Build(t.Right, ctx)
		if err != nil {
			return nil, err
		}
		return newGeoJoinOperator(t, left, right), nil
	case *planner.RemoteSource:
		if ctx.RemoteSources == nil {
			return nil, fmt.Errorf("execution: RemoteSource outside distributed execution")
		}
		return ctx.RemoteSources(t.FragmentID, t.Cols)
	case *planner.Union:
		children := make([]Operator, len(t.Sources))
		for i, src := range t.Sources {
			child, err := Build(src, ctx)
			if err != nil {
				for _, c := range children[:i] {
					_ = c.Close() // already failing: the build error is the one to report
				}
				return nil, err
			}
			children[i] = child
		}
		return &unionOperator{children: children}, nil
	default:
		return nil, fmt.Errorf("execution: no operator for %T", node)
	}
}

// unionOperator concatenates its children's streams (UNION ALL): drain one
// source fully, then move to the next.
type unionOperator struct {
	children []Operator
	idx      int
}

func (u *unionOperator) Next() (*block.Page, error) {
	for u.idx < len(u.children) {
		p, err := u.children[u.idx].Next()
		if errors.Is(err, io.EOF) {
			_ = u.children[u.idx].Close() // close-as-you-go; Close re-checks survivors
			u.children[u.idx] = nil
			u.idx++
			continue
		}
		return p, err
	}
	return nil, io.EOF
}

func (u *unionOperator) Close() error {
	var first error
	for i, c := range u.children {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		u.children[i] = nil
	}
	return first
}

// Drain pulls all pages from op, closing it afterwards.
func Drain(op Operator) ([]*block.Page, error) {
	defer op.Close()
	var out []*block.Page
	for {
		p, err := op.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if p != nil && p.Count() > 0 {
			out = append(out, p)
		}
	}
}

// ---------------------------------------------------------------------------

type valuesOperator struct {
	node *planner.Values
	done bool
}

func newValuesOperator(v *planner.Values) *valuesOperator { return &valuesOperator{node: v} }

func (o *valuesOperator) Next() (*block.Page, error) {
	if o.done {
		return nil, io.EOF
	}
	o.done = true
	if len(o.node.Cols) == 0 {
		// zero-column relation still carries its row count
		return &block.Page{N: len(o.node.Rows)}, nil
	}
	builders := make([]block.Builder, len(o.node.Cols))
	for i, c := range o.node.Cols {
		builders[i] = block.NewBuilder(c.Type, len(o.node.Rows))
	}
	for _, row := range o.node.Rows {
		for i, v := range row {
			builders[i].Append(v)
		}
	}
	blocks := make([]block.Block, len(builders))
	for i, b := range builders {
		blocks[i] = b.Build()
	}
	return block.NewPage(blocks...), nil
}

func (o *valuesOperator) Close() error { return nil }

// ---------------------------------------------------------------------------

// splitQueue hands out a table's splits to the scan drivers sharing it. A
// single atomic cursor is the whole scheduler: drivers that finish a split
// early simply take the next one, so work self-balances across drivers with
// no locks and no up-front assignment (morsel-style scheduling).
type splitQueue struct {
	splits []connector.Split
	next   atomic.Int64
}

// take claims the next unprocessed split (its index for error messages) or
// ok=false when the queue is drained.
func (q *splitQueue) take() (connector.Split, int, bool) {
	i := q.next.Add(1) - 1
	if i >= int64(len(q.splits)) {
		return nil, 0, false
	}
	return q.splits[i], int(i), true
}

type scanOperator struct {
	scan     *planner.TableScan
	provider connector.RecordSetProvider
	queue    *splitQueue
	columns  []int
	ctx      context.Context
	current  connector.PageSource
}

// scanSplits resolves the provider and split list for a table scan.
func scanSplits(t *planner.TableScan, ctx *Context) (connector.RecordSetProvider, []connector.Split, error) {
	conn, err := ctx.Catalogs.Get(t.Catalog)
	if err != nil {
		return nil, nil, err
	}
	var splits []connector.Split
	key := t.Catalog + "." + t.Schema + "." + t.Table
	if ctx.Splits != nil {
		splits = ctx.Splits[key]
	} else {
		splits, err = conn.SplitManager().Splits(t.Handle)
		if err != nil {
			return nil, nil, fmt.Errorf("execution: enumerating splits for %s: %w", key, err)
		}
	}
	return conn.RecordSetProvider(), splits, nil
}

func newScanOperator(t *planner.TableScan, ctx *Context) (Operator, error) {
	provider, splits, err := scanSplits(t, ctx)
	if err != nil {
		return nil, err
	}
	return &scanOperator{
		scan:     t,
		provider: provider,
		queue:    &splitQueue{splits: splits},
		columns:  t.ColumnOrdinals,
		ctx:      ctx.Ctx,
	}, nil
}

func (o *scanOperator) Next() (*block.Page, error) {
	for {
		// Cancellation check per split and per page: long scans of a
		// cancelled query must stop instead of reading on to EOF.
		if o.ctx != nil {
			if err := o.ctx.Err(); err != nil {
				return nil, err
			}
		}
		if o.current == nil {
			split, idx, ok := o.queue.take()
			if !ok {
				return nil, io.EOF
			}
			src, err := o.provider.CreatePageSource(o.scan.Handle, split, o.columns)
			if err != nil {
				return nil, fmt.Errorf("execution: opening split %d of %s.%s: %w", idx, o.scan.Schema, o.scan.Table, err)
			}
			o.current = src
		}
		p, err := o.current.Next()
		if errors.Is(err, io.EOF) {
			closeErr := o.current.Close()
			o.current = nil
			if closeErr != nil {
				return nil, fmt.Errorf("execution: closing split of %s.%s: %w", o.scan.Schema, o.scan.Table, closeErr)
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		return p, nil
	}
}

func (o *scanOperator) Close() error {
	if o.current != nil {
		err := o.current.Close()
		o.current = nil
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------

type filterOperator struct {
	child     Operator
	predicate expr.RowExpression
	// sel is the operator's leased selection vector (block pool): the hot
	// scan→filter→project path reuses it for every page instead of
	// allocating a fresh []int per page.
	sel *block.Positions
}

func (o *filterOperator) Next() (*block.Page, error) {
	if o.sel == nil {
		o.sel = block.GetPositions()
	}
	for {
		p, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		positions, err := expr.EvalFilterInto(o.predicate, p, o.sel.Buf)
		if err != nil {
			return nil, err
		}
		o.sel.Buf = positions
		if len(positions) == 0 {
			continue
		}
		if len(positions) == p.Count() {
			return p, nil
		}
		// Mask copies the selected rows, so the vector is reusable next page.
		return p.Mask(positions), nil
	}
}

func (o *filterOperator) Close() error {
	block.PutPositions(o.sel)
	o.sel = nil
	return o.child.Close()
}

// ---------------------------------------------------------------------------

type projectOperator struct {
	child Operator
	exprs []expr.RowExpression
}

func (o *projectOperator) Next() (*block.Page, error) {
	p, err := o.child.Next()
	if err != nil {
		return nil, err
	}
	blocks := make([]block.Block, len(o.exprs))
	for i, e := range o.exprs {
		b, err := expr.Eval(e, p)
		if err != nil {
			return nil, err
		}
		blocks[i] = b
	}
	return &block.Page{Blocks: blocks, N: p.Count()}, nil
}

func (o *projectOperator) Close() error { return o.child.Close() }

// ---------------------------------------------------------------------------

type limitOperator struct {
	child     Operator
	remaining int64
}

func (o *limitOperator) Next() (*block.Page, error) {
	if o.remaining <= 0 {
		return nil, io.EOF
	}
	p, err := o.child.Next()
	if err != nil {
		return nil, err
	}
	if int64(p.Count()) > o.remaining {
		p = p.Region(0, int(o.remaining))
	}
	o.remaining -= int64(p.Count())
	return p, nil
}

func (o *limitOperator) Close() error { return o.child.Close() }
