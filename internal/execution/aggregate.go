package execution

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"prestolite/internal/block"
	"prestolite/internal/expr"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
	"prestolite/internal/types"
)

// Estimated heap cost of hash-aggregation state: a fixed overhead per group
// (map entry + groupState) plus one AggState per aggregate, and a per-entry
// cost for DISTINCT seen-sets. Group costs are only charged for grouped
// aggregations — a global aggregate is a single constant-size state, so the
// paper's "count(*) works at any limit" expectation holds.
const (
	aggGroupBaseCost = 96
	aggStateCost     = 48
	aggDistinctCost  = 32
)

// aggregateOperator implements hash aggregation with three step modes
// (Fig 2): SINGLE consumes raw rows and emits finals; PARTIAL consumes raw
// rows and emits intermediates; FINAL consumes intermediates and emits
// finals.
//
// Grouped aggregations account every new group against the query memory
// context; when a reservation is refused (and spill is enabled) the whole
// hash table is flushed to a key-sorted spill run as pages of [group
// keys..., intermediate states...] and rebuilt empty. Once input is
// exhausted the sorted runs are k-way merged: equal keys across runs are
// combined with AddIntermediate — the same round-trip the distributed
// partial→final path uses — and result pages stream out incrementally, so
// the full set of distinct groups (which by construction exceeded the
// budget) is never rebuilt in memory. Emission order after a spill is
// key-encoding order, not first-seen (grouped output order is unspecified).
// DISTINCT aggregates cannot spill (their seen-sets cannot be merged
// without double counting), so they fail with Insufficient Resources when
// over the limit.
type aggregateOperator struct {
	node  *planner.Aggregate
	child Operator
	fns   []*expr.AggregateFunction
	mem   *opMem

	groups   map[string]*groupState
	order    []string // deterministic emission order (first-seen)
	consumed bool
	emitted  bool

	hasDistinct bool
	runs        []*resource.Run
	merger      *aggMerger
}

// aggMergeCursor reads one sorted spill run during the merge, holding one
// page at a time. Like the sort merge, read-back pages are transient engine
// overhead (one bounded frame per open run), not user memory.
type aggMergeCursor struct {
	rr   *resource.RunReader
	run  *resource.Run
	page *block.Page
	row  int
	key  string // current row's encoded group key
	done bool
}

type groupState struct {
	keys     []any
	states   []expr.AggState
	distinct []map[string]struct{} // per-agg seen-set when DISTINCT
}

func newAggregateOperator(node *planner.Aggregate, child Operator, mem *opMem) (Operator, error) {
	fns := make([]*expr.AggregateFunction, len(node.Aggs))
	hasDistinct := false
	for i, a := range node.Aggs {
		fn, err := expr.ResolveAggregate(a.FuncName, a.ArgTypes)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
		if a.Distinct {
			hasDistinct = true
		}
	}
	return &aggregateOperator{
		node:        node,
		child:       child,
		fns:         fns,
		mem:         mem,
		groups:      map[string]*groupState{},
		hasDistinct: hasDistinct,
	}, nil
}

// appendGroupKey appends a hashable key for vals onto dst. It sits on the
// per-row hot path of hash aggregation and hash join, so each supported
// scalar gets a type-tag byte plus a strconv append instead of reflective
// formatting; strings are length-prefixed so separator bytes cannot collide.
func appendGroupKey(dst []byte, vals []any) []byte {
	for _, v := range vals {
		switch t := v.(type) {
		case nil:
			dst = append(dst, 'n')
		case bool:
			if t {
				dst = append(dst, 'b', 1)
			} else {
				dst = append(dst, 'b', 0)
			}
		case int64:
			dst = append(dst, 'i')
			dst = strconv.AppendInt(dst, t, 36)
		case float64:
			dst = append(dst, 'f')
			dst = strconv.AppendUint(dst, math.Float64bits(t), 36)
		case string:
			dst = append(dst, 's')
			dst = strconv.AppendInt(dst, int64(len(t)), 36)
			dst = append(dst, ':')
			dst = append(dst, t...)
		default:
			// Rare compound values (e.g. intermediate agg states) fall back
			// to reflective formatting.
			dst = append(dst, 'x')
			dst = fmt.Appendf(dst, "%T\x00%v", v, v)
		}
		dst = append(dst, 0x01)
	}
	return dst
}

// groupKey is the convenience (allocating) form of appendGroupKey.
func groupKey(vals []any) string { return string(appendGroupKey(nil, vals)) }

func (o *aggregateOperator) Next() (*block.Page, error) {
	if !o.consumed {
		if err := o.consume(); err != nil {
			return nil, err
		}
		o.consumed = true
	}
	if o.merger != nil {
		return o.merger.next()
	}
	if o.emitted {
		return nil, io.EOF
	}
	o.emitted = true
	return o.emit()
}

// newGroup charges and creates one group for key k (keys are cloned).
// Grouped aggregations may flush the table to disk when the charge is
// refused; the caller's in-flight lookup is then against the fresh table.
func (o *aggregateOperator) newGroup(k string, keys []any) (*groupState, error) {
	if len(o.node.GroupBy) > 0 {
		cost := int64(len(k)) + aggGroupBaseCost + int64(len(o.fns))*aggStateCost
		if o.mem.canSpill() && !o.hasDistinct {
			ok, err := o.mem.reserve(cost)
			if err != nil {
				return nil, err
			}
			if !ok {
				if err := o.spillGroups(); err != nil {
					return nil, err
				}
				if err := o.mem.hardReserve(cost); err != nil {
					return nil, err
				}
			}
		} else if err := o.mem.hardReserve(cost); err != nil {
			return nil, err
		}
	}
	g := &groupState{keys: append([]any(nil), keys...), states: make([]expr.AggState, len(o.fns))}
	for i, fn := range o.fns {
		g.states[i] = fn.NewState(o.node.Aggs[i].ArgTypes)
	}
	g.distinct = make([]map[string]struct{}, len(o.fns))
	for i, a := range o.node.Aggs {
		if a.Distinct {
			g.distinct[i] = map[string]struct{}{}
		}
	}
	o.groups[k] = g
	o.order = append(o.order, k)
	return g, nil
}

func (o *aggregateOperator) consume() error {
	// Scratch reused across every row of every page: keys is cloned only
	// when it becomes a new group's identity, vals is never retained by
	// AggState.Add, and the key bytes are materialized to a string only for
	// new map entries (the lookup itself does not allocate).
	keys := make([]any, len(o.node.GroupBy))
	var vals []any
	var keyBuf, distBuf []byte
	for {
		p, err := o.child.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n := p.Count()
		for row := 0; row < n; row++ {
			for i, ch := range o.node.GroupBy {
				keys[i] = p.Blocks[ch].Value(row)
			}
			keyBuf = appendGroupKey(keyBuf[:0], keys)
			g, ok := o.groups[string(keyBuf)]
			if !ok {
				g, err = o.newGroup(string(keyBuf), keys)
				if err != nil {
					return err
				}
			}
			for i, a := range o.node.Aggs {
				if o.node.Step == planner.AggFinal {
					// Input channel holds the intermediate value.
					g.states[i].AddIntermediate(p.Blocks[a.Args[0]].Value(row))
					continue
				}
				vals = vals[:0]
				for _, ch := range a.Args {
					vals = append(vals, p.Blocks[ch].Value(row))
				}
				if g.distinct[i] != nil {
					if len(vals) > 0 && vals[0] == nil {
						continue
					}
					distBuf = appendGroupKey(distBuf[:0], vals)
					if _, seen := g.distinct[i][string(distBuf)]; seen {
						continue
					}
					if err := o.mem.hardReserve(int64(len(distBuf)) + aggDistinctCost); err != nil {
						return err
					}
					g.distinct[i][string(distBuf)] = struct{}{}
				}
				g.states[i].Add(vals)
			}
		}
	}
	// Global aggregation over empty input still produces one group.
	if len(o.node.GroupBy) == 0 && len(o.groups) == 0 {
		g := &groupState{states: make([]expr.AggState, len(o.fns))}
		for i, fn := range o.fns {
			g.states[i] = fn.NewState(o.node.Aggs[i].ArgTypes)
		}
		g.distinct = make([]map[string]struct{}, len(o.fns))
		o.groups[""] = g
		o.order = append(o.order, "")
	}
	if len(o.runs) > 0 {
		// Spilled at least once: flush the remainder as the last sorted run
		// and hand emission over to the streaming merge.
		if err := o.spillGroups(); err != nil {
			return err
		}
		o.merger = newAggMerger(o.node, o.fns)
		return o.merger.open(o.runs)
	}
	return nil
}

// aggSpillTypes is the schema of a spilled aggregation page: the group-by
// key columns followed by one intermediate-state column per aggregate. Both
// the row-at-a-time and vectorized operators spill this schema, so their
// runs merge interchangeably.
func aggSpillTypes(node *planner.Aggregate, fns []*expr.AggregateFunction) []*types.Type {
	childCols := node.Child.Outputs()
	ts := make([]*types.Type, 0, len(node.GroupBy)+len(fns))
	for _, ch := range node.GroupBy {
		ts = append(ts, childCols[ch].Type)
	}
	for i, fn := range fns {
		ts = append(ts, fn.IntermediateType(node.Aggs[i].ArgTypes))
	}
	return ts
}

// spillGroups writes every buffered group to one run — sorted by encoded
// key, so the read-back merge can align equal groups across runs with plain
// cursors — and resets the hash table, freeing its memory.
func (o *aggregateOperator) spillGroups() error {
	if len(o.order) == 0 {
		return nil
	}
	sort.Strings(o.order)
	w, err := o.mem.newRun("agg")
	if err != nil {
		return err
	}
	ts := aggSpillTypes(o.node, o.fns)
	row := make([]any, len(ts))
	nk := len(o.node.GroupBy)
	for off := 0; off < len(o.order); off += spillPageRows {
		n := spillPageRows
		if off+n > len(o.order) {
			n = len(o.order) - off
		}
		pb := block.NewPageBuilder(ts)
		for _, k := range o.order[off : off+n] {
			g := o.groups[k]
			copy(row, g.keys)
			for i, st := range g.states {
				row[nk+i] = st.Intermediate()
			}
			pb.AppendRow(row)
		}
		if err := w.WritePage(pb.Build()); err != nil {
			w.Abandon()
			return o.mem.fail(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	o.runs = append(o.runs, run)
	o.mem.addSpilled(run.Bytes())
	o.groups = map[string]*groupState{}
	o.order = o.order[:0]
	o.mem.releaseAll()
	return nil
}

// aggMerger k-way merges key-sorted aggregation spill runs, combining equal
// keys across runs with AddIntermediate and streaming result pages out. It
// is shared by the row-at-a-time operator above and the vectorized
// aggregation (vectoragg.go): both spill the same page schema ([group
// keys..., intermediate states...], sorted by encoded key), so one merge
// serves either producer.
type aggMerger struct {
	node      *planner.Aggregate
	fns       []*expr.AggregateFunction
	cursors   []*aggMergeCursor
	mergeKeys []any
	mergeBuf  []byte
}

func newAggMerger(node *planner.Aggregate, fns []*expr.AggregateFunction) *aggMerger {
	return &aggMerger{node: node, fns: fns}
}

// open starts a cursor per sorted run and positions each on its first row.
// The merge holds only the cursor pages plus one group's states at a time,
// so it fits any budget — unlike rebuilding the full distinct-group table,
// which by construction cannot fit (that is why it spilled).
func (o *aggMerger) open(runs []*resource.Run) error {
	o.mergeKeys = make([]any, len(o.node.GroupBy))
	for _, r := range runs {
		rr, err := r.Open()
		if err != nil {
			return err
		}
		c := &aggMergeCursor{rr: rr, run: r}
		o.cursors = append(o.cursors, c)
		if err := o.advanceCursor(c); err != nil {
			return err
		}
	}
	return nil
}

// close releases any cursors still holding open run readers.
func (o *aggMerger) close() error {
	var errs []error
	for _, c := range o.cursors {
		if c.rr != nil && !c.done {
			errs = append(errs, c.rr.Close())
		}
	}
	return errors.Join(errs...)
}

// advanceCursor moves a cursor to its next row, loading pages as needed; at
// the end of the run the file is removed immediately.
func (o *aggMerger) advanceCursor(c *aggMergeCursor) error {
	if c.page != nil {
		c.row++
		if c.row < c.page.Count() {
			o.cursorKey(c)
			return nil
		}
		c.page = nil
	}
	for {
		p, err := c.rr.Next()
		if errors.Is(err, io.EOF) {
			c.done = true
			err := c.rr.Close()
			c.run.Remove()
			return err
		}
		if err != nil {
			return err
		}
		if p.Count() == 0 {
			continue
		}
		c.page, c.row = p, 0
		o.cursorKey(c)
		return nil
	}
}

// cursorKey recomputes the cursor's encoded group key for its current row.
func (o *aggMerger) cursorKey(c *aggMergeCursor) {
	for i := range o.mergeKeys {
		o.mergeKeys[i] = c.page.Blocks[i].Value(c.row)
	}
	o.mergeBuf = appendGroupKey(o.mergeBuf[:0], o.mergeKeys)
	c.key = string(o.mergeBuf)
}

// next emits the next page of the k-way merge: the smallest key across
// the live cursors is combined (AddIntermediate over every run holding it)
// into one transient group and appended, until the page fills or the runs
// drain.
func (o *aggMerger) next() (*block.Page, error) {
	outs := o.node.Outputs()
	colTypes := make([]*types.Type, len(outs))
	for i, col := range outs {
		colTypes[i] = col.Type
	}
	nk := len(o.node.GroupBy)
	pb := block.NewPageBuilder(colTypes)
	row := make([]any, 0, len(outs))
	keys := make([]any, nk) // scratch: AppendRow copies per value
	for pb.Len() < spillPageRows {
		var best string
		found := false
		for _, c := range o.cursors {
			if !c.done && (!found || c.key < best) {
				best, found = c.key, true
			}
		}
		if !found {
			break
		}
		states := make([]expr.AggState, len(o.fns))
		for i, fn := range o.fns {
			states[i] = fn.NewState(o.node.Aggs[i].ArgTypes)
		}
		haveKeys := false
		for _, c := range o.cursors {
			for !c.done && c.key == best {
				if !haveKeys {
					haveKeys = true
					for i := 0; i < nk; i++ {
						keys[i] = c.page.Blocks[i].Value(c.row)
					}
				}
				for i := range o.fns {
					states[i].AddIntermediate(c.page.Blocks[nk+i].Value(c.row))
				}
				if err := o.advanceCursor(c); err != nil {
					return nil, err
				}
			}
		}
		row = row[:0]
		row = append(row, keys...)
		for _, st := range states {
			if o.node.Step == planner.AggPartial {
				row = append(row, st.Intermediate())
			} else {
				row = append(row, st.Final())
			}
		}
		pb.AppendRow(row)
	}
	if pb.Len() == 0 {
		return nil, io.EOF
	}
	return pb.Build(), nil
}

func (o *aggregateOperator) emit() (*block.Page, error) {
	outs := o.node.Outputs()
	colTypes := make([]*types.Type, len(outs))
	for i, c := range outs {
		colTypes[i] = c.Type
	}
	pb := block.NewPageBuilder(colTypes)
	row := make([]any, 0, len(outs)) // scratch: AppendRow copies per value
	for _, k := range o.order {
		g := o.groups[k]
		row = row[:0]
		row = append(row, g.keys...)
		for _, st := range g.states {
			if o.node.Step == planner.AggPartial {
				row = append(row, st.Intermediate())
			} else {
				row = append(row, st.Final())
			}
		}
		pb.AppendRow(row)
	}
	return pb.Build(), nil
}

func (o *aggregateOperator) Close() error {
	var errs []error
	if o.merger != nil {
		errs = append(errs, o.merger.close())
	}
	for _, r := range o.runs {
		r.Remove()
	}
	o.runs = nil
	o.mem.releaseAll()
	errs = append(errs, o.child.Close())
	return errors.Join(errs...)
}
