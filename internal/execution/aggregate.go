package execution

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"prestolite/internal/block"
	"prestolite/internal/expr"
	"prestolite/internal/planner"
	"prestolite/internal/types"
)

// aggregateOperator implements hash aggregation with three step modes
// (Fig 2): SINGLE consumes raw rows and emits finals; PARTIAL consumes raw
// rows and emits intermediates; FINAL consumes intermediates and emits
// finals.
type aggregateOperator struct {
	node  *planner.Aggregate
	child Operator
	fns   []*expr.AggregateFunction

	groups   map[string]*groupState
	order    []string // deterministic emission order (first-seen)
	consumed bool
	emitted  bool
}

type groupState struct {
	keys     []any
	states   []expr.AggState
	distinct []map[string]struct{} // per-agg seen-set when DISTINCT
}

func newAggregateOperator(node *planner.Aggregate, child Operator) (Operator, error) {
	fns := make([]*expr.AggregateFunction, len(node.Aggs))
	for i, a := range node.Aggs {
		fn, err := expr.ResolveAggregate(a.FuncName, a.ArgTypes)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	return &aggregateOperator{
		node:   node,
		child:  child,
		fns:    fns,
		groups: map[string]*groupState{},
	}, nil
}

// groupKey builds a hashable key from group values.
func groupKey(vals []any) string {
	var sb strings.Builder
	for _, v := range vals {
		fmt.Fprintf(&sb, "%T\x00%v\x01", v, v)
	}
	return sb.String()
}

func (o *aggregateOperator) Next() (*block.Page, error) {
	if !o.consumed {
		if err := o.consume(); err != nil {
			return nil, err
		}
		o.consumed = true
	}
	if o.emitted {
		return nil, io.EOF
	}
	o.emitted = true
	return o.emit()
}

func (o *aggregateOperator) consume() error {
	for {
		p, err := o.child.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n := p.Count()
		for row := 0; row < n; row++ {
			keys := make([]any, len(o.node.GroupBy))
			for i, ch := range o.node.GroupBy {
				keys[i] = p.Blocks[ch].Value(row)
			}
			k := groupKey(keys)
			g, ok := o.groups[k]
			if !ok {
				g = &groupState{keys: keys, states: make([]expr.AggState, len(o.fns))}
				for i, fn := range o.fns {
					g.states[i] = fn.NewState(o.node.Aggs[i].ArgTypes)
				}
				g.distinct = make([]map[string]struct{}, len(o.fns))
				for i, a := range o.node.Aggs {
					if a.Distinct {
						g.distinct[i] = map[string]struct{}{}
					}
				}
				o.groups[k] = g
				o.order = append(o.order, k)
			}
			for i, a := range o.node.Aggs {
				if o.node.Step == planner.AggFinal {
					// Input channel holds the intermediate value.
					g.states[i].AddIntermediate(p.Blocks[a.Args[0]].Value(row))
					continue
				}
				vals := make([]any, len(a.Args))
				for j, ch := range a.Args {
					vals[j] = p.Blocks[ch].Value(row)
				}
				if g.distinct[i] != nil {
					if len(vals) > 0 && vals[0] == nil {
						continue
					}
					dk := groupKey(vals)
					if _, seen := g.distinct[i][dk]; seen {
						continue
					}
					g.distinct[i][dk] = struct{}{}
				}
				g.states[i].Add(vals)
			}
		}
	}
	// Global aggregation over empty input still produces one group.
	if len(o.node.GroupBy) == 0 && len(o.groups) == 0 && o.node.Step != planner.AggFinal {
		g := &groupState{states: make([]expr.AggState, len(o.fns))}
		for i, fn := range o.fns {
			g.states[i] = fn.NewState(o.node.Aggs[i].ArgTypes)
		}
		g.distinct = make([]map[string]struct{}, len(o.fns))
		o.groups[""] = g
		o.order = append(o.order, "")
	}
	if len(o.node.GroupBy) == 0 && len(o.groups) == 0 && o.node.Step == planner.AggFinal {
		g := &groupState{states: make([]expr.AggState, len(o.fns))}
		for i, fn := range o.fns {
			g.states[i] = fn.NewState(o.node.Aggs[i].ArgTypes)
		}
		g.distinct = make([]map[string]struct{}, len(o.fns))
		o.groups[""] = g
		o.order = append(o.order, "")
	}
	return nil
}

func (o *aggregateOperator) emit() (*block.Page, error) {
	outs := o.node.Outputs()
	colTypes := make([]*types.Type, len(outs))
	for i, c := range outs {
		colTypes[i] = c.Type
	}
	pb := block.NewPageBuilder(colTypes)
	for _, k := range o.order {
		g := o.groups[k]
		row := make([]any, 0, len(outs))
		row = append(row, g.keys...)
		for i, st := range g.states {
			if o.node.Step == planner.AggPartial {
				row = append(row, st.Intermediate())
			} else {
				row = append(row, st.Final())
			}
			_ = i
		}
		pb.AppendRow(row)
	}
	return pb.Build(), nil
}

func (o *aggregateOperator) Close() error { return o.child.Close() }
