package execution

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"prestolite/internal/block"
	"prestolite/internal/expr"
	"prestolite/internal/planner"
	"prestolite/internal/types"
)

// aggregateOperator implements hash aggregation with three step modes
// (Fig 2): SINGLE consumes raw rows and emits finals; PARTIAL consumes raw
// rows and emits intermediates; FINAL consumes intermediates and emits
// finals.
type aggregateOperator struct {
	node  *planner.Aggregate
	child Operator
	fns   []*expr.AggregateFunction

	groups   map[string]*groupState
	order    []string // deterministic emission order (first-seen)
	consumed bool
	emitted  bool
}

type groupState struct {
	keys     []any
	states   []expr.AggState
	distinct []map[string]struct{} // per-agg seen-set when DISTINCT
}

func newAggregateOperator(node *planner.Aggregate, child Operator) (Operator, error) {
	fns := make([]*expr.AggregateFunction, len(node.Aggs))
	for i, a := range node.Aggs {
		fn, err := expr.ResolveAggregate(a.FuncName, a.ArgTypes)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	return &aggregateOperator{
		node:   node,
		child:  child,
		fns:    fns,
		groups: map[string]*groupState{},
	}, nil
}

// appendGroupKey appends a hashable key for vals onto dst. It sits on the
// per-row hot path of hash aggregation and hash join, so each supported
// scalar gets a type-tag byte plus a strconv append instead of reflective
// formatting; strings are length-prefixed so separator bytes cannot collide.
func appendGroupKey(dst []byte, vals []any) []byte {
	for _, v := range vals {
		switch t := v.(type) {
		case nil:
			dst = append(dst, 'n')
		case bool:
			if t {
				dst = append(dst, 'b', 1)
			} else {
				dst = append(dst, 'b', 0)
			}
		case int64:
			dst = append(dst, 'i')
			dst = strconv.AppendInt(dst, t, 36)
		case float64:
			dst = append(dst, 'f')
			dst = strconv.AppendUint(dst, math.Float64bits(t), 36)
		case string:
			dst = append(dst, 's')
			dst = strconv.AppendInt(dst, int64(len(t)), 36)
			dst = append(dst, ':')
			dst = append(dst, t...)
		default:
			// Rare compound values (e.g. intermediate agg states) fall back
			// to reflective formatting.
			dst = append(dst, 'x')
			dst = fmt.Appendf(dst, "%T\x00%v", v, v)
		}
		dst = append(dst, 0x01)
	}
	return dst
}

// groupKey is the convenience (allocating) form of appendGroupKey.
func groupKey(vals []any) string { return string(appendGroupKey(nil, vals)) }

func (o *aggregateOperator) Next() (*block.Page, error) {
	if !o.consumed {
		if err := o.consume(); err != nil {
			return nil, err
		}
		o.consumed = true
	}
	if o.emitted {
		return nil, io.EOF
	}
	o.emitted = true
	return o.emit()
}

func (o *aggregateOperator) consume() error {
	// Scratch reused across every row of every page: keys is cloned only
	// when it becomes a new group's identity, vals is never retained by
	// AggState.Add, and the key bytes are materialized to a string only for
	// new map entries (the lookup itself does not allocate).
	keys := make([]any, len(o.node.GroupBy))
	var vals []any
	var keyBuf, distBuf []byte
	for {
		p, err := o.child.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n := p.Count()
		for row := 0; row < n; row++ {
			for i, ch := range o.node.GroupBy {
				keys[i] = p.Blocks[ch].Value(row)
			}
			keyBuf = appendGroupKey(keyBuf[:0], keys)
			g, ok := o.groups[string(keyBuf)]
			if !ok {
				k := string(keyBuf)
				g = &groupState{keys: append([]any(nil), keys...), states: make([]expr.AggState, len(o.fns))}
				for i, fn := range o.fns {
					g.states[i] = fn.NewState(o.node.Aggs[i].ArgTypes)
				}
				g.distinct = make([]map[string]struct{}, len(o.fns))
				for i, a := range o.node.Aggs {
					if a.Distinct {
						g.distinct[i] = map[string]struct{}{}
					}
				}
				o.groups[k] = g
				o.order = append(o.order, k)
			}
			for i, a := range o.node.Aggs {
				if o.node.Step == planner.AggFinal {
					// Input channel holds the intermediate value.
					g.states[i].AddIntermediate(p.Blocks[a.Args[0]].Value(row))
					continue
				}
				vals = vals[:0]
				for _, ch := range a.Args {
					vals = append(vals, p.Blocks[ch].Value(row))
				}
				if g.distinct[i] != nil {
					if len(vals) > 0 && vals[0] == nil {
						continue
					}
					distBuf = appendGroupKey(distBuf[:0], vals)
					if _, seen := g.distinct[i][string(distBuf)]; seen {
						continue
					}
					g.distinct[i][string(distBuf)] = struct{}{}
				}
				g.states[i].Add(vals)
			}
		}
	}
	// Global aggregation over empty input still produces one group.
	if len(o.node.GroupBy) == 0 && len(o.groups) == 0 && o.node.Step != planner.AggFinal {
		g := &groupState{states: make([]expr.AggState, len(o.fns))}
		for i, fn := range o.fns {
			g.states[i] = fn.NewState(o.node.Aggs[i].ArgTypes)
		}
		g.distinct = make([]map[string]struct{}, len(o.fns))
		o.groups[""] = g
		o.order = append(o.order, "")
	}
	if len(o.node.GroupBy) == 0 && len(o.groups) == 0 && o.node.Step == planner.AggFinal {
		g := &groupState{states: make([]expr.AggState, len(o.fns))}
		for i, fn := range o.fns {
			g.states[i] = fn.NewState(o.node.Aggs[i].ArgTypes)
		}
		g.distinct = make([]map[string]struct{}, len(o.fns))
		o.groups[""] = g
		o.order = append(o.order, "")
	}
	return nil
}

func (o *aggregateOperator) emit() (*block.Page, error) {
	outs := o.node.Outputs()
	colTypes := make([]*types.Type, len(outs))
	for i, c := range outs {
		colTypes[i] = c.Type
	}
	pb := block.NewPageBuilder(colTypes)
	row := make([]any, 0, len(outs)) // scratch: AppendRow copies per value
	for _, k := range o.order {
		g := o.groups[k]
		row = row[:0]
		row = append(row, g.keys...)
		for _, st := range g.states {
			if o.node.Step == planner.AggPartial {
				row = append(row, st.Intermediate())
			} else {
				row = append(row, st.Final())
			}
		}
		pb.AppendRow(row)
	}
	return pb.Build(), nil
}

func (o *aggregateOperator) Close() error { return o.child.Close() }
