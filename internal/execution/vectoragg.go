package execution

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"prestolite/internal/block"
	"prestolite/internal/execution/vector"
	"prestolite/internal/expr"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
	"prestolite/internal/types"
)

// newAggOp picks the aggregation implementation for a plan node: the
// vectorized operator when the shape fits its kernels, otherwise the
// row-at-a-time reference operator. Both honor the same memory accounting,
// spill format and intermediate-value contracts, so the choice is invisible
// to the rest of the plan.
func newAggOp(ctx *Context, node *planner.Aggregate, child Operator) (Operator, error) {
	if vectorAggEligible(ctx, node) {
		return newVectorAggOperator(ctx, node, child, newOpMem("hash aggregation", ctx))
	}
	return newAggregateOperator(node, child, newOpMem("hash aggregation", ctx))
}

// Adaptive partial aggregation: a partial step that observes almost no
// reduction — nearly every input row opens a new group — stops hashing and
// streams the rest of its input through in intermediate layout, leaving the
// single hash pass to the final step. High-cardinality group-bys otherwise
// pay for two full hash passes around the repartition exchange, which is
// exactly the partial/final split's overhead when it cannot help.
const (
	// partialBypassMinRows is how much input the partial hashes before the
	// reduction ratio is trusted (Context.PartialAggBypassRows overrides).
	// Small enough that a partial fed a few thin splits still gets to
	// decide, large enough that early duplicates keep a reducing partial
	// hashing.
	partialBypassMinRows = 512
	// partialBypassNum/partialBypassDen: bypass when
	// groups/rows >= Num/Den, i.e. the partial kept under 20% of its input.
	partialBypassNum = 8
	partialBypassDen = 10
)

// partialBypassRows resolves the bypass trigger threshold: the number of
// input rows to hash before checking the reduction ratio, or -1 when the
// bypass is disabled.
func partialBypassRows(ctx *Context) int {
	switch {
	case ctx.PartialAggBypassRows < 0:
		return -1
	case ctx.PartialAggBypassRows > 0:
		return ctx.PartialAggBypassRows
	}
	return partialBypassMinRows
}

// vectorAggEligible gates the vectorized aggregation: grouped (a global
// aggregate is one constant-size state — nothing to vectorize), scalar key
// types, and every aggregate covered by a typed kernel. DISTINCT and
// approx_distinct stay on the reference path.
func vectorAggEligible(ctx *Context, node *planner.Aggregate) bool {
	if ctx.DisableVectorized || len(node.GroupBy) == 0 {
		return false
	}
	childCols := node.Child.Outputs()
	for _, ch := range node.GroupBy {
		if !vector.Supported(childCols[ch].Type) {
			return false
		}
	}
	for _, a := range node.Aggs {
		if a.Distinct || len(a.Args) > 1 {
			return false
		}
		if _, ok := vector.NewAgg(a.FuncName, aggArgType(a)); !ok {
			return false
		}
	}
	return true
}

// aggArgType is the aggregate's raw argument type, nil for count(*).
func aggArgType(a planner.Aggregation) *types.Type {
	if len(a.ArgTypes) == 0 {
		return nil
	}
	return a.ArgTypes[0]
}

// vectorAggOperator is hash aggregation over the vector kernels: pages are
// hashed in batch, group ids assigned through the open-addressing
// GroupTable, and per-group state lives in flat typed slices updated a
// column at a time. It implements the same three step modes, memory
// accounting and spill protocol as aggregateOperator — including writing
// the identical key-sorted spill schema, so both operators share aggMerger
// for the post-spill streaming merge.
type vectorAggOperator struct {
	node  *planner.Aggregate
	child Operator
	fns   []*expr.AggregateFunction // row-engine states, used by the spill merge
	aggs  []vector.Agg
	table *vector.GroupTable
	mem   *opMem

	hasher   vector.Hasher
	hashes   []uint64
	ids      []int32
	keyViews []*vector.View
	keyKinds []vector.Kind
	argViews []*vector.View
	argKinds []vector.Kind

	consumed bool
	emitFrom int

	// Adaptive partial aggregation state: rowsIn counts consumed input
	// rows; bypass flips when the reduction ratio check fails, after which
	// consume returns early and, once the hashed groups have drained,
	// passing streams the remaining input through untouched.
	bypassRows int
	rowsIn     int
	bypass     bool
	passing    bool

	chargedGroups   int
	chargedKeyBytes int64
	runs            []*resource.Run
	merger          *aggMerger
}

func newVectorAggOperator(ctx *Context, node *planner.Aggregate, child Operator, mem *opMem) (Operator, error) {
	childCols := node.Child.Outputs()
	keyTypes := make([]*types.Type, len(node.GroupBy))
	keyKinds := make([]vector.Kind, len(node.GroupBy))
	for i, ch := range node.GroupBy {
		keyTypes[i] = childCols[ch].Type
		keyKinds[i], _ = vector.KindOf(keyTypes[i])
	}
	table, ok := vector.NewGroupTable(keyTypes)
	if !ok {
		return nil, fmt.Errorf("execution: vector aggregation over unsupported key types")
	}
	o := &vectorAggOperator{
		node:       node,
		child:      child,
		mem:        mem,
		table:      table,
		bypassRows: partialBypassRows(ctx),
		keyKinds:   keyKinds,
		keyViews:   newViews(len(node.GroupBy)),
		argViews:   newViews(len(node.Aggs)),
		argKinds:   make([]vector.Kind, len(node.Aggs)),
	}
	for _, a := range node.Aggs {
		fn, err := expr.ResolveAggregate(a.FuncName, a.ArgTypes)
		if err != nil {
			return nil, err
		}
		o.fns = append(o.fns, fn)
		agg, ok := vector.NewAgg(a.FuncName, aggArgType(a))
		if !ok {
			return nil, fmt.Errorf("execution: vector aggregation has no kernel for %s", a.FuncName)
		}
		o.aggs = append(o.aggs, agg)
	}
	for i, a := range node.Aggs {
		if node.Step != planner.AggFinal && len(a.Args) == 1 {
			o.argKinds[i], _ = vector.KindOf(a.ArgTypes[0])
		}
	}
	return o, nil
}

func newViews(n int) []*vector.View {
	vs := make([]*vector.View, n)
	for i := range vs {
		vs[i] = &vector.View{}
	}
	return vs
}

func (o *vectorAggOperator) Next() (*block.Page, error) {
	if !o.consumed {
		if err := o.consume(); err != nil {
			return nil, err
		}
		o.consumed = true
	}
	if o.merger != nil {
		return o.merger.next()
	}
	if o.passing {
		return o.passNext()
	}
	p, err := o.emitNext()
	if o.bypass && errors.Is(err, io.EOF) {
		// The groups hashed before the bypass tripped have all been
		// emitted (they are valid partials; the final step merges them with
		// the pass-through rows). Stream the rest of the input through.
		o.passing = true
		return o.passNext()
	}
	return p, err
}

// viewOf fills v from b, falling back to boxed materialization for exotic
// encodings the typed views reject.
func viewOf(b block.Block, k vector.Kind, n int, v *vector.View) error {
	if vector.Of(b, v) {
		return nil
	}
	if !vector.Materialize(b, k, n, v) {
		return fmt.Errorf("execution: block %T does not match its declared column type", b)
	}
	return nil
}

func (o *vectorAggOperator) consume() error {
	for {
		p, err := o.child.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n := p.Count()
		if n == 0 {
			continue
		}
		if cap(o.hashes) < n {
			o.hashes = make([]uint64, n)
			o.ids = make([]int32, n)
		}
		hashes, ids := o.hashes[:n], o.ids[:n]
		o.hasher.HashPage(p, o.node.GroupBy, hashes)
		for i, ch := range o.node.GroupBy {
			if err := viewOf(p.Blocks[ch], o.keyKinds[i], n, o.keyViews[i]); err != nil {
				return err
			}
		}
		o.table.Assign(o.keyViews, n, hashes, ids)
		after := o.table.Len()
		for i, a := range o.node.Aggs {
			agg := o.aggs[i]
			agg.Grow(after)
			if o.node.Step == planner.AggFinal {
				// The input channel holds the intermediate value.
				if err := agg.AddIntermediate(ids, p.Blocks[a.Args[0]], n); err != nil {
					return err
				}
				continue
			}
			if len(a.Args) == 0 {
				agg.AddRaw(ids, nil, n)
				continue
			}
			if err := viewOf(p.Blocks[a.Args[0]], o.argKinds[i], n, o.argViews[i]); err != nil {
				return err
			}
			agg.AddRaw(ids, o.argViews[i], n)
		}
		if err := o.chargeGrowth(after); err != nil {
			return err
		}
		// Adaptive partial aggregation: once enough input has been hashed,
		// a partial that is not reducing (almost one group per row) stops
		// consuming — Next drains the hashed groups, then streams the rest
		// of the input through in intermediate layout. Spilled operators
		// never bypass: their emission already belongs to the run merger.
		if o.bypassRows >= 0 && o.node.Step == planner.AggPartial && len(o.runs) == 0 {
			o.rowsIn += n
			if o.rowsIn >= o.bypassRows && o.table.Len()*partialBypassDen >= o.rowsIn*partialBypassNum {
				o.bypass = true
				return nil
			}
		}
	}
	if len(o.runs) > 0 {
		// Spilled at least once: flush the remainder as the last sorted run
		// and hand emission over to the streaming merge.
		if err := o.spillGroups(); err != nil {
			return err
		}
		o.merger = newAggMerger(o.node, o.fns)
		return o.merger.open(o.runs)
	}
	return nil
}

// chargeGrowth accounts the page's new groups (same per-group costs as the
// row operator, charged per batch instead of per row). A refused reservation
// flushes the whole table to a sorted run — including the groups just
// assigned, so unlike the row path nothing is re-reserved afterwards.
func (o *vectorAggOperator) chargeGrowth(groups int) error {
	keyBytes := o.table.KeyBytes()
	cost := int64(groups-o.chargedGroups)*(aggGroupBaseCost+int64(len(o.aggs))*aggStateCost) +
		(keyBytes - o.chargedKeyBytes)
	o.chargedGroups, o.chargedKeyBytes = groups, keyBytes
	if cost <= 0 {
		return nil
	}
	ok, err := o.mem.reserve(cost)
	if err != nil {
		return err
	}
	if !ok {
		return o.spillGroups()
	}
	return nil
}

// spillGroups writes every group to one key-sorted run (the aggMerger wire
// format) and resets the table and aggregator state, freeing their memory.
func (o *vectorAggOperator) spillGroups() error {
	ng := o.table.Len()
	if ng == 0 {
		return nil
	}
	nk := len(o.node.GroupBy)
	// Box and encode each group's key, then sort ids by encoded key so the
	// read-back merge can align equal groups across runs with plain cursors.
	enc := make([]string, ng)
	keyVals := make([]any, nk)
	var buf []byte
	for g := 0; g < ng; g++ {
		o.table.KeyValues(g, keyVals)
		buf = appendGroupKey(buf[:0], keyVals)
		enc[g] = string(buf)
	}
	order := make([]int, ng)
	for g := range order {
		order[g] = g
	}
	sort.Slice(order, func(i, j int) bool { return enc[order[i]] < enc[order[j]] })

	w, err := o.mem.newRun("agg")
	if err != nil {
		return err
	}
	ts := aggSpillTypes(o.node, o.fns)
	row := make([]any, len(ts))
	for off := 0; off < ng; off += spillPageRows {
		end := min(off+spillPageRows, ng)
		pb := block.NewPageBuilder(ts)
		for _, g := range order[off:end] {
			o.table.KeyValues(g, row[:nk])
			for i, agg := range o.aggs {
				row[nk+i] = agg.IntermediateValue(g)
			}
			pb.AppendRow(row)
		}
		if err := w.WritePage(pb.Build()); err != nil {
			w.Abandon()
			return o.mem.fail(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	o.runs = append(o.runs, run)
	o.mem.addSpilled(run.Bytes())
	o.table.Reset()
	for _, agg := range o.aggs {
		agg.Reset()
	}
	o.chargedGroups, o.chargedKeyBytes = 0, 0
	o.mem.releaseAll()
	return nil
}

// emitNext streams the in-memory result a page at a time, building each
// column directly from the table's key stores and the aggregators' state
// slices — no per-row boxing on the way out.
func (o *vectorAggOperator) emitNext() (*block.Page, error) {
	ng := o.table.Len()
	if o.emitFrom >= ng {
		return nil, io.EOF
	}
	from := o.emitFrom
	to := min(from+spillPageRows, ng)
	o.emitFrom = to
	nk := len(o.node.GroupBy)
	blocks := make([]block.Block, nk+len(o.aggs))
	for c := 0; c < nk; c++ {
		blocks[c] = o.table.KeyBlock(c, from, to)
	}
	for i, agg := range o.aggs {
		if o.node.Step == planner.AggPartial {
			blocks[nk+i] = agg.EmitIntermediate(from, to)
		} else {
			blocks[nk+i] = agg.EmitFinal(from, to)
		}
	}
	return &block.Page{Blocks: blocks, N: to - from}, nil
}

// passNext streams the post-bypass remainder of the input: each child page
// becomes one intermediate-layout page with no grouping at all.
func (o *vectorAggOperator) passNext() (*block.Page, error) {
	for {
		p, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		if n := p.Count(); n > 0 {
			return o.passThrough(p, n)
		}
	}
}

// passThrough converts one raw page to the partial output layout by
// treating every row as its own group: key columns pass through unchanged
// and each aggregate's intermediate column is produced by a single AddRaw
// over identity group ids. Fresh aggregator instances per page keep the
// emitted blocks from aliasing state slices that the next page would
// overwrite — exchange sinks buffer emitted pages.
func (o *vectorAggOperator) passThrough(p *block.Page, n int) (*block.Page, error) {
	if cap(o.ids) < n {
		o.ids = make([]int32, n)
	}
	ids := o.ids[:n]
	for i := range ids {
		ids[i] = int32(i)
	}
	nk := len(o.node.GroupBy)
	blocks := make([]block.Block, nk+len(o.node.Aggs))
	for i, ch := range o.node.GroupBy {
		blocks[i] = p.Blocks[ch]
	}
	for i, a := range o.node.Aggs {
		agg, ok := vector.NewAgg(a.FuncName, aggArgType(a))
		if !ok {
			return nil, fmt.Errorf("execution: vector aggregation has no kernel for %s", a.FuncName)
		}
		agg.Grow(n)
		if len(a.Args) == 0 {
			agg.AddRaw(ids, nil, n)
		} else {
			if err := viewOf(p.Blocks[a.Args[0]], o.argKinds[i], n, o.argViews[i]); err != nil {
				return nil, err
			}
			agg.AddRaw(ids, o.argViews[i], n)
		}
		blocks[nk+i] = agg.EmitIntermediate(0, n)
	}
	return &block.Page{Blocks: blocks, N: n}, nil
}

func (o *vectorAggOperator) Close() error {
	var errs []error
	if o.merger != nil {
		errs = append(errs, o.merger.close())
	}
	for _, r := range o.runs {
		r.Remove()
	}
	o.runs = nil
	o.mem.releaseAll()
	errs = append(errs, o.child.Close())
	return errors.Join(errs...)
}
