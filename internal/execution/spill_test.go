package execution

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
	"prestolite/internal/types"
)

// spillEnv builds a capped query pool plus a spill manager rooted in a test
// temp dir, and registers a leak check: when the test ends no run may be
// live and no reservation may be held.
func spillEnv(t *testing.T, limit int64) (*resource.Pool, *resource.SpillManager) {
	t.Helper()
	pool := resource.NewPool("query", limit)
	mgr, err := resource.NewSpillManager(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if runs := mgr.LiveRuns(); len(runs) != 0 {
			t.Errorf("leaked spill runs: %v", runs)
		}
		if got := pool.Reserved(); got != 0 {
			t.Errorf("leaked reservation: %d bytes", got)
		}
	})
	return pool, mgr
}

// twoColPages generates deterministic (key, seq) pages: keys cycle with
// duplicates so sorts exercise stability and aggregations have real groups.
func twoColPages(rows, perPage, keyMod int) []*block.Page {
	var pages []*block.Page
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Bigint})
	n := 0
	for i := 0; i < rows; i++ {
		// Simple LCG-ish scatter so input is far from sorted.
		k := int64((i*2654435761 + 7) % keyMod)
		pb.AppendRow([]any{k, int64(i)})
		n++
		if n == perPage {
			pages = append(pages, pb.Build())
			pb = block.NewPageBuilder([]*types.Type{types.Bigint, types.Bigint})
			n = 0
		}
	}
	if n > 0 {
		pages = append(pages, pb.Build())
	}
	return pages
}

func drainRows(t *testing.T, op Operator) [][]any {
	t.Helper()
	pages, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]any
	for _, p := range pages {
		for i := 0; i < p.Count(); i++ {
			rows = append(rows, p.Row(i))
		}
	}
	return rows
}

func sortedMultiset(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func twoColValues() *planner.Values {
	return &planner.Values{Cols: []planner.Column{
		{Name: "k", Type: types.Bigint}, {Name: "seq", Type: types.Bigint},
	}}
}

func TestSortSpillEquivalence(t *testing.T) {
	node := &planner.Sort{Child: twoColValues(), Keys: []planner.SortKey{{Channel: 0}}}
	input := twoColPages(4000, 128, 50)

	baseline := drainRows(t, newSortOperator(node, &pagesOperator{pages: input}, &opMem{op: "test"}))

	pool, mgr := spillEnv(t, 8<<10) // far below the ~64KB the buffer needs
	op := newSortOperator(node, &pagesOperator{pages: input}, &opMem{op: "test", pool: pool, spill: mgr})
	got := drainRows(t, op)

	// External sort must reproduce the in-memory order exactly — including
	// the stable tie-break on the seq column within duplicate keys.
	if !reflect.DeepEqual(got, baseline) {
		t.Fatalf("spilled sort diverged: %d vs %d rows (first diff at %d)",
			len(got), len(baseline), firstDiff(got, baseline))
	}
	if pool.Spilled() == 0 {
		t.Fatal("sort never spilled despite the tiny limit")
	}
}

func firstDiff(a, b [][]any) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if !reflect.DeepEqual(a[i], b[i]) {
			return i
		}
	}
	return -1
}

func joinNode(kind planner.JoinKind) *planner.Join {
	return &planner.Join{
		Kind: kind,
		Left: &planner.Values{Cols: []planner.Column{
			{Name: "lk", Type: types.Bigint}, {Name: "lseq", Type: types.Bigint},
		}},
		Right: &planner.Values{Cols: []planner.Column{
			{Name: "rk", Type: types.Bigint}, {Name: "rseq", Type: types.Bigint},
		}},
		LeftKeys: []int{0}, RightKeys: []int{0},
	}
}

func testJoinSpill(t *testing.T, kind planner.JoinKind) {
	t.Helper()
	node := joinNode(kind)
	// Probe keys 0..99, build keys 0..49: LEFT joins have unmatched rows.
	probe := twoColPages(1500, 96, 100)
	build := twoColPages(3000, 96, 50)

	baseline := drainRows(t, newJoinOperator(node,
		&pagesOperator{pages: probe}, &pagesOperator{pages: build}, &opMem{op: "test"}))

	pool, mgr := spillEnv(t, 8<<10)
	op := newJoinOperator(node,
		&pagesOperator{pages: probe}, &pagesOperator{pages: build},
		&opMem{op: "test", pool: pool, spill: mgr})
	got := drainRows(t, op)

	// Hash-join output order is unspecified; compare as multisets.
	if !reflect.DeepEqual(sortedMultiset(got), sortedMultiset(baseline)) {
		t.Fatalf("spilled join diverged: %d vs %d rows", len(got), len(baseline))
	}
	if pool.Spilled() == 0 {
		t.Fatal("join never spilled despite the tiny limit")
	}
}

func TestInnerJoinSpillEquivalence(t *testing.T) { testJoinSpill(t, planner.JoinInner) }
func TestLeftJoinSpillEquivalence(t *testing.T)  { testJoinSpill(t, planner.JoinLeft) }

func aggNode() *planner.Aggregate {
	return &planner.Aggregate{
		Child:   twoColValues(),
		GroupBy: []int{0},
		Aggs: []planner.Aggregation{{
			FuncName: "sum", Args: []int{1}, ArgTypes: []*types.Type{types.Bigint},
			OutputName: "s", InterType: types.Bigint, FinalType: types.Bigint,
		}},
		Step: planner.AggSingle,
	}
}

func TestAggregateSpillEquivalence(t *testing.T) {
	input := twoColPages(4000, 128, 600) // 600 groups: real hash-table pressure

	base, err := newAggregateOperator(aggNode(), &pagesOperator{pages: input}, &opMem{op: "test"})
	if err != nil {
		t.Fatal(err)
	}
	baseline := drainRows(t, base)

	pool, mgr := spillEnv(t, 24<<10)
	op, err := newAggregateOperator(aggNode(), &pagesOperator{pages: input},
		&opMem{op: "test", pool: pool, spill: mgr})
	if err != nil {
		t.Fatal(err)
	}
	got := drainRows(t, op)

	// Group emission order may differ after a spill/merge round trip;
	// compare group → sum as sets.
	if !reflect.DeepEqual(sortedMultiset(got), sortedMultiset(baseline)) {
		t.Fatalf("spilled aggregation diverged: %d vs %d groups", len(got), len(baseline))
	}
	if pool.Spilled() == 0 {
		t.Fatal("aggregation never spilled despite the tiny limit")
	}
}

// Satellite (a): hash aggregation must respect the memory limit through the
// same accounting path as join and sort — no spill manager, tiny limit, and
// a many-group aggregation must fail typed instead of buffering unbounded.
func TestAggregateEnforcesLimitWithoutSpill(t *testing.T) {
	pool := resource.NewPool("query", 4<<10)
	op, err := newAggregateOperator(aggNode(), &pagesOperator{pages: twoColPages(4000, 128, 600)},
		&opMem{op: "hash aggregation", pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Drain(op)
	var insufficient ErrInsufficientResources
	if !errors.As(err, &insufficient) {
		t.Fatalf("want ErrInsufficientResources, got %v", err)
	}
	if !errors.Is(err, resource.ErrPoolExhausted) {
		t.Fatalf("cause should be pool exhaustion, got %v", err)
	}
	if got := pool.Reserved(); got != 0 {
		t.Fatalf("failed aggregation leaked %d bytes", got)
	}
}

// Satellite (b), operator level: abandoning a spilled operator mid-stream
// (query cancel) must remove its runs and release its reservations.
func TestSpillRunsCleanedOnEarlyClose(t *testing.T) {
	node := &planner.Sort{Child: twoColValues(), Keys: []planner.SortKey{{Channel: 0}}}
	pool, mgr := spillEnv(t, 8<<10)
	op := newSortOperator(node, &pagesOperator{pages: twoColPages(4000, 128, 50)},
		&opMem{op: "test", pool: pool, spill: mgr})
	if _, err := op.Next(); err != nil {
		t.Fatal(err)
	}
	if len(mgr.LiveRuns()) == 0 {
		t.Fatal("sort should have live spill runs mid-stream")
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	// spillEnv's cleanup asserts LiveRuns and Reserved are both zero.
}
