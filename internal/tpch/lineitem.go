// Package tpch generates deterministic TPC-H LINEITEM data, used by the
// writer benchmarks (Figs 18-20: "when writing all columns of TPCH
// LINEITEM, the throughput gain is around 50%").
package tpch

import (
	"fmt"
	"math/rand"

	"prestolite/internal/block"
	"prestolite/internal/types"
)

// LineItemColumns is the LINEITEM schema (typed to the engine's type
// system; dates are varchar datestrs as in the warehouse tables).
var LineItemColumns = []struct {
	Name string
	Type *types.Type
}{
	{"l_orderkey", types.Bigint},
	{"l_partkey", types.Bigint},
	{"l_suppkey", types.Bigint},
	{"l_linenumber", types.Bigint},
	{"l_quantity", types.Double},
	{"l_extendedprice", types.Double},
	{"l_discount", types.Double},
	{"l_tax", types.Double},
	{"l_returnflag", types.Varchar},
	{"l_linestatus", types.Varchar},
	{"l_shipdate", types.Varchar},
	{"l_commitdate", types.Varchar},
	{"l_receiptdate", types.Varchar},
	{"l_shipinstruct", types.Varchar},
	{"l_shipmode", types.Varchar},
	{"l_comment", types.Varchar},
}

// ColumnNames returns the schema column names.
func ColumnNames() []string {
	out := make([]string, len(LineItemColumns))
	for i, c := range LineItemColumns {
		out[i] = c.Name
	}
	return out
}

// ColumnTypes returns the schema column types.
func ColumnTypes() []*types.Type {
	out := make([]*types.Type, len(LineItemColumns))
	for i, c := range LineItemColumns {
		out[i] = c.Type
	}
	return out
}

var (
	returnFlags   = []string{"R", "A", "N"}
	lineStatuses  = []string{"O", "F"}
	shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipModes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	commentWords  = []string{"carefully", "quickly", "final", "deposits", "requests", "furiously",
		"express", "regular", "ironic", "pending", "bold", "accounts", "packages", "theodolites"}
)

func date(r *rand.Rand) string {
	return fmt.Sprintf("%04d-%02d-%02d", 1992+r.Intn(7), 1+r.Intn(12), 1+r.Intn(28))
}

func comment(r *rand.Rand) string {
	n := 2 + r.Intn(6)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += commentWords[r.Intn(len(commentWords))]
	}
	return out
}

// GenerateRows produces n deterministic LINEITEM rows for a seed.
func GenerateRows(seed int64, n int) [][]any {
	r := rand.New(rand.NewSource(seed))
	rows := make([][]any, n)
	for i := range rows {
		quantity := float64(1 + r.Intn(50))
		price := quantity * (900 + float64(r.Intn(100000))/100)
		rows[i] = []any{
			int64(i/4 + 1),            // l_orderkey
			int64(r.Intn(200000) + 1), // l_partkey
			int64(r.Intn(10000) + 1),  // l_suppkey
			int64(i%4 + 1),            // l_linenumber
			quantity,                  // l_quantity
			price,                     // l_extendedprice
			float64(r.Intn(11)) / 100, // l_discount
			float64(r.Intn(9)) / 100,  // l_tax
			returnFlags[r.Intn(3)],    // l_returnflag
			lineStatuses[r.Intn(2)],   // l_linestatus
			date(r),                   // l_shipdate
			date(r),                   // l_commitdate
			date(r),                   // l_receiptdate
			shipInstructs[r.Intn(4)],  // l_shipinstruct
			shipModes[r.Intn(7)],      // l_shipmode
			comment(r),                // l_comment
		}
	}
	return rows
}

// GeneratePage produces one page of n LINEITEM rows.
func GeneratePage(seed int64, n int) *block.Page {
	pb := block.NewPageBuilder(ColumnTypes())
	for _, row := range GenerateRows(seed, n) {
		pb.AppendRow(row)
	}
	return pb.Build()
}
