package tpch

import (
	"reflect"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateRows(7, 100)
	b := GenerateRows(7, 100)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed should generate identical rows")
	}
	c := GenerateRows(8, 100)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should differ")
	}
}

func TestRowShapeAndDomains(t *testing.T) {
	rows := GenerateRows(1, 1000)
	if len(rows) != 1000 {
		t.Fatalf("rows = %d", len(rows))
	}
	flags := map[string]bool{"R": true, "A": true, "N": true}
	for i, r := range rows {
		if len(r) != len(LineItemColumns) {
			t.Fatalf("row %d has %d values", i, len(r))
		}
		if r[0].(int64) < 1 || r[3].(int64) < 1 || r[3].(int64) > 4 {
			t.Errorf("row %d keys: %v %v", i, r[0], r[3])
		}
		q := r[4].(float64)
		if q < 1 || q > 50 {
			t.Errorf("row %d quantity = %v", i, q)
		}
		if d := r[6].(float64); d < 0 || d > 0.10 {
			t.Errorf("row %d discount = %v", i, d)
		}
		if !flags[r[8].(string)] {
			t.Errorf("row %d returnflag = %v", i, r[8])
		}
		if len(r[10].(string)) != 10 { // YYYY-MM-DD
			t.Errorf("row %d shipdate = %v", i, r[10])
		}
	}
}

func TestGeneratePage(t *testing.T) {
	p := GeneratePage(3, 500)
	if p.Count() != 500 || len(p.Blocks) != len(LineItemColumns) {
		t.Fatalf("page %d x %d", p.Count(), len(p.Blocks))
	}
	names := ColumnNames()
	typesOf := ColumnTypes()
	if names[0] != "l_orderkey" || typesOf[4].String() != "double" {
		t.Errorf("schema accessors wrong: %v %v", names[0], typesOf[4])
	}
}
