// Package fsys defines the FileSystem SPI the columnar readers and the hive
// connector use. Implementations: Local (this package), the simulated HDFS
// NameNode (internal/hdfs) and PrestoS3FileSystem (internal/s3) — the
// heterogeneous storage backends of §IV/§VII/§IX.
package fsys

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileInfo describes one file.
type FileInfo struct {
	Path string
	Size int64
}

// File supports random-access reads (the readers seek to footers and column
// chunks).
type File interface {
	io.ReaderAt
	io.Closer
	Size() int64
}

// Syncer is implemented by writers that can force buffered data to stable
// storage. *os.File (what Local.Create returns) satisfies it; wrappers that
// inject faults or buffer in memory implement it explicitly.
type Syncer interface {
	Sync() error
}

// Sync flushes w to stable storage if it supports it. Writers without a
// durability boundary (in-memory filesystems) are already "stable"; for them
// Sync is a no-op success — callers get a uniform durability call site.
func Sync(w io.Writer) error {
	if s, ok := w.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// FileSystem abstracts a (possibly remote) store of immutable files.
type FileSystem interface {
	// ListFiles lists the files directly under dir, sorted by path. This is
	// the call the file-list cache (§VII.A) fronts.
	ListFiles(dir string) ([]FileInfo, error)
	// Open opens a file for random-access reads.
	Open(path string) (File, error)
	// GetFileInfo stats one file. This is the call the file-handle cache
	// (§VII.B) fronts.
	GetFileInfo(path string) (FileInfo, error)
	// Create opens a new file for sequential writing, creating parent
	// directories as needed.
	Create(path string) (io.WriteCloser, error)
}

// ---------------------------------------------------------------------------
// Local filesystem.

// Local stores files under a root directory on the OS filesystem.
type Local struct {
	Root string
}

// NewLocal creates a Local filesystem rooted at root.
func NewLocal(root string) *Local { return &Local{Root: root} }

func (l *Local) resolve(path string) string {
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, "/")))
}

// ListFiles implements FileSystem.
func (l *Local) ListFiles(dir string) ([]FileInfo, error) {
	entries, err := os.ReadDir(l.resolve(dir))
	if err != nil {
		return nil, fmt.Errorf("fsys: list %s: %w", dir, err)
	}
	var out []FileInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		out = append(out, FileInfo{Path: strings.TrimSuffix(dir, "/") + "/" + e.Name(), Size: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Open implements FileSystem.
func (l *Local) Open(path string) (File, error) {
	f, err := os.Open(l.resolve(path))
	if err != nil {
		return nil, fmt.Errorf("fsys: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // already failing: the Stat error is the one to report
		return nil, err
	}
	return &localFile{File: f, size: st.Size()}, nil
}

// GetFileInfo implements FileSystem.
func (l *Local) GetFileInfo(path string) (FileInfo, error) {
	st, err := os.Stat(l.resolve(path))
	if err != nil {
		return FileInfo{}, fmt.Errorf("fsys: stat %s: %w", path, err)
	}
	return FileInfo{Path: path, Size: st.Size()}, nil
}

// Create implements FileSystem.
func (l *Local) Create(path string) (io.WriteCloser, error) {
	full := l.resolve(path)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(full)
	if err != nil {
		return nil, fmt.Errorf("fsys: create %s: %w", path, err)
	}
	return f, nil
}

type localFile struct {
	*os.File
	size int64
}

func (f *localFile) Size() int64 { return f.size }

// ---------------------------------------------------------------------------
// In-memory helpers shared by simulators and tests.

// BytesFile is a File over a byte slice.
type BytesFile struct {
	Data []byte
}

// ReadAt implements io.ReaderAt.
func (b *BytesFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(b.Data)) {
		return 0, io.EOF
	}
	n := copy(p, b.Data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Close implements io.Closer.
func (b *BytesFile) Close() error { return nil }

// Size implements File.
func (b *BytesFile) Size() int64 { return int64(len(b.Data)) }
