package fsys

import (
	"io"
	"testing"
)

func TestLocalRoundTrip(t *testing.T) {
	root := t.TempDir()
	fs := NewLocal(root)
	w, err := fs.Create("/warehouse/t/part-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := fs.GetFileInfo("/warehouse/t/part-0")
	if err != nil || info.Size != 5 {
		t.Fatalf("info = %v, %v", info, err)
	}
	files, err := fs.ListFiles("/warehouse/t")
	if err != nil || len(files) != 1 {
		t.Fatalf("files = %v, %v", files, err)
	}
	f, err := fs.Open("/warehouse/t/part-0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != 5 {
		t.Errorf("size = %d", f.Size())
	}
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 2); err != nil || string(buf) != "llo" {
		t.Fatalf("read = %q, %v", buf, err)
	}
	if _, err := fs.Open("/missing"); err == nil {
		t.Error("missing open accepted")
	}
	if _, err := fs.ListFiles("/missing"); err == nil {
		t.Error("missing list accepted")
	}
}

func TestLocalListSkipsDirs(t *testing.T) {
	root := t.TempDir()
	fs := NewLocal(root)
	for _, p := range []string{"/d/file1", "/d/sub/file2"} {
		w, _ := fs.Create(p)
		w.Write([]byte("x"))
		w.Close()
	}
	files, err := fs.ListFiles("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Path != "/d/file1" {
		t.Fatalf("files = %v", files)
	}
}

func TestBytesFile(t *testing.T) {
	f := &BytesFile{Data: []byte("0123456789")}
	if f.Size() != 10 {
		t.Errorf("size = %d", f.Size())
	}
	buf := make([]byte, 4)
	if n, err := f.ReadAt(buf, 3); err != nil || n != 4 || string(buf) != "3456" {
		t.Fatalf("read = %q, %d, %v", buf, n, err)
	}
	// Short read at the tail returns io.EOF.
	if n, err := f.ReadAt(buf, 8); err != io.EOF || n != 2 {
		t.Errorf("tail read = %d, %v", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("past-end read = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("close = %v", err)
	}
}
