package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// OperatorStats accumulates per-operator execution statistics. All fields
// are atomics so an HTTP handler can snapshot a task while its operators are
// running; recording is a handful of uncontended atomic adds (see
// bench_test.go — well under 20ns/op, cheap enough for the per-page hot
// loop).
type OperatorStats struct {
	rowsOut       atomic.Int64
	bytesOut      atomic.Int64
	wallNanos     atomic.Int64
	pages         atomic.Int64
	peakBatchRows atomic.Int64
	drivers       atomic.Int64

	id       int
	name     string
	childIDs []int
}

// AddDriver records one more concurrent driver instance feeding this
// operator's stats (intra-task parallelism); registration counts the first.
func (s *OperatorStats) AddDriver() { s.drivers.Add(1) }

// RecordPage accounts one output page.
func (s *OperatorStats) RecordPage(rows int, bytes int64) {
	s.pages.Add(1)
	s.rowsOut.Add(int64(rows))
	s.bytesOut.Add(bytes)
	r := int64(rows)
	for {
		cur := s.peakBatchRows.Load()
		if r <= cur || s.peakBatchRows.CompareAndSwap(cur, r) {
			return
		}
	}
}

// RecordWall adds wall-clock time spent inside the operator's Next (it is
// cumulative: a parent's wall time includes its children's).
func (s *OperatorStats) RecordWall(d time.Duration) {
	s.wallNanos.Add(int64(d))
}

// Recorder is the single-writer front end to an OperatorStats: the driving
// goroutine accumulates in plain fields (no atomics, ~2ns/page) and flushes
// to the shared atomics every flushEvery pages and at Flush. Concurrent
// snapshots of a *running* task may therefore lag by up to flushEvery-1
// pages; completed tasks are always exact because the operator wrapper
// flushes on EOF/error/Close.
type Recorder struct {
	stats *OperatorStats

	rows  int64
	bytes int64
	pages int64
	peak  int64
	wall  int64
}

const flushEvery = 64

// NewRecorder creates the recorder for one operator instance.
func NewRecorder(stats *OperatorStats) *Recorder { return &Recorder{stats: stats} }

// RecordPage accounts one output page.
func (r *Recorder) RecordPage(rows int, bytes int64) {
	r.pages++
	r.rows += int64(rows)
	r.bytes += bytes
	if int64(rows) > r.peak {
		r.peak = int64(rows)
	}
	if r.pages%flushEvery == 0 {
		r.Flush()
	}
}

// RecordWall adds wall-clock time spent inside the operator's Next.
func (r *Recorder) RecordWall(d time.Duration) { r.wall += int64(d) }

// Flush publishes the buffered deltas into the shared OperatorStats.
func (r *Recorder) Flush() {
	s := r.stats
	if r.rows != 0 {
		s.rowsOut.Add(r.rows)
		r.rows = 0
	}
	if r.bytes != 0 {
		s.bytesOut.Add(r.bytes)
		r.bytes = 0
	}
	if r.pages != 0 {
		s.pages.Add(r.pages)
		r.pages = 0
	}
	if r.wall != 0 {
		s.wallNanos.Add(r.wall)
		r.wall = 0
	}
	if r.peak > 0 {
		for {
			cur := s.peakBatchRows.Load()
			if r.peak <= cur || s.peakBatchRows.CompareAndSwap(cur, r.peak) {
				break
			}
		}
		r.peak = 0
	}
}

// OperatorStatsSnapshot is the wire/JSON form of one operator's statistics.
// RowsIn/BytesIn are derived at snapshot time from the operator's children
// (for leaves, input equals output: a scan's input is what it read).
type OperatorStatsSnapshot struct {
	ID            int
	Name          string
	RowsIn        int64
	BytesIn       int64
	RowsOut       int64
	BytesOut      int64
	WallNanos     int64
	Pages         int64
	PeakBatchRows int64
	// Tasks counts how many task-level snapshots were merged into this one
	// (1 for a single task; >1 after MergeSnapshots).
	Tasks int
	// Drivers counts the concurrent pipeline instances that recorded into
	// this operator, summed across merged tasks (a serial task contributes
	// 1, so drivers == tasks means no intra-task parallelism ran).
	Drivers int
}

// TaskStats collects the operator statistics of one running task.
// Registration (plan build time) takes a lock; recording is lock-free.
type TaskStats struct {
	mu  sync.Mutex
	ops []*OperatorStats
}

// NewTaskStats creates an empty stats sink.
func NewTaskStats() *TaskStats { return &TaskStats{} }

// Register adds an operator identified by its pre-order plan id. childIDs
// are the ids of the operator's plan children, used to derive input rows.
func (t *TaskStats) Register(id int, name string, childIDs []int) *OperatorStats {
	s := &OperatorStats{id: id, name: name, childIDs: append([]int(nil), childIDs...)}
	s.drivers.Store(1)
	t.mu.Lock()
	t.ops = append(t.ops, s)
	t.mu.Unlock()
	return s
}

// Snapshot captures all operators, sorted by id, with derived input rows.
// Safe to call while operators are still recording.
func (t *TaskStats) Snapshot() []OperatorStatsSnapshot {
	t.mu.Lock()
	ops := append([]*OperatorStats(nil), t.ops...)
	t.mu.Unlock()

	out := make([]OperatorStatsSnapshot, len(ops))
	byID := make(map[int]*OperatorStatsSnapshot, len(ops))
	for i, s := range ops {
		out[i] = OperatorStatsSnapshot{
			ID:            s.id,
			Name:          s.name,
			RowsOut:       s.rowsOut.Load(),
			BytesOut:      s.bytesOut.Load(),
			WallNanos:     s.wallNanos.Load(),
			Pages:         s.pages.Load(),
			PeakBatchRows: s.peakBatchRows.Load(),
			Tasks:         1,
			Drivers:       int(s.drivers.Load()),
		}
		byID[s.id] = &out[i]
	}
	for i, s := range ops {
		if len(s.childIDs) == 0 {
			out[i].RowsIn = out[i].RowsOut
			out[i].BytesIn = out[i].BytesOut
			continue
		}
		for _, cid := range s.childIDs {
			if c, ok := byID[cid]; ok {
				out[i].RowsIn += c.RowsOut
				out[i].BytesIn += c.BytesOut
			}
		}
	}
	sortSnapshots(out)
	return out
}

func sortSnapshots(s []OperatorStatsSnapshot) {
	// Insertion sort: operator counts are tiny and this avoids pulling in
	// sort for a hot-free path.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// MergeSnapshots sums per-operator snapshots from multiple tasks that ran
// the same plan fragment (operators matched by id): rows, bytes, wall time
// and page counts add; peak batch rows takes the max.
func MergeSnapshots(tasks ...[]OperatorStatsSnapshot) []OperatorStatsSnapshot {
	merged := map[int]*OperatorStatsSnapshot{}
	var order []int
	for _, snap := range tasks {
		for _, op := range snap {
			m, ok := merged[op.ID]
			if !ok {
				cp := op
				merged[op.ID] = &cp
				order = append(order, op.ID)
				continue
			}
			m.RowsIn += op.RowsIn
			m.BytesIn += op.BytesIn
			m.RowsOut += op.RowsOut
			m.BytesOut += op.BytesOut
			m.WallNanos += op.WallNanos
			m.Pages += op.Pages
			m.Tasks += op.Tasks
			m.Drivers += op.Drivers
			if op.PeakBatchRows > m.PeakBatchRows {
				m.PeakBatchRows = op.PeakBatchRows
			}
		}
	}
	out := make([]OperatorStatsSnapshot, 0, len(order))
	for _, id := range order {
		out = append(out, *merged[id])
	}
	sortSnapshots(out)
	return out
}

// MetricsSource is implemented by components (connectors, caches) that can
// publish their metrics into a registry.
type MetricsSource interface {
	RegisterObsMetrics(r *Registry)
}
