package obs

import (
	"testing"
	"time"
)

// BenchmarkRecordPage is the benchmark guard for the operator hot loop: one
// Recorder.RecordPage call must stay well under ~20ns so instrumentation
// never regresses page processing (the statsOperator wrapper in
// internal/execution records through a Recorder). Run with:
//
//	go test -bench=Record -benchmem ./internal/obs/
var sinkStats OperatorStats

func BenchmarkRecordPage(b *testing.B) {
	r := NewRecorder(&sinkStats)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RecordPage(1024, 8192)
	}
}

func BenchmarkRecordWall(b *testing.B) {
	r := NewRecorder(&sinkStats)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RecordWall(time.Microsecond)
	}
}

// BenchmarkRecordPageDirect measures the unbatched atomic path (what a
// Recorder flush amortizes away).
func BenchmarkRecordPageDirect(b *testing.B) {
	s := &sinkStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.RecordPage(1024, 8192)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) & (1<<20 - 1) * time.Nanosecond)
	}
}
