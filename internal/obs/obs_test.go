package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_submitted")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d", c.Load())
	}
	if r.Counter("queries_submitted") != c {
		t.Fatal("Counter should return the same handle")
	}

	g := r.Gauge("queries_outstanding")
	g.Add(3)
	g.Add(-1)
	if g.Load() != 2 {
		t.Fatalf("gauge = %d", g.Load())
	}

	h := r.Histogram("query_wall")
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(3 * time.Microsecond)
	h.Observe(40 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("hist count = %d", snap.Count)
	}
	if snap.SumNanos != int64(500+3000+40_000_000) {
		t.Fatalf("hist sum = %d", snap.SumNanos)
	}
	if snap.P99 < int64(40*time.Millisecond) {
		t.Fatalf("p99 = %d, want >= 40ms bucket bound", snap.P99)
	}
}

func TestGaugeFuncAndJSON(t *testing.T) {
	r := NewRegistry()
	hits, misses := int64(9), int64(1)
	r.GaugeFunc("cache.hit_rate", func() float64 { return float64(hits) / float64(hits+misses) })
	r.Counter("tasks").Add(7)
	r.Histogram("lat").Observe(2 * time.Microsecond)

	var decoded Snapshot
	if err := json.Unmarshal(r.Snapshot().JSON(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Gauges["cache.hit_rate"] != 0.9 {
		t.Errorf("hit_rate = %v", decoded.Gauges["cache.hit_rate"])
	}
	if decoded.Counters["tasks"] != 7 {
		t.Errorf("tasks = %v", decoded.Counters["tasks"])
	}
	if decoded.Histograms["lat"].Count != 1 {
		t.Errorf("lat count = %v", decoded.Histograms["lat"].Count)
	}
}

// TestSnapshotUnderConcurrentWriters hammers a registry and a TaskStats from
// many goroutines while snapshotting: run with -race (make test-race); the
// invariant checked is that observed values never exceed what was written
// and final totals are exact.
func TestSnapshotUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	ts := NewTaskStats()
	const writers = 8
	const perWriter = 5000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshot readers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if v := snap.Counters["pages"]; v > writers*perWriter {
					t.Errorf("counter overshot: %d", v)
					return
				}
				for _, op := range ts.Snapshot() {
					if op.RowsOut > writers*perWriter*10 {
						t.Errorf("rows overshot: %d", op.RowsOut)
						return
					}
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			c := r.Counter("pages")
			h := r.Histogram("lat")
			op := ts.Register(w, "Scan", nil)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Nanosecond)
				op.RecordPage(10, 80)
				op.RecordWall(time.Microsecond)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	snap := r.Snapshot()
	if snap.Counters["pages"] != writers*perWriter {
		t.Errorf("pages = %d", snap.Counters["pages"])
	}
	if snap.Histograms["lat"].Count != writers*perWriter {
		t.Errorf("hist count = %d", snap.Histograms["lat"].Count)
	}
	ops := ts.Snapshot()
	if len(ops) != writers {
		t.Fatalf("ops = %d", len(ops))
	}
	for _, op := range ops {
		if op.RowsOut != perWriter*10 || op.Pages != perWriter {
			t.Errorf("op %d: rows=%d pages=%d", op.ID, op.RowsOut, op.Pages)
		}
		if op.PeakBatchRows != 10 {
			t.Errorf("op %d: peak=%d", op.ID, op.PeakBatchRows)
		}
	}
}

func TestTaskStatsDerivedInputs(t *testing.T) {
	ts := NewTaskStats()
	scan := ts.Register(2, "TableScan[t]", nil)
	filter := ts.Register(1, "Filter[x > 1]", []int{2})
	out := ts.Register(0, "Output[x]", []int{1})

	scan.RecordPage(100, 800)
	filter.RecordPage(40, 320)
	out.RecordPage(40, 320)

	snap := ts.Snapshot()
	if snap[0].ID != 0 || snap[1].ID != 1 || snap[2].ID != 2 {
		t.Fatalf("snapshot not sorted by id: %+v", snap)
	}
	if snap[2].RowsIn != 100 { // leaf: input == output
		t.Errorf("scan rows in = %d", snap[2].RowsIn)
	}
	if snap[1].RowsIn != 100 || snap[1].RowsOut != 40 {
		t.Errorf("filter in/out = %d/%d", snap[1].RowsIn, snap[1].RowsOut)
	}
	if snap[0].RowsIn != 40 {
		t.Errorf("output rows in = %d", snap[0].RowsIn)
	}
}

func TestRecorderFlushExactness(t *testing.T) {
	ts := NewTaskStats()
	op := ts.Register(0, "Scan", nil)
	rec := NewRecorder(op)
	const pages = flushEvery*3 + 17 // force partial tail
	for i := 0; i < pages; i++ {
		rec.RecordPage(10, 100)
		rec.RecordWall(time.Microsecond)
	}
	rec.Flush()
	snap := ts.Snapshot()[0]
	if snap.Pages != pages || snap.RowsOut != pages*10 || snap.BytesOut != pages*100 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.WallNanos != int64(pages)*int64(time.Microsecond) {
		t.Errorf("wall = %d", snap.WallNanos)
	}
	if snap.PeakBatchRows != 10 {
		t.Errorf("peak = %d", snap.PeakBatchRows)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := []OperatorStatsSnapshot{
		{ID: 0, Name: "Scan", RowsOut: 10, BytesOut: 80, WallNanos: 100, Pages: 1, PeakBatchRows: 10, Tasks: 1},
	}
	b := []OperatorStatsSnapshot{
		{ID: 0, Name: "Scan", RowsOut: 30, BytesOut: 240, WallNanos: 50, Pages: 2, PeakBatchRows: 20, Tasks: 1},
	}
	m := MergeSnapshots(a, b)
	if len(m) != 1 {
		t.Fatalf("merged = %+v", m)
	}
	op := m[0]
	if op.RowsOut != 40 || op.BytesOut != 320 || op.WallNanos != 150 || op.Pages != 3 {
		t.Errorf("sum wrong: %+v", op)
	}
	if op.PeakBatchRows != 20 {
		t.Errorf("peak = %d", op.PeakBatchRows)
	}
	if op.Tasks != 2 {
		t.Errorf("tasks = %d", op.Tasks)
	}
}
