// Package obs is the query observability subsystem: lock-cheap metric
// primitives (atomic counters, gauges, fixed-bucket latency histograms) in a
// named registry, snapshottable to JSON, plus per-task operator statistics
// (stats.go). The paper runs Presto "at scale" by watching it — the §VIII
// coordinator tracks task state and the gateway routes on live cluster
// statistics — so every layer of prestolite publishes into this package:
// operators record rows/bytes/wall time, workers and coordinators serve
// GET /v1/stats, and the gateway polls those snapshots to route queries to
// the least-loaded cluster.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reads the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move in both directions (e.g.
// outstanding queries, active tasks).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load reads the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: bucket i counts observations with
// ceil(log2(µs)) == i, i.e. exponential microsecond buckets 1µs, 2µs, 4µs,
// ... ~34s, with the last bucket absorbing everything larger.
const histBuckets = 26

// Histogram is a fixed-bucket latency histogram. Observe is wait-free: one
// atomic add per bucket plus sum/count, no allocation.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

func bucketIndex(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us) // 0 for <1µs, 1 for 1µs, ...
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpperBound returns the inclusive upper bound of bucket i in
// nanoseconds (the last bucket is unbounded, reported as -1).
func bucketUpperBound(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return int64(time.Microsecond) << i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// HistogramSnapshot is the JSON-friendly view of a histogram.
type HistogramSnapshot struct {
	Count    int64
	SumNanos int64
	// Buckets maps each bucket's upper bound in nanoseconds (-1 = +inf) to
	// its observation count; empty buckets are omitted.
	Buckets []HistogramBucket
	// P50/P95/P99 are bucket-upper-bound estimates in nanoseconds.
	P50 int64
	P95 int64
	P99 int64
}

// HistogramBucket is one (upper bound, count) pair.
type HistogramBucket struct {
	LENanos int64 // upper bound, -1 for the overflow bucket
	Count   int64
}

// Snapshot reads a consistent-enough view (each field individually atomic).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumNanos: h.sum.Load()}
	var counts [histBuckets]int64
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			counts[i] = n
			s.Buckets = append(s.Buckets, HistogramBucket{LENanos: bucketUpperBound(i), Count: n})
		}
	}
	s.P50 = quantile(counts[:], s.Count, 0.50)
	s.P95 = quantile(counts[:], s.Count, 0.95)
	s.P99 = quantile(counts[:], s.Count, 0.99)
	return s
}

// quantile estimates a quantile as the upper bound of the bucket containing
// the q-th observation.
func quantile(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range counts {
		seen += n
		if seen >= rank {
			if ub := bucketUpperBound(i); ub >= 0 {
				return ub
			}
			return int64(time.Microsecond) << (histBuckets - 1)
		}
	}
	return 0
}

// Registry is a named collection of metrics. Lookup (Counter, Gauge, ...)
// takes a lock and should be done once at setup; the returned handles are
// then lock-free on the hot path.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		hists:      map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a computed gauge (e.g. a cache hit rate derived from
// existing atomics); fn is called at snapshot time.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is the JSON document served at /v1/stats.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures every metric. Values move while the snapshot is taken
// (writers never block), but each metric is individually consistent.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = float64(g.Load())
	}
	for name, fn := range r.gaugeFuncs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// CacheSection renders the cache-related gauges of the snapshot as an
// indented "Cache:" block ("" when there are none) — appended to EXPLAIN
// ANALYZE output so cache effectiveness shows up next to the operators it
// accelerates.
func (s Snapshot) CacheSection() string {
	var keys []string
	for k := range s.Gauges {
		if strings.Contains(k, "cache") {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("Cache:\n")
	for _, k := range keys {
		v := s.Gauges[k]
		if strings.HasSuffix(k, "hit_rate") {
			fmt.Fprintf(&sb, "    %s: %.2f\n", k, v)
		} else {
			fmt.Fprintf(&sb, "    %s: %.0f\n", k, v)
		}
	}
	return sb.String()
}

// JSON marshals the snapshot (indented, stable key order via encoding/json).
func (s Snapshot) JSON() []byte {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot contains only maps of numbers; this cannot happen.
		return []byte("{}")
	}
	return data
}
