package types

import (
	"testing"
	"testing/quick"
)

func TestPrimitiveStrings(t *testing.T) {
	cases := map[*Type]string{
		Boolean: "boolean",
		Integer: "integer",
		Bigint:  "bigint",
		Double:  "double",
		Varchar: "varchar",
		Date:    "date",
		Unknown: "unknown",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestNestedString(t *testing.T) {
	typ := NewRow(
		Field{Name: "city_id", Type: Bigint},
		Field{Name: "tags", Type: NewArray(Varchar)},
		Field{Name: "metrics", Type: NewMap(Varchar, Double)},
		Field{Name: "geo", Type: NewRow(Field{Name: "lat", Type: Double}, Field{Name: "lng", Type: Double})},
	)
	want := "row(city_id bigint, tags array(varchar), metrics map(varchar, double), geo row(lat double, lng double))"
	if got := typ.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"bigint",
		"varchar",
		"array(bigint)",
		"array(array(double))",
		"map(varchar, double)",
		"map(bigint, array(varchar))",
		"row(a bigint, b varchar)",
		"row(base row(driver_uuid varchar, city_id bigint, status row(code bigint, msg varchar)), datestr varchar)",
	}
	for _, s := range cases {
		typ, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := typ.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
		again, err := Parse(typ.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", typ.String(), err)
		}
		if !typ.Equals(again) {
			t.Errorf("round trip of %q not Equals", s)
		}
	}
}

func TestParseAliases(t *testing.T) {
	if got := MustParse("int"); got != Integer {
		t.Errorf("int parsed to %v", got)
	}
	if got := MustParse("string"); got != Varchar {
		t.Errorf("string parsed to %v", got)
	}
	if got := MustParse("varchar(255)"); got != Varchar {
		t.Errorf("varchar(255) parsed to %v", got)
	}
	if got := MustParse("ROW(A BIGINT)"); got.Kind != KindRow || got.Fields[0].Name != "a" {
		t.Errorf("case-insensitive row parse failed: %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "frobnicate", "array(", "array(bigint", "map(bigint)", "row()", "bigint extra", "array()"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}

func TestEquals(t *testing.T) {
	a := NewRow(Field{Name: "X", Type: Bigint})
	b := NewRow(Field{Name: "x", Type: Bigint})
	if !a.Equals(b) {
		t.Error("row field names should compare case-insensitively")
	}
	if a.Equals(NewRow(Field{Name: "x", Type: Double})) {
		t.Error("different field types should not be equal")
	}
	if NewArray(Bigint).Equals(NewArray(Double)) {
		t.Error("array(bigint) != array(double)")
	}
	if NewMap(Varchar, Bigint).Equals(NewMap(Varchar, Double)) {
		t.Error("map value types differ")
	}
	var nilType *Type
	if Bigint.Equals(nilType) {
		t.Error("non-nil != nil")
	}
}

func TestFieldIndex(t *testing.T) {
	r := NewRow(Field{Name: "driver_uuid", Type: Varchar}, Field{Name: "city_id", Type: Bigint})
	if i := r.FieldIndex("city_id"); i != 1 {
		t.Errorf("FieldIndex(city_id) = %d", i)
	}
	if i := r.FieldIndex("CITY_ID"); i != 1 {
		t.Errorf("FieldIndex is case sensitive: %d", i)
	}
	if i := r.FieldIndex("nope"); i != -1 {
		t.Errorf("FieldIndex(nope) = %d", i)
	}
}

func TestCommonSuperType(t *testing.T) {
	cases := []struct {
		a, b, want *Type
	}{
		{Integer, Bigint, Bigint},
		{Bigint, Double, Double},
		{Integer, Double, Double},
		{Bigint, Bigint, Bigint},
		{Unknown, Varchar, Varchar},
		{Varchar, Unknown, Varchar},
		{Varchar, Bigint, nil},
		{Boolean, Double, nil},
	}
	for _, c := range cases {
		got := CommonSuperType(c.a, c.b)
		if (got == nil) != (c.want == nil) || (got != nil && !got.Equals(c.want)) {
			t.Errorf("CommonSuperType(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !Bigint.IsNumeric() || !Double.IsNumeric() || Varchar.IsNumeric() {
		t.Error("IsNumeric wrong")
	}
	if !Varchar.IsOrderable() || NewArray(Bigint).IsOrderable() {
		t.Error("IsOrderable wrong")
	}
	if !NewArray(Bigint).IsComparable() || NewMap(Varchar, Bigint).IsComparable() {
		t.Error("IsComparable wrong")
	}
	if !NewRow(Field{Name: "a", Type: Bigint}).IsComparable() {
		t.Error("row of comparable fields should be comparable")
	}
	if NewRow(Field{Name: "a", Type: NewMap(Varchar, Bigint)}).IsComparable() {
		t.Error("row containing map should not be comparable")
	}
	if !Bigint.IsPrimitive() || NewArray(Bigint).IsPrimitive() {
		t.Error("IsPrimitive wrong")
	}
}

// Property: any randomly generated type round-trips through String/Parse.
func TestQuickStringParseRoundTrip(t *testing.T) {
	gen := func(seed int64) bool {
		typ := randomType(seed, 3)
		parsed, err := Parse(typ.String())
		if err != nil {
			t.Logf("Parse(%q): %v", typ.String(), err)
			return false
		}
		return typ.Equals(parsed)
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomType builds a deterministic pseudo-random type from a seed.
func randomType(seed int64, depth int) *Type {
	next := func() int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := seed >> 33
		if v < 0 {
			v = -v
		}
		return v
	}
	prims := []*Type{Boolean, Integer, Bigint, Double, Varchar, Date}
	var build func(d int) *Type
	build = func(d int) *Type {
		if d <= 0 {
			return prims[next()%int64(len(prims))]
		}
		switch next() % 5 {
		case 0:
			return NewArray(build(d - 1))
		case 1:
			return NewMap(prims[next()%int64(len(prims))], build(d-1))
		case 2:
			n := int(next()%3) + 1
			fields := make([]Field, n)
			for i := range fields {
				fields[i] = Field{Name: string(rune('a' + i)), Type: build(d - 1)}
			}
			return NewRow(fields...)
		default:
			return prims[next()%int64(len(prims))]
		}
	}
	return build(depth)
}
