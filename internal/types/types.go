// Package types implements the SQL type system used across the engine:
// primitive types (BOOLEAN, INTEGER, BIGINT, DOUBLE, VARCHAR, DATE) and the
// nested types the paper's §V is about (ARRAY, MAP, ROW). ROW models the
// deeply nested structs the Parquet reader work targets.
package types

import (
	"fmt"
	"strings"
)

// Kind enumerates the SQL type kinds supported by the engine.
type Kind int

const (
	KindUnknown Kind = iota // the type of a bare NULL literal
	KindBoolean
	KindInteger
	KindBigint
	KindDouble
	KindVarchar
	KindDate
	KindArray
	KindMap
	KindRow
)

// Field is one named field of a ROW type.
type Field struct {
	Name string
	Type *Type
}

// Type describes a SQL type. Types are immutable after construction; the
// primitive types are package-level singletons so == works for primitives,
// while nested types compare with Equals.
type Type struct {
	Kind   Kind
	Elem   *Type   // array element type
	Key    *Type   // map key type
	Value  *Type   // map value type
	Fields []Field // row fields, in declaration order
}

// Primitive singletons.
var (
	Unknown = &Type{Kind: KindUnknown}
	Boolean = &Type{Kind: KindBoolean}
	Integer = &Type{Kind: KindInteger}
	Bigint  = &Type{Kind: KindBigint}
	Double  = &Type{Kind: KindDouble}
	Varchar = &Type{Kind: KindVarchar}
	Date    = &Type{Kind: KindDate}
)

// NewArray returns an array(elem) type.
func NewArray(elem *Type) *Type { return &Type{Kind: KindArray, Elem: elem} }

// NewMap returns a map(key, value) type.
func NewMap(key, value *Type) *Type { return &Type{Kind: KindMap, Key: key, Value: value} }

// NewRow returns a row(...) type with the given fields.
func NewRow(fields ...Field) *Type {
	return &Type{Kind: KindRow, Fields: fields}
}

// IsPrimitive reports whether t is a non-nested type.
func (t *Type) IsPrimitive() bool {
	switch t.Kind {
	case KindArray, KindMap, KindRow:
		return false
	}
	return true
}

// IsNumeric reports whether t supports arithmetic.
func (t *Type) IsNumeric() bool {
	switch t.Kind {
	case KindInteger, KindBigint, KindDouble:
		return true
	}
	return false
}

// IsOrderable reports whether values of t can be compared with < / >.
func (t *Type) IsOrderable() bool {
	switch t.Kind {
	case KindBoolean, KindInteger, KindBigint, KindDouble, KindVarchar, KindDate:
		return true
	}
	return false
}

// IsComparable reports whether values of t can be compared for equality.
func (t *Type) IsComparable() bool {
	switch t.Kind {
	case KindArray:
		return t.Elem.IsComparable()
	case KindMap:
		return false
	case KindRow:
		for _, f := range t.Fields {
			if !f.Type.IsComparable() {
				return false
			}
		}
		return true
	case KindUnknown:
		return true
	}
	return true
}

// FieldIndex returns the index of the named field of a ROW type, or -1.
// Field names are case-insensitive, matching SQL identifier semantics.
func (t *Type) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if strings.EqualFold(f.Name, name) {
			return i
		}
	}
	return -1
}

// Equals reports deep structural equality.
func (t *Type) Equals(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindArray:
		return t.Elem.Equals(o.Elem)
	case KindMap:
		return t.Key.Equals(o.Key) && t.Value.Equals(o.Value)
	case KindRow:
		if len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if !strings.EqualFold(t.Fields[i].Name, o.Fields[i].Name) || !t.Fields[i].Type.Equals(o.Fields[i].Type) {
				return false
			}
		}
		return true
	}
	return true
}

// String renders the type in SQL syntax, e.g. "map(varchar, double)" or
// "row(city_id bigint, geo row(lat double, lng double))".
func (t *Type) String() string {
	switch t.Kind {
	case KindUnknown:
		return "unknown"
	case KindBoolean:
		return "boolean"
	case KindInteger:
		return "integer"
	case KindBigint:
		return "bigint"
	case KindDouble:
		return "double"
	case KindVarchar:
		return "varchar"
	case KindDate:
		return "date"
	case KindArray:
		return "array(" + t.Elem.String() + ")"
	case KindMap:
		return "map(" + t.Key.String() + ", " + t.Value.String() + ")"
	case KindRow:
		var b strings.Builder
		b.WriteString("row(")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name)
			b.WriteByte(' ')
			b.WriteString(f.Type.String())
		}
		b.WriteByte(')')
		return b.String()
	}
	return fmt.Sprintf("invalid(%d)", int(t.Kind))
}

// CommonSuperType returns the type both a and b coerce to for comparison and
// arithmetic, or nil if none exists. unknown (NULL) coerces to anything;
// integer widens to bigint widens to double.
func CommonSuperType(a, b *Type) *Type {
	if a.Equals(b) {
		return a
	}
	if a.Kind == KindUnknown {
		return b
	}
	if b.Kind == KindUnknown {
		return a
	}
	rank := func(t *Type) int {
		switch t.Kind {
		case KindInteger:
			return 1
		case KindBigint:
			return 2
		case KindDouble:
			return 3
		}
		return 0
	}
	ra, rb := rank(a), rank(b)
	if ra > 0 && rb > 0 {
		if ra > rb {
			return a
		}
		return b
	}
	return nil
}

// Parse parses a SQL type string as produced by String. It is used by the
// metastore to persist schemas.
func Parse(s string) (*Type, error) {
	p := &typeParser{input: s}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("types: trailing input at %d in %q", p.pos, s)
	}
	return t, nil
}

// MustParse is Parse that panics; for tests and static schemas.
func MustParse(s string) *Type {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

type typeParser struct {
	input string
	pos   int
}

func (p *typeParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
}

func (p *typeParser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

func (p *typeParser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("types: expected %q at %d in %q", string(c), p.pos, p.input)
	}
	p.pos++
	return nil
}

func (p *typeParser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			p.pos++
			continue
		}
		break
	}
	return strings.ToLower(p.input[start:p.pos])
}

func (p *typeParser) parseType() (*Type, error) {
	name := p.ident()
	switch name {
	case "boolean":
		return Boolean, nil
	case "integer", "int":
		return Integer, nil
	case "bigint":
		return Bigint, nil
	case "double":
		return Double, nil
	case "varchar", "string":
		// accept varchar(n) and ignore the length, like the engine does
		p.skipSpace()
		if p.peek() == '(' {
			p.pos++
			p.ident()
			if err := p.expect(')'); err != nil {
				return nil, err
			}
		}
		return Varchar, nil
	case "date":
		return Date, nil
	case "unknown":
		return Unknown, nil
	case "array":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return NewArray(elem), nil
	case "map":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		key, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		val, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return NewMap(key, val), nil
	case "row":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var fields []Field
		for {
			fname := p.ident()
			if fname == "" {
				return nil, fmt.Errorf("types: expected field name at %d in %q", p.pos, p.input)
			}
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fields = append(fields, Field{Name: fname, Type: ft})
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return NewRow(fields...), nil
	case "":
		return nil, fmt.Errorf("types: empty type at %d in %q", p.pos, p.input)
	default:
		return nil, fmt.Errorf("types: unknown type %q in %q", name, p.input)
	}
}
