package s3

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"prestolite/internal/fault"
	"prestolite/internal/fsys"
)

// FileSystemConfig tunes PrestoS3FileSystem behavior; the ablation benches
// flip the optimizations off.
type FileSystemConfig struct {
	// LazySeek defers the ranged GET until a read actually happens and
	// reuses the open stream for sequential reads (§IX optimization 1).
	LazySeek bool
	// MaxRetries bounds exponential backoff attempts (§IX optimization 2);
	// 0 disables retries entirely.
	MaxRetries int
	// BaseBackoff is the initial backoff (doubles per attempt, jittered).
	BaseBackoff time.Duration
	// MultipartPartSize triggers multipart upload for larger writes
	// (§IX optimization 4); 0 disables multipart.
	MultipartPartSize int
	// Clock drives the backoff sleeps; nil means real time. Fault-injection
	// tests substitute a manual clock so retry storms resolve instantly.
	Clock fault.Clock
}

// DefaultConfig enables everything.
func DefaultConfig() FileSystemConfig {
	return FileSystemConfig{
		LazySeek:          true,
		MaxRetries:        7,
		BaseBackoff:       time.Millisecond,
		MultipartPartSize: 4 << 20,
	}
}

// FileSystem is PrestoS3FileSystem: a FileSystem API on top of the object
// store (§IX: "we developed the PrestoS3FileSystem, which provides a
// FileSystem api on top of Amazon S3").
type FileSystem struct {
	store *Store
	cfg   FileSystemConfig

	// Retries counts backoff retries performed (for tests).
	Retries struct{ N int64 }
	mu      sync.Mutex
}

// NewFileSystem wraps a store.
func NewFileSystem(store *Store, cfg FileSystemConfig) *FileSystem {
	return &FileSystem{store: store, cfg: cfg}
}

func key(path string) string { return strings.TrimPrefix(path, "/") }

// withBackoff retries transient errors with exponential backoff + jitter.
func (fs *FileSystem) withBackoff(op func() error) error {
	clock := fs.cfg.Clock
	if clock == nil {
		clock = fault.RealClock{}
	}
	backoff := fs.cfg.BaseBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		if _, transient := err.(ErrSlowDown); !transient {
			return err
		}
		if attempt >= fs.cfg.MaxRetries {
			return fmt.Errorf("s3: exhausted %d retries: %w", fs.cfg.MaxRetries, err)
		}
		fs.mu.Lock()
		fs.Retries.N++
		fs.mu.Unlock()
		jitter := time.Duration(rand.Int63n(int64(backoff)/2 + 1))
		clock.Sleep(backoff + jitter)
		backoff *= 2
	}
}

// ListFiles implements fsys.FileSystem.
func (fs *FileSystem) ListFiles(dir string) ([]fsys.FileInfo, error) {
	prefix := strings.TrimSuffix(key(dir), "/") + "/"
	var objs []ObjectInfo
	err := fs.withBackoff(func() error {
		var e error
		objs, e = fs.store.List(prefix)
		return e
	})
	if err != nil {
		return nil, err
	}
	var out []fsys.FileInfo
	for _, o := range objs {
		rest := o.Key[len(prefix):]
		if strings.Contains(rest, "/") {
			continue // deeper "directory" level
		}
		out = append(out, fsys.FileInfo{Path: "/" + o.Key, Size: o.Size})
	}
	return out, nil
}

// GetFileInfo implements fsys.FileSystem.
func (fs *FileSystem) GetFileInfo(path string) (fsys.FileInfo, error) {
	var size int64
	err := fs.withBackoff(func() error {
		var e error
		size, e = fs.store.Head(key(path))
		return e
	})
	if err != nil {
		return fsys.FileInfo{}, err
	}
	return fsys.FileInfo{Path: path, Size: size}, nil
}

// Open implements fsys.FileSystem.
func (fs *FileSystem) Open(path string) (fsys.File, error) {
	info, err := fs.GetFileInfo(path)
	if err != nil {
		return nil, err
	}
	return &s3File{fs: fs, key: key(path), size: info.Size}, nil
}

// Create implements fsys.FileSystem, using multipart upload when the object
// exceeds the part size.
func (fs *FileSystem) Create(path string) (io.WriteCloser, error) {
	return &s3Writer{fs: fs, key: key(path)}, nil
}

// ---------------------------------------------------------------------------
// s3File: read path with lazy seek.

// s3File adapts ranged GETs to the ReaderAt interface. Internally it keeps a
// current stream; with lazy seek enabled, a ReadAt that continues exactly
// where the stream stopped reuses it (no new GET) — the common pattern when
// a reader walks consecutive column chunks. Without lazy seek, every ReadAt
// opens a fresh connection, like a naive Hadoop FS adapter.
type s3File struct {
	fs   *FileSystem
	key  string
	size int64

	mu     sync.Mutex
	stream *ObjectReader
}

func (f *s3File) Size() int64 { return f.size }

func (f *s3File) Close() error {
	f.mu.Lock()
	f.stream = nil
	f.mu.Unlock()
	return nil
}

func (f *s3File) ReadAt(p []byte, off int64) (int, error) {
	// Claim the cached stream under the lock, then do the network I/O with
	// the lock released: a GET plus a full read can take seconds, and two
	// readers sharing the handle must not serialize behind each other's
	// network stalls. Whoever holds the claimed stream owns it exclusively.
	f.mu.Lock()
	stream := f.stream
	f.stream = nil
	f.mu.Unlock()

	if !f.fs.cfg.LazySeek || stream == nil || stream.Pos() != off {
		err := f.fs.withBackoff(func() error {
			var e error
			stream, e = f.fs.store.GetRange(f.key, off)
			return e
		})
		if err != nil {
			return 0, err
		}
	}
	n, err := io.ReadFull(stream, p)
	if err != nil {
		return n, fmt.Errorf("s3: read %q at %d: %w", f.key, off, err)
	}
	if f.fs.cfg.LazySeek {
		// Return the advanced stream for the next sequential ReadAt; naive
		// mode never reuses the connection.
		f.mu.Lock()
		f.stream = stream
		f.mu.Unlock()
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// s3Writer: multipart upload.

type s3Writer struct {
	fs  *FileSystem
	key string
	buf []byte
}

func (w *s3Writer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *s3Writer) Close() error {
	partSize := w.fs.cfg.MultipartPartSize
	if partSize <= 0 || len(w.buf) <= partSize {
		return w.fs.withBackoff(func() error { return w.fs.store.Put(w.key, w.buf) })
	}
	// Multipart: upload parts in parallel, then complete.
	var uploadID string
	if err := w.fs.withBackoff(func() error {
		var e error
		uploadID, e = w.fs.store.InitiateMultipart(w.key)
		return e
	}); err != nil {
		return err
	}
	type part struct {
		num  int
		data []byte
	}
	var parts []part
	for i, n := 0, 1; i < len(w.buf); n++ {
		end := i + partSize
		if end > len(w.buf) {
			end = len(w.buf)
		}
		parts = append(parts, part{num: n, data: w.buf[i:end]})
		i = end
	}
	errs := make(chan error, len(parts))
	for _, pt := range parts {
		pt := pt
		go func() {
			errs <- w.fs.withBackoff(func() error {
				return w.fs.store.UploadPart(uploadID, pt.num, pt.data)
			})
		}()
	}
	for range parts {
		if err := <-errs; err != nil {
			w.fs.store.AbortMultipart(uploadID)
			return err
		}
	}
	return w.fs.withBackoff(func() error { return w.fs.store.CompleteMultipart(uploadID) })
}
