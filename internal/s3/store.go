// Package s3 simulates an S3-semantics object store and implements
// PrestoS3FileSystem on top of it (§IX): lazy seek, exponential backoff
// against transient errors, multipart upload, and S3 Select projection
// pushdown. The store is in-memory with per-request latency and injectable
// throttling, which is what the client-side optimizations react to.
package s3

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counters tracks request volume — the quantity lazy seek reduces.
type Counters struct {
	GetRequests   atomic.Int64 // ranged GETs (connection opens)
	PutRequests   atomic.Int64
	ListRequests  atomic.Int64
	HeadRequests  atomic.Int64
	Throttles     atomic.Int64 // injected 503s handed to clients
	BytesReturned atomic.Int64
}

// ErrSlowDown is the transient throttling error (HTTP 503 SlowDown).
type ErrSlowDown struct{}

func (ErrSlowDown) Error() string { return "s3: 503 SlowDown (transient)" }

// ErrNoSuchKey reports a missing object.
type ErrNoSuchKey struct{ Key string }

func (e ErrNoSuchKey) Error() string { return fmt.Sprintf("s3: NoSuchKey %q", e.Key) }

// Config tunes the simulation.
type Config struct {
	// RequestLatency is charged per request (connection + TTFB).
	RequestLatency time.Duration
	// ThrottleEvery injects one transient 503 every N requests (0 = never).
	ThrottleEvery int64
}

// Store is the object store.
type Store struct {
	cfg Config

	mu      sync.RWMutex
	objects map[string][]byte
	uploads map[string]*multipartUpload

	reqSeq   atomic.Int64
	uploadID atomic.Int64

	// Counters are exported for experiments.
	Counters Counters
}

type multipartUpload struct {
	key   string
	parts map[int][]byte
}

// NewStore creates an empty bucket.
func NewStore(cfg Config) *Store {
	return &Store{cfg: cfg, objects: map[string][]byte{}, uploads: map[string]*multipartUpload{}}
}

// maybeFail charges latency and injects throttles.
func (s *Store) maybeFail() error {
	if s.cfg.RequestLatency > 0 {
		//lint:ignore clockdet this Sleep simulates S3 service-side latency, the quantity the experiments measure; client-side retry backoff goes through the Clock injected in s3fs.go
		time.Sleep(s.cfg.RequestLatency)
	}
	if s.cfg.ThrottleEvery > 0 {
		if s.reqSeq.Add(1)%s.cfg.ThrottleEvery == 0 {
			s.Counters.Throttles.Add(1)
			return ErrSlowDown{}
		}
	}
	return nil
}

// Put stores an object.
func (s *Store) Put(key string, data []byte) error {
	s.Counters.PutRequests.Add(1)
	if err := s.maybeFail(); err != nil {
		return err
	}
	s.mu.Lock()
	s.objects[key] = append([]byte(nil), data...)
	s.mu.Unlock()
	return nil
}

// Head returns object size.
func (s *Store) Head(key string) (int64, error) {
	s.Counters.HeadRequests.Add(1)
	if err := s.maybeFail(); err != nil {
		return 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[key]
	if !ok {
		return 0, ErrNoSuchKey{Key: key}
	}
	return int64(len(data)), nil
}

// GetRange opens a ranged GET starting at offset (to end of object). The
// returned reader streams without further requests.
func (s *Store) GetRange(key string, offset int64) (*ObjectReader, error) {
	s.Counters.GetRequests.Add(1)
	if err := s.maybeFail(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	data, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNoSuchKey{Key: key}
	}
	if offset < 0 || offset > int64(len(data)) {
		return nil, fmt.Errorf("s3: range start %d out of bounds for %q (%d bytes)", offset, key, len(data))
	}
	return &ObjectReader{store: s, data: data, pos: offset}, nil
}

// ObjectReader streams one ranged GET.
type ObjectReader struct {
	store *Store
	data  []byte
	pos   int64
}

// Read implements io.Reader.
func (r *ObjectReader) Read(p []byte) (int, error) {
	if r.pos >= int64(len(r.data)) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, r.data[r.pos:])
	r.pos += int64(n)
	r.store.Counters.BytesReturned.Add(int64(n))
	return n, nil
}

// Pos returns the stream position.
func (r *ObjectReader) Pos() int64 { return r.pos }

// List returns keys under a prefix, sorted, with sizes.
func (s *Store) List(prefix string) ([]ObjectInfo, error) {
	s.Counters.ListRequests.Add(1)
	if err := s.maybeFail(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ObjectInfo
	for k, v := range s.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, ObjectInfo{Key: k, Size: int64(len(v))})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// ObjectInfo describes one object.
type ObjectInfo struct {
	Key  string
	Size int64
}

// Delete removes an object.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Multipart upload (§IX: "when loading a big object, break it up into
// multiple parts and upload in parallel").

// InitiateMultipart starts an upload, returning its id.
func (s *Store) InitiateMultipart(key string) (string, error) {
	if err := s.maybeFail(); err != nil {
		return "", err
	}
	id := fmt.Sprintf("upload-%d", s.uploadID.Add(1))
	s.mu.Lock()
	s.uploads[id] = &multipartUpload{key: key, parts: map[int][]byte{}}
	s.mu.Unlock()
	return id, nil
}

// UploadPart stores one part (1-based part numbers).
func (s *Store) UploadPart(uploadID string, partNumber int, data []byte) error {
	s.Counters.PutRequests.Add(1)
	if err := s.maybeFail(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	up, ok := s.uploads[uploadID]
	if !ok {
		return fmt.Errorf("s3: unknown upload %q", uploadID)
	}
	up.parts[partNumber] = append([]byte(nil), data...)
	return nil
}

// CompleteMultipart assembles the parts in order.
func (s *Store) CompleteMultipart(uploadID string) error {
	if err := s.maybeFail(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	up, ok := s.uploads[uploadID]
	if !ok {
		return fmt.Errorf("s3: unknown upload %q", uploadID)
	}
	nums := make([]int, 0, len(up.parts))
	for n := range up.parts {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	var buf bytes.Buffer
	for _, n := range nums {
		buf.Write(up.parts[n])
	}
	s.objects[up.key] = buf.Bytes()
	delete(s.uploads, uploadID)
	return nil
}

// AbortMultipart discards an upload.
func (s *Store) AbortMultipart(uploadID string) {
	s.mu.Lock()
	delete(s.uploads, uploadID)
	s.mu.Unlock()
}
