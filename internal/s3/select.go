package s3

import (
	"errors"
	"fmt"
	"io"

	"prestolite/internal/block"
	"prestolite/internal/parquet"
)

// SelectObject is S3 Select (§IX optimization 3): the projection (and
// optionally a predicate) is pushed to the storage service, which scans the
// object server-side and returns only the requested data. BytesReturned
// counts only the shipped result, so experiments can compare against
// fetching whole objects.
func (s *Store) SelectObject(key string, columns []string, preds []parquet.ColumnPredicate) ([]*block.Page, error) {
	if err := s.maybeFail(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	data, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNoSuchKey{Key: key}
	}
	// Server-side scan: no GET counters, no per-range latency — the service
	// reads its own storage.
	r, err := parquet.NewReader(&fsFileNoCounters{data: data}, parquet.AllOptimizations(columns, preds))
	if err != nil {
		return nil, fmt.Errorf("s3 select: %w", err)
	}
	var out []*block.Page
	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("s3 select: %w", err)
		}
		s.Counters.BytesReturned.Add(int64(p.SizeBytes()))
		out = append(out, p)
	}
	return out, nil
}

// fsFileNoCounters reads object bytes without charging request counters.
type fsFileNoCounters struct {
	data []byte
}

func (f *fsFileNoCounters) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *fsFileNoCounters) Close() error { return nil }
func (f *fsFileNoCounters) Size() int64  { return int64(len(f.data)) }
