package s3

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/parquet"
	"prestolite/internal/types"
)

func TestPutGetHeadList(t *testing.T) {
	s := NewStore(Config{})
	if err := s.Put("warehouse/t/part-0", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	size, err := s.Head("warehouse/t/part-0")
	if err != nil || size != 11 {
		t.Fatalf("head = %d, %v", size, err)
	}
	r, err := s.GetRange("warehouse/t/part-0", 6)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(r, buf); err != nil || string(buf) != "world" {
		t.Fatalf("range read = %q, %v", buf, err)
	}
	s.Put("warehouse/t/part-1", []byte("x"))
	s.Put("warehouse/u/part-0", []byte("y"))
	objs, err := s.List("warehouse/t/")
	if err != nil || len(objs) != 2 {
		t.Fatalf("list = %v, %v", objs, err)
	}
	if _, err := s.Head("missing"); err == nil {
		t.Error("missing head accepted")
	}
	if _, err := s.GetRange("warehouse/t/part-0", 100); err == nil {
		t.Error("bad range accepted")
	}
}

func TestFileSystemInterface(t *testing.T) {
	s := NewStore(Config{})
	fs := NewFileSystem(s, DefaultConfig())
	w, err := fs.Create("/data/file1")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("0123456789"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	infos, err := fs.ListFiles("/data")
	if err != nil || len(infos) != 1 || infos[0].Size != 10 {
		t.Fatalf("list = %v, %v", infos, err)
	}
	f, err := fs.Open("/data/file1")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 3); err != nil || string(buf) != "3456" {
		t.Fatalf("read = %q, %v", buf, err)
	}
	if f.Size() != 10 {
		t.Errorf("size = %d", f.Size())
	}
}

func TestLazySeekReducesGetRequests(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 1024)

	run := func(lazy bool) int64 {
		s := NewStore(Config{})
		s.Put("obj", payload)
		cfg := DefaultConfig()
		cfg.LazySeek = lazy
		fs := NewFileSystem(s, cfg)
		f, err := fs.Open("/obj")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		// Sequential chunk reads — the column-chunk walk pattern.
		buf := make([]byte, 512)
		for off := int64(0); off+512 <= int64(len(payload)); off += 512 {
			if _, err := f.ReadAt(buf, off); err != nil {
				t.Fatal(err)
			}
		}
		return s.Counters.GetRequests.Load()
	}

	lazyGets := run(true)
	eagerGets := run(false)
	if lazyGets != 1 {
		t.Errorf("lazy seek should coalesce sequential reads into 1 GET, got %d", lazyGets)
	}
	if eagerGets != 16 {
		t.Errorf("eager mode should issue one GET per read, got %d", eagerGets)
	}
}

func TestLazySeekRandomAccessStillCorrect(t *testing.T) {
	payload := []byte("0123456789abcdefghij")
	s := NewStore(Config{})
	s.Put("obj", payload)
	fs := NewFileSystem(s, DefaultConfig())
	f, _ := fs.Open("/obj")
	defer f.Close()
	buf := make([]byte, 3)
	// Backward seek forces a new GET but stays correct.
	f.ReadAt(buf, 10)
	if string(buf) != "abc" {
		t.Errorf("read = %q", buf)
	}
	f.ReadAt(buf, 0)
	if string(buf) != "012" {
		t.Errorf("read = %q", buf)
	}
	f.ReadAt(buf, 3)
	if string(buf) != "345" {
		t.Errorf("read = %q", buf)
	}
}

func TestExponentialBackoffSurvivesThrottling(t *testing.T) {
	s := NewStore(Config{ThrottleEvery: 3}) // every 3rd request fails
	cfg := DefaultConfig()
	cfg.BaseBackoff = 100 * time.Microsecond
	fs := NewFileSystem(s, cfg)
	for i := 0; i < 10; i++ {
		w, _ := fs.Create("/k")
		w.Write([]byte("v"))
		if err := w.Close(); err != nil {
			t.Fatalf("put %d failed despite backoff: %v", i, err)
		}
		if _, err := fs.GetFileInfo("/k"); err != nil {
			t.Fatalf("head %d failed despite backoff: %v", i, err)
		}
	}
	if fs.Retries.N == 0 {
		t.Error("expected some retries")
	}
	if s.Counters.Throttles.Load() == 0 {
		t.Error("expected injected throttles")
	}

	// Without retries the same workload fails quickly.
	s2 := NewStore(Config{ThrottleEvery: 2})
	cfg2 := DefaultConfig()
	cfg2.MaxRetries = 0
	fs2 := NewFileSystem(s2, cfg2)
	failed := false
	for i := 0; i < 10; i++ {
		if _, err := fs2.GetFileInfo("/nope-" + string(rune('a'+i))); err != nil {
			if _, transient := err.(ErrNoSuchKey); !transient {
				failed = true
				break
			}
		}
	}
	if !failed {
		t.Error("no-retry mode should surface throttling errors")
	}
}

func TestMultipartUpload(t *testing.T) {
	s := NewStore(Config{})
	cfg := DefaultConfig()
	cfg.MultipartPartSize = 1024
	fs := NewFileSystem(s, cfg)
	payload := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16 KiB = 16 parts
	w, _ := fs.Create("/big")
	w.Write(payload)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/big")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != int64(len(payload)) {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, len(payload))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Error("multipart content mismatch")
	}
	// Parts uploaded in parallel: at least 16 put requests.
	if s.Counters.PutRequests.Load() < 16 {
		t.Errorf("puts = %d", s.Counters.PutRequests.Load())
	}
}

func TestParquetOnS3EndToEnd(t *testing.T) {
	// The §IX scenario: store data in S3, query it through the engine's
	// file format stack.
	s := NewStore(Config{})
	fs := NewFileSystem(s, DefaultConfig())
	schema, err := parquet.NewSchema([]string{"id", "name"}, []*types.Type{types.Bigint, types.Varchar})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := fs.Create("/lake/t/part-0")
	pw, err := parquet.NewNativeWriter(w, schema, parquet.WriterOptions{Codec: parquet.CodecSnappy})
	if err != nil {
		t.Fatal(err)
	}
	pb := block.NewPageBuilder(schema.Types)
	for i := 0; i < 100; i++ {
		pb.AppendRow([]any{int64(i), "row"})
	}
	pw.WritePage(pb.Build())
	pw.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := fs.Open("/lake/t/part-0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := parquet.NewReader(f, parquet.AllOptimizations([]string{"id"}, []parquet.ColumnPredicate{
		{Path: "id", Op: parquet.OpGte, Values: []any{int64(90)}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		p, err := r.Next()
		if err != nil {
			break
		}
		count += p.Count()
	}
	if count != 10 {
		t.Fatalf("rows = %d", count)
	}
}

func TestS3Select(t *testing.T) {
	s := NewStore(Config{})
	fs := NewFileSystem(s, DefaultConfig())
	schema, _ := parquet.NewSchema([]string{"id", "payload"}, []*types.Type{types.Bigint, types.Varchar})
	w, _ := fs.Create("/lake/sel/part-0")
	pw, _ := parquet.NewNativeWriter(w, schema, parquet.WriterOptions{})
	pb := block.NewPageBuilder(schema.Types)
	for i := 0; i < 1000; i++ {
		pb.AppendRow([]any{int64(i), strings.Repeat("x", 100)})
	}
	pw.WritePage(pb.Build())
	pw.Close()
	w.Close()

	before := s.Counters.BytesReturned.Load()
	pages, err := s.SelectObject("lake/sel/part-0", []string{"id"}, []parquet.ColumnPredicate{
		{Path: "id", Op: parquet.OpLt, Values: []any{int64(10)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, p := range pages {
		rows += p.Count()
	}
	if rows != 10 {
		t.Fatalf("select rows = %d", rows)
	}
	selectBytes := s.Counters.BytesReturned.Load() - before
	objSize, _ := s.Head("lake/sel/part-0")
	if selectBytes >= objSize/10 {
		t.Errorf("s3 select returned %d bytes of a %d byte object — pushdown should ship far less", selectBytes, objSize)
	}
	if _, err := s.SelectObject("missing", []string{"id"}, nil); err == nil {
		t.Error("missing key accepted")
	}
}
