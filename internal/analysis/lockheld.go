package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held. Holding a lock across HTTP round trips, channel
// operations, sleeps or file I/O is the coordinator/worker deadlock class:
// every other goroutine needing the lock (including metric snapshots and
// task polls) stalls behind one slow peer. The analyzer simulates lock
// state through each function body: `x.Lock()` / `x.RLock()` marks x held,
// `x.Unlock()` / `x.RUnlock()` releases it, `defer x.Unlock()` holds it to
// function end. Branch and loop bodies are analyzed with a copy of the held
// set, so "unlock early and return" paths do not leak state. Function
// literals run later on other goroutines and are analyzed as separate
// roots.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "flags blocking calls (HTTP, channel ops, time.Sleep, file/network I/O) made while a sync.Mutex/RWMutex is held",
	Run:  runLockHeld,
}

// blockingPkgFuncs are package-level functions that block on the network,
// the disk or the scheduler.
var blockingPkgFuncs = map[string][]string{
	"time":     {"Sleep"},
	"net/http": {"Get", "Head", "Post", "PostForm", "Error", "Redirect", "Serve", "ServeContent", "ListenAndServe", "ListenAndServeTLS"},
	"net":      {"Dial", "DialTimeout", "DialTCP", "DialUDP", "DialUnix", "DialIP", "Listen"},
	"io":       {"ReadAll", "Copy", "CopyN", "CopyBuffer", "ReadFull"},
	"os":       {"Open", "OpenFile", "Create", "ReadFile", "WriteFile", "ReadDir", "Remove", "RemoveAll", "Mkdir", "MkdirAll", "Rename"},
}

// blockingMethods are methods that block, keyed by receiver type.
var blockingMethods = []struct {
	pkg, typ string
	names    []string
}{
	{"net/http", "Client", []string{"Do", "Get", "Head", "Post", "PostForm"}},
	{"net/http", "ResponseWriter", []string{"Write"}},
	{"net", "Conn", []string{"Read", "Write"}},
	{"sync", "WaitGroup", []string{"Wait"}},
	{"sync", "Cond", []string{"Wait"}},
	{"os/exec", "Cmd", []string{"Run", "Output", "CombinedOutput", "Wait", "Start"}},
	{"os", "File", []string{"Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync"}},
}

type lockHeldWalker struct {
	pass *Pass
	// visit, when set, replaces the walker's own blocking-operation reports:
	// every call expression reached with at least one lock held is handed to
	// the hook along with the held set. chanmisuse reuses the lock-state
	// simulation through this hook for its interprocedural check instead of
	// duplicating the walker.
	visit func(call *ast.CallExpr, held map[string]token.Pos)
}

func runLockHeld(pass *Pass) {
	w := &lockHeldWalker{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			// Every function body — declarations and literals alike — is an
			// independent root with no locks held on entry.
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.stmts(fn.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				w.stmts(fn.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
}

// stmts walks a statement list, tracking which lock expressions are held.
// held maps a printed lock expression ("c.mu") to its acquisition position.
func (w *lockHeldWalker) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	cp := make(map[string]token.Pos, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

func (w *lockHeldWalker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch t := s.(type) {
	case *ast.ExprStmt:
		if call, ok := t.X.(*ast.CallExpr); ok {
			if key, op := w.lockOp(call); op == lockAcquire {
				w.checkArgs(call, held) // the lock value itself cannot block
				held[key] = call.Pos()
				return
			} else if op == lockRelease {
				delete(held, key)
				return
			}
		}
		w.check(t, held)
	case *ast.DeferStmt:
		// `defer x.Unlock()` pins x held to function end; other deferred
		// work runs after the body and is out of scope here.
		if _, op := w.lockOp(t.Call); op != lockRelease && op != lockAcquire {
			// Arguments to the deferred call are evaluated now.
			w.checkArgs(t.Call, held)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the held set; argument
		// evaluation happens on this goroutine though.
		w.checkArgs(t.Call, held)
	case *ast.BlockStmt:
		w.stmts(t.List, held)
	case *ast.LabeledStmt:
		w.stmt(t.Stmt, held)
	case *ast.IfStmt:
		if t.Init != nil {
			w.stmt(t.Init, held)
		}
		w.check(t.Cond, held)
		w.stmts(t.Body.List, copyHeld(held))
		if t.Else != nil {
			w.stmt(t.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if t.Init != nil {
			w.stmt(t.Init, held)
		}
		if t.Cond != nil {
			w.check(t.Cond, held)
		}
		w.stmts(t.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.check(t.X, held)
		if len(held) > 0 && w.visit == nil {
			if x := w.pass.TypeOf(t.X); x != nil {
				if _, isChan := x.Underlying().(*types.Chan); isChan {
					w.reportBlocked(t.X.Pos(), "range over channel", held)
				}
			}
		}
		w.stmts(t.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if t.Init != nil {
			w.stmt(t.Init, held)
		}
		if t.Tag != nil {
			w.check(t.Tag, held)
		}
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			w.stmt(t.Init, held)
		}
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && w.visit == nil && !selectHasDefault(t) {
			w.reportBlocked(t.Pos(), "select without default", held)
		}
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	default:
		w.check(s, held)
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// check inspects one non-control node for blocking operations, without
// descending into nested function literals (they execute elsewhere).
func (w *lockHeldWalker) check(n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch t := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if w.visit != nil {
				w.visit(t, held)
			} else if desc := w.blockingCall(t); desc != "" {
				w.reportBlocked(t.Pos(), desc, held)
			}
		case *ast.SendStmt:
			if w.visit == nil {
				w.reportBlocked(t.Arrow, "channel send", held)
			}
		case *ast.UnaryExpr:
			if t.Op == token.ARROW && w.visit == nil {
				w.reportBlocked(t.Pos(), "channel receive", held)
			}
		}
		return true
	})
}

// checkArgs inspects only the argument list of a call (used for go/defer
// statements, whose call itself runs elsewhere/later).
func (w *lockHeldWalker) checkArgs(call *ast.CallExpr, held map[string]token.Pos) {
	for _, arg := range call.Args {
		w.check(arg, held)
	}
}

func (w *lockHeldWalker) reportBlocked(pos token.Pos, what string, held map[string]token.Pos) {
	lock, acquired := minHeld(held)
	w.pass.Reportf(pos, "%s while %q is held (acquired at %s): blocking with a mutex held stalls every goroutine contending for it",
		what, lock, w.pass.Fset.Position(acquired))
}

// minHeld picks one deterministic lock out of the held set (the lexically
// smallest name) so diagnostics are stable across runs.
func minHeld(held map[string]token.Pos) (string, token.Pos) {
	lock := ""
	for k := range held {
		if lock == "" || k < lock {
			lock = k
		}
	}
	return lock, held[lock]
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
)

// lockOp classifies a call as acquiring or releasing a sync lock and
// returns the printed receiver expression as the lock's identity.
func (w *lockHeldWalker) lockOp(call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	if !isLockType(w.pass.TypeOf(sel.X)) {
		return "", lockNone
	}
	key := types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return key, lockAcquire
	case "TryLock", "TryRLock":
		// Over-approximate: assume the acquisition succeeded.
		return key, lockAcquire
	case "Unlock", "RUnlock":
		return key, lockRelease
	}
	return "", lockNone
}

// blockingCall describes why a call blocks, or returns "".
func (w *lockHeldWalker) blockingCall(call *ast.CallExpr) string {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if recv := recvNamed(fn); recv == nil {
		for pkg, names := range blockingPkgFuncs {
			if fn.Pkg().Path() != pkg {
				continue
			}
			for _, name := range names {
				if fn.Name() == name {
					return "call to " + pkg + "." + name
				}
			}
		}
	} else {
		for _, m := range blockingMethods {
			if !isNamedType(recv, m.pkg, m.typ) {
				continue
			}
			for _, name := range m.names {
				if fn.Name() == name {
					return "call to (" + m.pkg + "." + m.typ + ")." + name
				}
			}
		}
	}
	return ""
}
