package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Facts is the cross-package fact store: body-derived properties of every
// loaded function, computed in one pre-pass before any analyzer runs, so the
// concurrency and lifecycle analyzers can reason interprocedurally without a
// whole-program SSA build. Facts are keyed by the function's fully qualified
// name (types.Func.FullName) rather than object identity: a package's
// dependencies are type-checked from export data, so the *types.Func a
// caller resolves is a different object from the one the defining package's
// source produced — the printed name is the stable join key between the two.
//
// Three function facts are computed:
//
//   - unstoppable: the body contains an infinite for-loop that no statement
//     can exit (no return, no break binding to it, no goto, no panic/exit).
//     goleak reports `go pkg.Fn()` when Fn carries this fact.
//   - blockingChan: the body performs a blocking channel operation (send,
//     receive, range over a channel, or select without default) outside any
//     nested function literal. chanmisuse reports calls to such functions
//     made while a mutex is held — the interprocedural extension of
//     lockheld's direct-operation check.
//   - returnsCloser: the body hands its caller an open io.Closer obtained
//     from a known opener (os.Open and friends) without closing it —
//     ownership transfers to the caller, so closeleak treats calls to the
//     function like calls to the opener itself.
//
// Alongside the function facts, the store aggregates every obs metric
// registration site (Registry.Counter/Gauge/Histogram/GaugeFunc with a
// constant name) across the loaded packages, which is what lets obshygiene
// detect name collisions between packages.
type Facts struct {
	unstoppable   map[string]token.Position
	blockingChan  map[string]token.Position
	returnsCloser map[string]bool

	// obsRegs maps a metric name to every registration site seen across the
	// loaded packages.
	obsRegs map[string][]obsReg
}

// obsReg is one metric registration site.
type obsReg struct {
	kind string // "counter", "gauge", "histogram", "gaugefunc"
	pos  token.Position
	pkg  string
}

// funcKey returns the stable cross-package identity of a function: its fully
// qualified name, identical whether the *types.Func came from source
// type-checking or from export data.
func funcKey(fn *types.Func) string { return fn.FullName() }

// ComputeFacts runs the fact pre-pass over every package.
func ComputeFacts(pkgs []*Package) *Facts {
	f := &Facts{
		unstoppable:   map[string]token.Position{},
		blockingChan:  map[string]token.Position{},
		returnsCloser: map[string]bool{},
		obsRegs:       map[string][]obsReg{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				key := funcKey(fn)
				if pos := unstoppableLoopPos(fd.Body); pos.IsValid() {
					f.unstoppable[key] = pkg.Fset.Position(pos)
				}
				if pos := blockingChanOpPos(pkg.Info, fd.Body); pos.IsValid() {
					f.blockingChan[key] = pkg.Fset.Position(pos)
				}
				if returnsOpenCloser(pkg.Info, fd.Body) {
					f.returnsCloser[key] = true
				}
			}
			f.collectObsRegs(pkg, file)
		}
	}
	return f
}

// Unstoppable reports whether fn's body carries the unstoppable-loop fact,
// returning the loop position.
func (f *Facts) Unstoppable(fn *types.Func) (token.Position, bool) {
	if f == nil || fn == nil {
		return token.Position{}, false
	}
	pos, ok := f.unstoppable[funcKey(fn)]
	return pos, ok
}

// BlockingChan reports whether fn's body performs a blocking channel
// operation, returning its position.
func (f *Facts) BlockingChan(fn *types.Func) (token.Position, bool) {
	if f == nil || fn == nil {
		return token.Position{}, false
	}
	pos, ok := f.blockingChan[funcKey(fn)]
	return pos, ok
}

// ReturnsCloser reports whether fn hands its caller an open closer.
func (f *Facts) ReturnsCloser(fn *types.Func) bool {
	return f != nil && fn != nil && f.returnsCloser[funcKey(fn)]
}

// ---------------------------------------------------------------------------
// Unstoppable loops.

// unstoppableLoopPos returns the position of an infinite for-loop in body
// that no statement can exit, or NoPos. Nested function literals are skipped:
// they run on other goroutines (or later) and are separate roots.
func unstoppableLoopPos(body *ast.BlockStmt) token.Pos {
	var found token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if t.Cond == nil && !loopCanExit(t) {
				found = t.For
				return false
			}
		}
		return true
	})
	return found
}

// loopCanExit reports whether any statement can terminate the given
// condition-free loop: a return, a break binding to it (unlabeled outside
// nested breakable constructs, or any labeled break — labels are resolved
// conservatively), a goto, or a call that never returns (panic, os.Exit,
// log.Fatal*, runtime.Goexit).
func loopCanExit(loop *ast.ForStmt) bool {
	// Extents of nested constructs that capture an unlabeled break.
	var inner []ast.Node
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			inner = append(inner, n)
		}
		return true
	})
	capturedBreak := func(pos token.Pos) bool {
		for _, c := range inner {
			if c.Pos() <= pos && pos <= c.End() {
				return true
			}
		}
		return false
	}
	exit := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if exit {
			return false
		}
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			switch t.Tok {
			case token.GOTO:
				exit = true
			case token.BREAK:
				if t.Label != nil || !capturedBreak(t.Pos()) {
					exit = true
				}
			}
		case *ast.CallExpr:
			if isNoReturnCall(t) {
				exit = true
			}
		}
		return true
	})
	return exit
}

// isNoReturnCall matches calls that terminate the goroutine or process, by
// name (the fact pass keeps this type-free so it works identically on every
// package): panic, os.Exit, runtime.Goexit, log.Fatal*, log.Panic*.
func isNoReturnCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "runtime":
			return fun.Sel.Name == "Goexit"
		case "log":
			switch fun.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Blocking channel operations.

// blockingChanOpPos returns the position of the first blocking channel
// operation in body — a send or receive outside a select, a range over a
// channel, or a select without a default arm — or NoPos. Operations that form
// the comm clause of a select are attributed to the select (blocking only
// when it has no default); nested function literals are separate roots and
// are skipped.
func blockingChanOpPos(info *types.Info, body *ast.BlockStmt) token.Pos {
	// Comm-statement extents: sends/receives inside them belong to a select.
	var comms []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms = append(comms, cc.Comm)
				}
			}
		}
		return true
	})
	inComm := func(pos token.Pos) bool {
		for _, c := range comms {
			if c.Pos() <= pos && pos <= c.End() {
				return true
			}
		}
		return false
	}
	var found token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(t) {
				found = t.Select
				return false
			}
		case *ast.SendStmt:
			if !inComm(t.Pos()) {
				found = t.Arrow
			}
		case *ast.UnaryExpr:
			if t.Op == token.ARROW && !inComm(t.Pos()) {
				found = t.OpPos
			}
		case *ast.RangeStmt:
			if x := info.TypeOf(t.X); x != nil {
				if _, isChan := x.Underlying().(*types.Chan); isChan {
					found = t.For
				}
			}
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------------
// Open-closer transfer.

// stdlibOpeners are package-level functions whose result is an open resource
// the caller owns and must close.
var stdlibOpeners = map[string][]string{
	"os":       {"Open", "OpenFile", "Create", "CreateTemp"},
	"net":      {"Dial", "DialTimeout", "Listen"},
	"net/http": {"Get", "Head", "Post", "PostForm"},
}

// openerMethods are methods that, by name, return an open resource the
// caller owns when one of their results implements io.Closer (fsys.FS.Open,
// SpillManager.OpenRun, http.Client.Do, ...).
var openerMethodNames = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"OpenRun": true, "Do": true, "Get": true, "Post": true, "Head": true,
}

// isStdlibOpener reports whether fn is one of the stdlib opener functions or
// the http.Client request methods.
func isStdlibOpener(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if recv := recvNamed(fn); recv != nil {
		return isNamedType(recv, "net/http", "Client") && openerMethodNames[fn.Name()]
	}
	for _, name := range stdlibOpeners[fn.Pkg().Path()] {
		if fn.Name() == name {
			return true
		}
	}
	return false
}

// closerIface is a structural io.Closer (Close() error), built by hand so
// implementation checks need no import of the io package in the target.
var closerIface = func() *types.Interface {
	sig := types.NewSignatureType(nil, nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "", types.Universe.Lookup("error").Type())), false)
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Close", sig),
	}, nil)
	iface.Complete()
	return iface
}()

// implementsCloser reports whether t (or *t) has a Close() error method.
func implementsCloser(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, closerIface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), closerIface)
	}
	return false
}

// returnsOpenCloser reports whether body returns a value obtained from a
// stdlib opener without closing it — the ownership-transfer pattern closeleak
// must follow through helper functions.
func returnsOpenCloser(info *types.Info, body *ast.BlockStmt) bool {
	// Opener-result objects and whether each is closed in this body.
	opened := map[types.Object]bool{} // obj -> closed
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isStdlibOpener(calleeFunc(info, call)) {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			t := info.TypeOf(id)
			if implementsCloser(t) || isNamedType(t, "net/http", "Response") {
				if obj := objectOf(info, id); obj != nil {
					opened[obj] = false
				}
			}
		}
		return true
	})
	if len(opened) == 0 {
		// Direct transfer: `return os.Open(name)`.
		direct := false
		ast.Inspect(body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isStdlibOpener(calleeFunc(info, call)) {
					direct = true
				}
			}
			return true
		})
		return direct
	}
	// Mark closed objects.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if id, ok := baseIdent(sel.X); ok {
			if obj := objectOf(info, id); obj != nil {
				if _, tracked := opened[obj]; tracked {
					opened[obj] = true
				}
			}
		}
		return true
	})
	transferred := false
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := objectOf(info, id); obj != nil {
					if closed, tracked := opened[obj]; tracked && !closed {
						transferred = true
					}
				}
			}
		}
		return true
	})
	return transferred
}

// objectOf resolves an identifier to its object via Uses or Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// baseIdent unwraps selector chains (a.b.c → a) to the leftmost identifier.
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t, true
		case *ast.SelectorExpr:
			e = t.X
		default:
			return nil, false
		}
	}
}

// ---------------------------------------------------------------------------
// Obs metric registration sites.

// obsRegKind classifies a call as an obs.Registry registration, returning the
// metric kind and the constant name ("" when the name is dynamic).
func obsRegKind(info *types.Info, call *ast.CallExpr) (kind, name string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", ""
	}
	switch {
	case isMethod(fn, "prestolite/internal/obs", "Registry", "Counter"):
		kind = "counter"
	case isMethod(fn, "prestolite/internal/obs", "Registry", "Gauge"):
		kind = "gauge"
	case isMethod(fn, "prestolite/internal/obs", "Registry", "Histogram"):
		kind = "histogram"
	case isMethod(fn, "prestolite/internal/obs", "Registry", "GaugeFunc"):
		kind = "gaugefunc"
	default:
		return "", ""
	}
	if len(call.Args) == 0 {
		return kind, ""
	}
	if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return kind, constant.StringVal(tv.Value)
	}
	return kind, ""
}

func (f *Facts) collectObsRegs(pkg *Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, name := obsRegKind(pkg.Info, call)
		if kind == "" || name == "" {
			return true
		}
		f.obsRegs[name] = append(f.obsRegs[name], obsReg{
			kind: kind,
			pos:  pkg.Fset.Position(call.Pos()),
			pkg:  pkg.Path,
		})
		return true
	})
}
