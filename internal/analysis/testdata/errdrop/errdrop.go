// Package fixture exercises the errdrop analyzer: dropped error results and
// reasonless blank discards are reported; checked errors, reasoned
// discards, and the documented never-fail writers are not.
package fixture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
)

func work() error { return nil }

func parse(s string) (int, error) { return len(s), nil }

// bad drops errors three ways: a bare statement call, a handler Encode, and
// a blank discard with no written reason.
func bad(w http.ResponseWriter) {
	work()
	json.NewEncoder(w).Encode(map[string]int{"rows": 1})
	_ = work()
}

// badTuple discards the error half of a multi-value result with no reason.
func badTuple() int {
	n, _ := parse("select 1")
	return n
}

// good checks, propagates, or discards with a written reason.
func good(w http.ResponseWriter) error {
	if err := work(); err != nil {
		return err
	}
	_ = work() // fixture: the reason-comment escape hatch under test
	return json.NewEncoder(w).Encode(map[string]int{"rows": 1})
}

// goodExempt uses the documented never-fail writers and defer.
func goodExempt(f *os.File) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "plan row %d", 1)
	buf.WriteString("!")
	fmt.Fprintln(os.Stderr, buf.String())
	defer f.Close()
}
