// Package fixture exercises the atomicmix analyzer: a field or package
// variable touched both through sync/atomic and through plain loads/stores
// is reported; all-atomic access and post-join local reads are not.
package fixture

import (
	"sync"
	"sync/atomic"
)

var hits int64

type counter struct {
	n     int64
	clean int64
}

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

// racyLoad reads c.n directly even though inc publishes it atomically.
func (c *counter) racyLoad() int64 {
	return c.n
}

func bump() { atomic.AddInt64(&hits, 1) }

// reset stores to the package counter without atomic.
func reset() {
	hits = 0
}

// allAtomic is the correct shape: every access path goes through atomic.
func (c *counter) allAtomic() int64 {
	atomic.AddInt64(&c.clean, 1)
	return atomic.LoadInt64(&c.clean)
}

// joined reads a local plainly after the writers are joined — a legitimate
// happens-before pattern that must not be flagged.
func joined() int64 {
	var local int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.AddInt64(&local, 1)
		}()
	}
	wg.Wait()
	return local
}
