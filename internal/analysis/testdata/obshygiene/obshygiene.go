// Package fixture exercises the obshygiene analyzer: discarded registration
// handles, handles bound but never updated, metrics constructed outside a
// registry, gauge/gauge-func name collisions and duplicate gauge-func
// registrations on one registry are reported. An updated counter, an
// escaping handle and the per-component same-name pattern stay silent.
package fixture

import "prestolite/internal/obs"

type metrics struct {
	rows *obs.Counter
}

// badDiscarded registers a counter and throws the handle away.
func badDiscarded(reg *obs.Registry) {
	reg.Counter("queries_failed")
}

// badNeverUpdated binds the handle to a field no code ever updates.
func badNeverUpdated(m *metrics, reg *obs.Registry) {
	m.rows = reg.Counter("rows_seen")
}

// badConstructed builds a gauge by hand: it bypasses the registry and never
// appears in a snapshot.
func badConstructed() *obs.Gauge {
	return &obs.Gauge{}
}

// badCollision registers "depth" as both a gauge and a gauge-func: Snapshot
// writes gauge-funcs last and the gauge's value silently vanishes.
func badCollision(reg *obs.Registry, depth func() float64) {
	g := reg.Gauge("depth")
	g.Set(1)
	reg.GaugeFunc("depth", depth)
}

// badDupGaugeFunc registers the same gauge-func name twice on one registry;
// only the second registration survives.
func badDupGaugeFunc(reg *obs.Registry, a, b func() float64) {
	reg.GaugeFunc("lag", a)
	reg.GaugeFunc("lag", b)
}

// goodUpdated is the normal pattern: register, bind, update.
func goodUpdated(reg *obs.Registry) {
	c := reg.Counter("rows_written")
	c.Inc()
}

// goodEscape hands the handle to a helper, which owns updating it.
func goodEscape(reg *obs.Registry, sink func(*obs.Histogram)) {
	h := reg.Histogram("latency")
	sink(h)
}

// goodPerComponent registers the same name on two different registries —
// the coordinator and a worker each publishing their own view — which is
// the intended fleet pattern, not a collision.
func goodPerComponent(coord, worker *obs.Registry, f func() float64) {
	coord.GaugeFunc("pool_reserved", f)
	worker.GaugeFunc("pool_reserved", f)
}
