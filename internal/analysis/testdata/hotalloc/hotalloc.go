// Package fixture exercises the hotalloc analyzer. It is loaded by the
// golden harness under an import path containing internal/execution, which
// opts it into the hot-package scope: allocation creep inside its loop
// bodies is reported; hoisted scratch and strconv appends are not.
package fixture

import (
	"fmt"
	"strconv"
)

// render formats per row with fmt — the exact regression hotalloc exists
// to catch.
func render(ids []int64) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, fmt.Sprintf("row-%d", id))
	}
	return out
}

// box allocates and fills a fresh []any per row.
func box(ids []int64) [][]any {
	var pages [][]any
	for _, id := range ids {
		row := make([]any, 1)
		row[0] = id
		pages = append(pages, row)
	}
	return pages
}

// appendBox boxes a concrete int64 into []any on every row.
func appendBox(ids []int64) []any {
	var out []any
	for _, id := range ids {
		out = append(out, id)
	}
	return out
}

// renderFast is the correct shape: scratch hoisted out of the loop and
// strconv instead of reflective formatting.
func renderFast(ids []int64) []string {
	out := make([]string, 0, len(ids))
	buf := make([]byte, 0, 20)
	for _, id := range ids {
		buf = strconv.AppendInt(buf[:0], id, 10)
		out = append(out, string(buf))
	}
	return out
}

// coldSetup allocates before the loop — per batch, not per row.
func coldSetup(n int) []any {
	scratch := make([]any, n)
	for i := range scratch {
		scratch[i] = nil
	}
	return scratch
}
