// Package fixture exercises the suppression machinery: a well-formed
// //lint:ignore with a reason silences the finding, a wildcard covers every
// analyzer, a reasonless directive is itself reported (and suppresses
// nothing), and a directive naming the wrong analyzer does not apply.
package fixture

func step() error { return nil }

// suppressed carries a reason and is honored: no errdrop finding here.
func suppressed() {
	//lint:ignore errdrop fixture: failure here is unobservable by design
	step()
}

// wildcard suppressions cover every analyzer.
func wildcard() {
	//lint:ignore * fixture: demonstrating the wildcard form
	step()
}

// malformed directives are findings themselves and suppress nothing.
func malformed() {
	//lint:ignore errdrop
	step()
}

// wrongName suppresses a different analyzer, so errdrop still fires.
func wrongName() {
	//lint:ignore hotalloc fixture: names must match for the directive to apply
	step()
}
