// Package fixture exercises the closeleak analyzer: opener results that are
// never closed and never handed off are reported — including through a
// package helper carrying the ReturnsCloser fact — while defer Close,
// returning the value and storing it into a struct all transfer ownership.
package fixture

import (
	"net/http"
	"os"
)

// openSpill returns its open file to the caller: the escape silences the
// report here and the ReturnsCloser fact makes callers accountable.
func openSpill(path string) (*os.File, error) {
	return os.Create(path)
}

// badFile opens a file and forgets it.
func badFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	return f != nil
}

// badResp leaks the response body: the status check reads the struct but
// nothing ever closes it.
func badResp() bool {
	resp, err := http.Get("http://peer/v1/stats")
	if err != nil {
		return false
	}
	return resp.StatusCode == http.StatusOK
}

// badDiscard drops the opener result on the floor outright.
func badDiscard(path string) {
	os.Create(path)
}

// badHelper leaks through the repo helper: openSpill hands it an open file
// it never releases.
func badHelper(path string) bool {
	f, err := openSpill(path)
	if err != nil {
		return false
	}
	return f != nil
}

// goodDefer releases on every path.
func goodDefer(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// goodBodyClose releases a response through its Body field.
func goodBodyClose() error {
	resp, err := http.Get("http://peer/v1/stats")
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

type holder struct {
	f *os.File
}

// goodStored transfers ownership into the struct; whoever owns the holder
// closes it later.
func goodStored(h *holder, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	h.f = f
	return nil
}
