// Package fixture exercises the ctxflow analyzer: minting a fresh context
// inside a request path and dropping an accepted ctx are reported; genuine
// context roots are not.
package fixture

import (
	"context"
	"net/http"
)

func fetch(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// handle is a request path (it has an *http.Request): the fresh Background
// detaches the upstream fetch from the client's cancellation.
func handle(w http.ResponseWriter, r *http.Request) {
	_ = fetch(context.Background(), "http://upstream/v1/statement")
	w.WriteHeader(http.StatusOK)
}

// dropped accepts ctx but never uses it while calling a context-aware
// callee; the TODO inside it is additionally a fresh context in a request
// path.
func dropped(ctx context.Context, url string) error {
	return fetch(context.TODO(), url)
}

// forward is the correct shape: the caller's ctx flows through.
func forward(ctx context.Context, url string) error {
	return fetch(ctx, url)
}

// daemon has no inbound context; it is a legitimate context root.
func daemon() error {
	return fetch(context.Background(), "http://peer/v1/heartbeat")
}
