// Package fixture exercises clockdet under the cache tier's import path.
// TTL expiry is a time decision on the query path: a cache that reads the
// wall clock makes chaos replay observe different hit/miss sequences run
// over run, so every expiry check must go through the injected fault.Clock.
package fixture

import (
	"time"

	"prestolite/internal/fault"
)

type entry struct {
	value   string
	stored  time.Time
	expires time.Time
}

type ttlCache struct {
	clock   fault.Clock
	ttl     time.Duration
	entries map[string]entry
}

// badPut stamps the entry with the wall clock instead of the injected one.
func (c *ttlCache) badPut(key, value string) {
	c.entries[key] = entry{value: value, stored: time.Now()}
}

// badExpired ages entries against the wall clock, so a ManualClock replay
// never sees an expiry (or sees spurious ones on a slow machine).
func (c *ttlCache) badExpired(key string) bool {
	e, ok := c.entries[key]
	return ok && time.Since(e.stored) > c.ttl
}

// badSweepLoop schedules eviction sweeps on a wall-clock ticker.
func (c *ttlCache) badSweepLoop(stop <-chan struct{}) {
	t := time.NewTicker(c.ttl)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			for k := range c.entries {
				if c.badExpired(k) {
					delete(c.entries, k)
				}
			}
		case <-stop:
			return
		}
	}
}

// goodPut and goodExpired route every time decision through the injected
// clock — what the real chunk/result caches do.
func (c *ttlCache) goodPut(key, value string) {
	c.entries[key] = entry{value: value, expires: c.clock.Now().Add(c.ttl)}
}

func (c *ttlCache) goodExpired(key string) bool {
	e, ok := c.entries[key]
	return ok && c.clock.Now().After(e.expires)
}

// goodMath: pure duration arithmetic and construction are deterministic.
func goodMath(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}
