// Package fixture exercises the durability-path lint surface as one unit.
// The golden harness loads it under an internal/ingest import path, where
// three analyzers apply at once: closeleak (segment handles that are opened
// but never closed or handed off — a leaked descriptor pins a WAL segment
// past rotation), clockdet (the ingest tree is clock-scoped — a wall-clock
// read in recovery or fsync pacing breaks CHAOS_SEED replay) and errdrop
// (a dropped fsync or commit error silently converts "durable" into
// "probably durable", the exact lie the WAL exists to prevent). The writer
// at the bottom shows the shape that stays silent under all three.
package fixture

import (
	"encoding/binary"
	"os"
	"time"
)

// badSegmentLeak opens the next WAL segment to probe its size and forgets
// the handle: every rotation check leaks one descriptor, and on platforms
// with deferred unlink the dead segment's disk space never comes back.
func badSegmentLeak(path string) int64 {
	f, err := os.Open(path)
	if err != nil {
		return -1
	}
	st, err := f.Stat()
	if err != nil {
		return -1
	}
	return st.Size()
}

// badRecoveryStamp stamps replayed records with the wall clock: replaying
// the same WAL twice yields different rows, so crash-recovery tests cannot
// compare against a golden state.
func badRecoveryStamp(records [][]byte) []time.Time {
	stamps := make([]time.Time, 0, len(records))
	for range records {
		stamps = append(stamps, time.Now())
	}
	return stamps
}

// badDroppedFsync acks the append while throwing the Sync error away: the
// record is durable only if the kernel felt like it. This is the torn-tail
// bug class the recovery suite replays.
func badDroppedFsync(f *os.File, rec []byte) error {
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(rec)))
	if _, err := f.Write(frame[:]); err != nil {
		return err
	}
	if _, err := f.Write(rec); err != nil {
		return err
	}
	f.Sync()
	return nil
}

// badDroppedCommit discards the error half of a commit result with no
// written reason: a failed offset commit re-delivers the batch after the
// next crash, and nothing ever said so.
func badDroppedCommit(commit func() (int64, error)) int64 {
	off, _ := commit()
	return off
}

// goodAppend is the clean durability shape: the handle is released on every
// path, the fsync error propagates to the acking caller, and pacing is left
// to the injected clock upstream.
func goodAppend(path string, rec []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(rec)))
	if _, err := f.Write(frame[:]); err != nil {
		return err
	}
	if _, err := f.Write(rec); err != nil {
		return err
	}
	return f.Sync()
}
