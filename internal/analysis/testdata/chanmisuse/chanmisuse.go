// Package fixture exercises the chanmisuse analyzer. The golden harness
// loads it under an internal/execution import path, opting it into the
// select-loop cancellation rule alongside the closed-channel tracking and
// the blocked-under-lock interprocedural check.
package fixture

import "sync"

type pipe struct {
	mu   sync.Mutex
	out  chan int
	stop chan struct{}
	n    int
}

// emit blocks sending on out; the BlockingChan fact records it so callers
// holding p.mu are reported.
func (p *pipe) emit(v int) {
	p.out <- v
}

// badDoubleClose closes the same channel twice on one path.
func badDoubleClose() {
	done := make(chan struct{})
	close(done)
	close(done)
}

// badSendClosed sends on a channel already closed on this path.
func badSendClosed() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1
}

// badBlockedUnderLock calls emit — a blocking channel send — with p.mu
// held; the consumer may need the lock to drain.
func (p *pipe) badBlockedUnderLock() {
	p.mu.Lock()
	p.emit(p.n)
	p.mu.Unlock()
}

// badSelectLoop has only data arms: query cancellation cannot stop it.
func (p *pipe) badSelectLoop(in chan int) {
	for {
		select {
		case v := <-in:
			p.n += v
		}
	}
}

// goodReassign replaces the closed channel before closing again.
func goodReassign() {
	ch := make(chan int)
	close(ch)
	ch = make(chan int)
	close(ch)
}

// goodUnlockFirst releases the lock before the blocking send.
func (p *pipe) goodUnlockFirst() {
	p.mu.Lock()
	v := p.n
	p.mu.Unlock()
	p.emit(v)
}

// goodSelectLoop carries a stop arm, so cancellation drains it.
func (p *pipe) goodSelectLoop(in chan int) {
	for {
		select {
		case <-p.stop:
			return
		case v := <-in:
			p.n += v
		}
	}
}
