// Package fixture exercises the clockdet analyzer. The golden harness loads
// it under an internal/cluster import path, inside the clock-threaded scope:
// direct wall-clock reads and scheduling are reported; injected-clock use
// and pure time conversions are not.
package fixture

import (
	"time"

	"prestolite/internal/fault"
)

type scheduler struct {
	clock fault.Clock
	last  time.Time
}

// badNow reads the wall clock directly.
func (s *scheduler) badNow() {
	s.last = time.Now()
}

// badSleep sleeps on the wall clock.
func (s *scheduler) badSleep() {
	time.Sleep(10 * time.Millisecond)
}

// badAfter schedules against the wall clock.
func (s *scheduler) badAfter() <-chan time.Time {
	return time.After(time.Second)
}

// badTicker builds a wall-clock ticker.
func (s *scheduler) badTicker() *time.Ticker {
	return time.NewTicker(time.Second)
}

// goodInjected routes every time decision through the injected clock.
func (s *scheduler) goodInjected() {
	s.last = s.clock.Now()
	s.clock.Sleep(time.Millisecond)
}

// goodConversions: pure time construction and arithmetic are deterministic
// and allowed.
func goodConversions() time.Duration {
	epoch := time.Unix(0, 0)
	return epoch.Add(3 * time.Hour).Sub(epoch)
}
