// Package fixture exercises the lockheld analyzer: blocking calls made
// while a sync.Mutex is held are reported; the same calls after Unlock, or
// on other goroutines, are not.
package fixture

import (
	"net/http"
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	state int
	ch    chan int
}

// bad blocks three ways with s.mu held: a sleep, an HTTP round trip and a
// channel receive.
func (s *server) bad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Second)
	resp, err := http.Get("http://peer/v1/stats")
	if err == nil {
		resp.Body.Close()
	}
	<-s.ch
	s.state++
}

// badSend blocks on a channel send inside a branch that still holds the lock.
func (s *server) badSend(fast bool) {
	s.mu.Lock()
	if fast {
		s.state++
		s.mu.Unlock()
		return
	}
	s.ch <- s.state
	s.mu.Unlock()
}

// good releases the lock before doing the blocking work.
func (s *server) good() {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// goodEarlyUnlock unlocks on the fast path; the blocking call after the
// branch is clean because the branch body copied the held set.
func (s *server) goodEarlyUnlock(fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	s.state++
	s.mu.Unlock()
}

// goodGoroutine spawns the blocking work; the literal runs on another
// goroutine and is analyzed as its own root.
func (s *server) goodGoroutine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
	s.state++
}
