// Package fixture exercises the kernel-package lint surface as one unit.
// The golden harness loads it under the vector kernels' import path, where
// three analyzers apply at once: hotalloc (per-row allocation inside batch
// loops), clockdet (the kernel tree is clock-scoped — wall-clock reads are
// per-batch overhead and a determinism leak) and obshygiene (dead metric
// handles). The batch-at-a-time kernel at the bottom shows the shape that
// stays silent under all three.
package fixture

import (
	"fmt"
	"strconv"
	"time"

	"prestolite/internal/obs"
)

type kernelStats struct {
	rows *obs.Counter
}

// badRowFormat formats every row reflectively inside the row loop: the
// per-row fmt.Sprintf turns a memory-bandwidth kernel into a GC workload.
func badRowFormat(vals []int64) []string {
	out := make([]string, 0, len(vals))
	for _, v := range vals {
		out = append(out, fmt.Sprintf("%d", v))
	}
	return out
}

// badRowBoxing builds a boxed row vector per iteration.
func badRowBoxing(vals []int64) [][]any {
	var rows [][]any
	for _, v := range vals {
		rows = append(rows, []any{v})
	}
	return rows
}

// badBatchStamp timestamps each emitted batch off the wall clock.
func badBatchStamp(batches int) []time.Time {
	stamps := make([]time.Time, 0, batches)
	for i := 0; i < batches; i++ {
		stamps = append(stamps, time.Now())
	}
	return stamps
}

// badDiscardedMetric registers the kernel's row counter and throws the
// handle away: the metric exists in snapshots but can never move.
func badDiscardedMetric(reg *obs.Registry) {
	reg.Counter("vector_rows_processed")
}

// goodBatchKernel is the clean shape: typed appends per row, one bound and
// updated counter per batch, and only duration arithmetic for bookkeeping.
func goodBatchKernel(s *kernelStats, reg *obs.Registry, vals []int64) ([]byte, time.Duration) {
	if s.rows == nil {
		s.rows = reg.Counter("vector_batches")
	}
	buf := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		buf = strconv.AppendInt(buf, v, 10)
		buf = append(buf, '\n')
	}
	s.rows.Add(int64(len(vals)))
	return buf, time.Duration(len(vals)) * time.Microsecond
}
