// Package fixture exercises the goleak analyzer: goroutines with no
// termination path — looping forever in their own body or in a function
// they call — are reported, as is wg.Add inside the spawned goroutine. A
// loop with a stop arm, Add before the go statement, and range over a
// closable channel are the clean counterparts.
package fixture

import "sync"

type pumper struct {
	n    int
	in   chan int
	stop chan struct{}
}

// spin loops forever with no exit; the Unstoppable fact carries this to
// every go statement that runs it.
func (p *pumper) spin() {
	for {
		p.n++
	}
}

// badLiteral spawns a literal whose loop has no return, break or
// terminating call.
func badLiteral(p *pumper) {
	go func() {
		for {
			p.n++
		}
	}()
}

// badWgAdd calls wg.Add inside the spawned goroutine: Wait may observe
// zero and return before the goroutine runs.
func badWgAdd(p *pumper) {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1)
		defer wg.Done()
		p.n++
	}()
	wg.Wait()
}

// badNamed leaks through the named callee's loop.
func badNamed(p *pumper) {
	go p.spin()
}

// badCalleeInLiteral reaches the unstoppable loop through a call inside
// the literal body.
func badCalleeInLiteral(p *pumper) {
	go func() {
		p.n++
		p.spin()
	}()
}

// goodStopArm loops forever but every iteration can exit via the stop
// channel.
func goodStopArm(p *pumper) {
	go func() {
		for {
			select {
			case <-p.stop:
				return
			case v := <-p.in:
				p.n += v
			}
		}
	}()
}

// goodAddBeforeGo follows the correct WaitGroup protocol.
func goodAddBeforeGo(p *pumper) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.n++
	}()
	wg.Wait()
}

// goodRange terminates when the producer closes the channel.
func goodRange(p *pumper) {
	go func() {
		for v := range p.in {
			p.n += v
		}
	}()
}
