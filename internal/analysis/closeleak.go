package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CloseLeak flags io.Closer values obtained from an opener call that are
// neither closed nor handed off. Split readers, spill runs, exchange
// endpoints and HTTP response bodies are all Closers here; one leaked per
// query is a descriptor exhaustion incident a few hours into a production
// day. The analyzer tracks each opener result through its function: a
// .Close() anywhere (including resp.Body.Close() and deferred literals)
// releases it, and any escape — passed as an argument, returned, stored into
// a struct/map/channel, address taken — transfers ownership and silences the
// report. Helpers that return an opener result unclosed carry the
// cross-package ReturnsCloser fact and are treated like openers themselves.
var CloseLeak = &Analyzer{
	Name: "closeleak",
	Doc:  "flags io.Closer values obtained from opener calls that are neither closed nor handed off on any path",
	Run:  runCloseLeak,
}

func runCloseLeak(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCloseLeaks(pass, fd.Body)
			}
		}
	}
}

// openedVal is one tracked opener result within a function body.
type openedVal struct {
	call     *ast.CallExpr
	what     string
	released bool
	escaped  bool
}

func checkCloseLeaks(pass *Pass, body *ast.BlockStmt) {
	opened := map[types.Object]*openedVal{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			if len(t.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(t.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if !openerCall(pass, fn) {
				return true
			}
			for _, lhs := range t.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				typ := pass.Info.TypeOf(id)
				if !implementsCloser(typ) && !isNamedType(typ, "net/http", "Response") {
					continue
				}
				if obj := objectOf(pass.Info, id); obj != nil {
					if _, seen := opened[obj]; !seen {
						opened[obj] = &openedVal{call: call, what: funcDesc(fn)}
					}
				}
			}
		case *ast.ExprStmt:
			// Bare opener statement: the open value is discarded outright.
			if call, ok := ast.Unparen(t.X).(*ast.CallExpr); ok {
				if fn := calleeFunc(pass.Info, call); openerCall(pass, fn) {
					pass.Reportf(call.Pos(), "result of %s is discarded without Close: the open handle leaks", funcDesc(fn))
				}
			}
		}
		return true
	})
	if len(opened) == 0 {
		return
	}
	parents := parentMap(body)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		ov := opened[pass.Info.Uses[id]]
		if ov == nil {
			return true
		}
		switch classifyCloserUse(parents, id) {
		case useReleased:
			ov.released = true
		case useEscaped:
			ov.escaped = true
		}
		return true
	})
	for _, ov := range opened {
		if !ov.released && !ov.escaped {
			pass.Reportf(ov.call.Pos(), "value opened by %s is never closed and never escapes this function: add a defer Close (leaked descriptor/connection)", ov.what)
		}
	}
}

type closerUse int

const (
	useNeutral closerUse = iota
	useReleased
	useEscaped
)

// classifyCloserUse decides what one mention of a tracked closer does with
// it. Unknown contexts default to escaped: the analyzer under-reports rather
// than flag ownership patterns it cannot follow.
func classifyCloserUse(parents map[ast.Node]ast.Node, id *ast.Ident) closerUse {
	// Climb the selector chain the identifier roots (f → f.Body → ...).
	var cur ast.Node = id
	for {
		sel, ok := parents[cur].(*ast.SelectorExpr)
		if !ok || sel.X != cur {
			break
		}
		cur = sel
	}
	// A method call rooted at the value: Close (directly or via a field like
	// resp.Body) releases it; other methods just use the open handle.
	if call, ok := parents[cur].(*ast.CallExpr); ok && call.Fun == cur {
		if sel, ok := cur.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
			return useReleased
		}
		return useNeutral
	}
	switch p := parents[cur].(type) {
	case *ast.CallExpr, *ast.ReturnStmt, *ast.KeyValueExpr, *ast.CompositeLit, *ast.SendStmt, *ast.IndexExpr:
		return useEscaped
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == cur {
				return useNeutral // reassignment target
			}
		}
		return useEscaped // stored under another name
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return useEscaped
		}
		return useNeutral
	case *ast.BinaryExpr, *ast.IfStmt, *ast.SwitchStmt:
		return useNeutral // nil checks and condition reads
	}
	return useEscaped
}

// openerCall reports whether fn's results include an open resource the
// caller owns: a stdlib opener, a repo helper carrying the ReturnsCloser
// fact, or an opener-named method with a Closer result.
func openerCall(pass *Pass, fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if isStdlibOpener(fn) || pass.Facts.ReturnsCloser(fn) {
		return true
	}
	if recvNamed(fn) == nil || !openerMethodNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if implementsCloser(t) || isNamedType(t, "net/http", "Response") {
			return true
		}
	}
	return false
}

// funcDesc renders a callee for diagnostics (Recv.Name or pkg.Name).
func funcDesc(fn *types.Func) string {
	if fn == nil {
		return "opener"
	}
	if recv := recvNamed(fn); recv != nil {
		return recv.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// parentMap records each node's parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
