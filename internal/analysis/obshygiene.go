package analysis

import (
	"go/ast"
	"go/types"
)

// ObsHygiene flags observability wiring that silently lies. The gateway
// routes on /v1/stats snapshots and the chaos suites assert on counters, so
// a metric that is registered but never updated reads as "this subsystem is
// healthy and idle" forever, and a name collision makes one metric's value
// vanish under another's. Four rules:
//
//  1. A Counter/Gauge/Histogram registration whose handle is discarded — the
//     metric appears in snapshots but can never move.
//  2. A handle bound to a variable or struct field that no code ever updates
//     (no Inc/Add/Set/Observe on it anywhere in the package; any escape of
//     the handle silences the rule).
//  3. obs.Counter/Gauge/Histogram constructed directly (composite literal or
//     new) outside internal/obs — the value bypasses the registry and never
//     appears in a snapshot.
//  4. Name collisions: a name registered as both a gauge and a gauge-func
//     anywhere in the tree (via the cross-package registration facts —
//     Snapshot writes gauge-funcs last, silently overwriting), or a
//     gauge-func registered at multiple sites against the same registry
//     object (Registry.GaugeFunc overwrites; only the last registration
//     survives). Sites on different registries — the coordinator and each
//     worker publishing the same name on their own /v1/stats — are the
//     intended per-component pattern and are not flagged.
var ObsHygiene = &Analyzer{
	Name: "obshygiene",
	Doc:  "flags obs metrics that are registered but never updated, constructed outside a registry, or registered under colliding names",
	Run:  runObsHygiene,
}

const obsPkgPath = "prestolite/internal/obs"

var obsUpdateMethods = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "Observe": true,
}

// obsHandle is one registration bound to an object (var or field).
type obsHandle struct {
	kind, name string
	call       *ast.CallExpr
	updated    bool
	escaped    bool
}

func runObsHygiene(pass *Pass) {
	// The obs package constructs its own primitives; everything here is
	// about how other packages wire into it.
	if pass.Pkg.Path() == obsPkgPath {
		return
	}
	handles := map[types.Object]*obsHandle{}
	// defIdents are the identifiers that ARE the registration binding; the
	// use scan must not classify them as uses.
	defIdents := map[*ast.Ident]bool{}
	type localReg struct {
		kind, name string
		call       *ast.CallExpr
		recv       types.Object // the registry expression's object, if resolvable
	}
	var regs []localReg
	fileParents := map[*ast.File]map[ast.Node]ast.Node{}
	for _, file := range pass.Files {
		parents := parentMap(file)
		fileParents[file] = parents
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.CompositeLit:
				if k := obsMetricType(pass.Info.TypeOf(t)); k != "" {
					pass.Reportf(t.Pos(), "obs.%s constructed outside a Registry: it bypasses the registry and never appears in a /v1/stats snapshot — use Registry.%s(name)", k, k)
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(t.Fun).(*ast.Ident); ok && id.Name == "new" && len(t.Args) == 1 {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						if k := obsMetricType(pass.Info.TypeOf(t.Args[0])); k != "" {
							pass.Reportf(t.Pos(), "obs.%s constructed outside a Registry: it bypasses the registry and never appears in a /v1/stats snapshot — use Registry.%s(name)", k, k)
						}
					}
				}
				kind, name := obsRegKind(pass.Info, t)
				if kind == "" {
					return true
				}
				if name != "" {
					regs = append(regs, localReg{kind, name, t, obsRecvObj(pass, t)})
				}
				if kind == "gaugefunc" {
					return true // self-updating: snapshot calls the closure
				}
				switch p := parents[t].(type) {
				case *ast.ExprStmt:
					pass.Reportf(t.Pos(), "%s %q is registered but its handle is discarded: the metric exists in snapshots but can never move", kind, obsDisplayName(name))
				case *ast.AssignStmt:
					for i, rhs := range p.Rhs {
						if ast.Unparen(rhs) == t && i < len(p.Lhs) {
							bindObsHandle(pass, handles, defIdents, p.Lhs[i], kind, name, t)
						}
					}
				case *ast.KeyValueExpr:
					if key, ok := p.Key.(*ast.Ident); ok && ast.Unparen(p.Value) == t {
						if obj := pass.Info.Uses[key]; obj != nil {
							handles[obj] = &obsHandle{kind: kind, name: name, call: t}
							defIdents[key] = true
						}
					}
				case *ast.ValueSpec:
					for i, v := range p.Values {
						if ast.Unparen(v) == t && i < len(p.Names) {
							if obj := pass.Info.Defs[p.Names[i]]; obj != nil {
								handles[obj] = &obsHandle{kind: kind, name: name, call: t}
								defIdents[p.Names[i]] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	if len(handles) > 0 {
		for _, file := range pass.Files {
			parents := fileParents[file]
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || defIdents[id] {
					return true
				}
				h := handles[objectOf(pass.Info, id)]
				if h == nil {
					return true
				}
				switch classifyObsUse(parents, id) {
				case obsUseUpdate:
					h.updated = true
				case obsUseEscape:
					h.escaped = true
				}
				return true
			})
		}
		for _, h := range handles {
			if !h.updated && !h.escaped {
				pass.Reportf(h.call.Pos(), "%s %q is registered and bound but never updated: it reads 0 forever in snapshots — update it or drop the registration", h.kind, obsDisplayName(h.name))
			}
		}
	}
	for _, r := range regs {
		var gauges, gaugefuncs int
		for _, s := range pass.Facts.obsRegs[r.name] {
			switch s.kind {
			case "gauge":
				gauges++
			case "gaugefunc":
				gaugefuncs++
			}
		}
		switch r.kind {
		case "gauge":
			if gaugefuncs > 0 {
				pass.Reportf(r.call.Pos(), "metric name %q is registered as both a gauge and a gauge-func: Snapshot writes gauge-funcs last, so this gauge's value is silently overwritten", r.name)
			}
		case "gaugefunc":
			if gauges > 0 {
				pass.Reportf(r.call.Pos(), "metric name %q is registered as both a gauge and a gauge-func: Snapshot writes gauge-funcs last, silently overwriting the gauge", r.name)
			}
			// Duplicate registration is only a collision when both sites hit
			// the same registry object; the same name on per-component
			// registries is how the fleet publishes comparable stats.
			if r.recv != nil {
				dups := 0
				for _, o := range regs {
					if o.kind == "gaugefunc" && o.name == r.name && o.recv == r.recv {
						dups++
					}
				}
				if dups > 1 {
					pass.Reportf(r.call.Pos(), "gauge-func %q is registered at %d sites on the same registry: Registry.GaugeFunc overwrites, so only the last registration survives", r.name, dups)
				}
			}
		}
	}
}

// obsRecvObj resolves the registry expression a registration call is made
// on (reg.GaugeFunc → reg's object, c.obs.GaugeFunc → the obs field), or
// nil when it is not a plain variable or field.
func obsRecvObj(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return objectOf(pass.Info, x)
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[x]; ok {
			return s.Obj()
		}
	}
	return nil
}

func obsDisplayName(name string) string {
	if name == "" {
		return "(dynamic name)"
	}
	return name
}

func bindObsHandle(pass *Pass, handles map[types.Object]*obsHandle, defIdents map[*ast.Ident]bool, lhs ast.Expr, kind, name string, call *ast.CallExpr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			pass.Reportf(call.Pos(), "%s %q is registered but its handle is discarded: the metric exists in snapshots but can never move", kind, obsDisplayName(name))
			return
		}
		if obj := objectOf(pass.Info, l); obj != nil {
			handles[obj] = &obsHandle{kind: kind, name: name, call: call}
			defIdents[l] = true
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[l]; ok {
			handles[sel.Obj()] = &obsHandle{kind: kind, name: name, call: call}
			defIdents[l.Sel] = true
		}
	}
}

type obsUse int

const (
	obsUseRead obsUse = iota
	obsUseUpdate
	obsUseEscape
)

// classifyObsUse decides what one mention of a bound handle does: an
// Inc/Add/Set/Observe call updates it, other method calls (Load, Snapshot)
// merely read it, and anything else — argument, return, reassignment —
// escapes the analyzer's view and is assumed to update.
func classifyObsUse(parents map[ast.Node]ast.Node, id *ast.Ident) obsUse {
	var cur ast.Node = id
	if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.Sel == id {
		cur = sel
	}
	if m, ok := parents[cur].(*ast.SelectorExpr); ok && m.X == cur {
		if call, ok := parents[m].(*ast.CallExpr); ok && call.Fun == m {
			if obsUpdateMethods[m.Sel.Name] {
				return obsUseUpdate
			}
			return obsUseRead
		}
	}
	switch p := parents[cur].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == cur {
				return obsUseRead // overwritten, not consulted
			}
		}
		return obsUseEscape
	case *ast.BinaryExpr, *ast.IfStmt:
		return obsUseRead // nil checks
	case *ast.Field:
		return obsUseRead // the struct-field declaration itself, not a use
	}
	return obsUseEscape
}

// obsMetricType returns the obs metric type name of t (through one pointer),
// or "".
func obsMetricType(t types.Type) string {
	for _, name := range []string{"Counter", "Gauge", "Histogram"} {
		if isNamedType(t, obsPkgPath, name) {
			return name
		}
	}
	return ""
}
