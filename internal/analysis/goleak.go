package analysis

import (
	"go/ast"
)

// GoLeak flags goroutines that can never terminate. The driver pipelines,
// local exchange, segment writer and producer layers spawn a goroutine per
// pipeline/partition; one spawned without a termination path outlives its
// query and accumulates for the life of the worker — the leak class the
// chaos suite's goroutine-count checks only catch when the leaking
// interleaving actually executes. Two rules:
//
//  1. A go statement whose body (or a function it calls, via the cross-
//     package Unstoppable fact) loops forever with no return, no break
//     binding to the loop, no goto and no terminating call.
//  2. wg.Add called inside the spawned goroutine on a WaitGroup declared
//     outside it: the Add races the matching Wait, which may observe the
//     counter at zero and return before the goroutine ever runs.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "flags goroutines with no termination path (infinite loops with no exit, directly or through a called function) and wg.Add calls made inside the spawned goroutine",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, g)
			}
			return true
		})
	}
}

func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		checkSpawnedWgAdd(pass, lit)
		if pos := unstoppableLoopPos(lit.Body); pos.IsValid() {
			pass.Reportf(pos, "goroutine loops forever with no way to stop (no return, break or terminating call): it leaks for the life of the process — add a ctx.Done/stop-channel arm")
		}
		checkUnstoppableCallees(pass, lit.Body)
		return
	}
	// go pkg.Fn(...) / go recv.Method(...): the leak lives in the callee.
	if fn := calleeFunc(pass.Info, g.Call); fn != nil {
		if pos, ok := pass.Facts.Unstoppable(fn); ok {
			pass.Reportf(g.Go, "goroutine runs %s, which loops forever with no way to stop (loop at %s): it leaks for the life of the process", fn.Name(), pos)
		}
	}
}

// checkUnstoppableCallees reports calls inside a spawned literal to functions
// carrying the Unstoppable fact. Nested literals are separate goroutines (or
// deferred work) and get their own go statements if spawned.
func checkUnstoppableCallees(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass.Info, call); fn != nil {
			if pos, ok := pass.Facts.Unstoppable(fn); ok {
				pass.Reportf(call.Pos(), "goroutine calls %s, which loops forever with no way to stop (loop at %s): it leaks for the life of the process", fn.Name(), pos)
			}
		}
		return true
	})
}

// checkSpawnedWgAdd flags wg.Add inside the spawned literal when the
// WaitGroup is declared outside it (captured variable or field). A WaitGroup
// created inside the goroutine is its own synchronization domain and is fine.
func checkSpawnedWgAdd(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || !isMethod(fn, "sync", "WaitGroup", "Add") {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := baseIdent(sel.X)
		if !ok {
			return true
		}
		obj := objectOf(pass.Info, base)
		if obj == nil {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			pass.Reportf(call.Pos(), "wg.Add inside the spawned goroutine races the matching Wait (Wait may observe zero and return before this Add runs): call Add before the go statement")
		}
		return true
	})
}
