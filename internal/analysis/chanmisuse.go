package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ChanMisuse flags channel lifecycle and composition mistakes in three
// forms:
//
//  1. A send on — or second close of — a channel already closed on the same
//     path. The walker tracks closed channel expressions linearly through
//     each function body (branch bodies get copies, reassignment via make
//     clears), the same simulation style as lockheld.
//  2. A call, made while a sync.Mutex/RWMutex is held, to a function whose
//     body performs a blocking channel operation (the cross-package
//     BlockingChan fact). This is the interprocedural extension of
//     lockheld's direct-operation rule: the channel peer often needs the
//     same lock to make progress, which is the classic driver/exchange
//     deadlock.
//  3. In the driver hot paths (internal/execution, internal/ingest): a
//     select inside an infinite for-loop with no default and no
//     cancellation arm (no receive from a chan struct{} such as ctx.Done()
//     or a stop channel). Query cancellation cannot stop such a loop; it
//     parks forever once its peers exit.
var ChanMisuse = &Analyzer{
	Name: "chanmisuse",
	Doc:  "flags sends/closes on channels already closed on the same path, calls that block on channels while a mutex is held, and select loops without a cancellation arm in driver hot paths",
	Run:  runChanMisuse,
}

func runChanMisuse(pass *Pass) {
	w := &closedChanWalker{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.stmts(fn.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				w.stmts(fn.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
	chanBlockedUnderLock(pass)
	if hotChanPath(pass.Pkg.Path()) {
		for _, file := range pass.Files {
			checkSelectLoops(pass, file)
		}
	}
}

// hotChanPath scopes the select-loop rule to the operator/driver hot paths.
func hotChanPath(path string) bool {
	return strings.Contains(path, "internal/execution") || strings.Contains(path, "internal/ingest")
}

// ---------------------------------------------------------------------------
// Rule 1: closed-channel tracking.

// closedChanWalker simulates the set of closed channels through a function
// body, keyed by the printed channel expression.
type closedChanWalker struct {
	pass *Pass
}

func (w *closedChanWalker) stmts(list []ast.Stmt, closed map[string]token.Pos) {
	for _, s := range list {
		w.stmt(s, closed)
	}
}

func (w *closedChanWalker) stmt(s ast.Stmt, closed map[string]token.Pos) {
	switch t := s.(type) {
	case *ast.ExprStmt:
		if ch, pos, ok := closeCall(w.pass.Info, t.X); ok {
			if prev, dup := closed[ch]; dup {
				w.pass.Reportf(pos, "close of %q, already closed at %s: closing a closed channel panics", ch, w.pass.Fset.Position(prev))
			}
			closed[ch] = pos
		}
	case *ast.SendStmt:
		key := types.ExprString(t.Chan)
		if prev, ok := closed[key]; ok {
			w.pass.Reportf(t.Arrow, "send on %q, closed at %s: sending on a closed channel panics", key, w.pass.Fset.Position(prev))
		}
	case *ast.AssignStmt:
		// Reassignment (ch = make(...)) makes the old closed channel
		// unreachable through this name.
		for _, lhs := range t.Lhs {
			delete(closed, types.ExprString(lhs))
		}
	case *ast.BlockStmt:
		w.stmts(t.List, closed)
	case *ast.LabeledStmt:
		w.stmt(t.Stmt, closed)
	case *ast.IfStmt:
		if t.Init != nil {
			w.stmt(t.Init, closed)
		}
		w.stmts(t.Body.List, copyHeld(closed))
		if t.Else != nil {
			w.stmt(t.Else, copyHeld(closed))
		}
	case *ast.ForStmt:
		if t.Init != nil {
			w.stmt(t.Init, closed)
		}
		w.stmts(t.Body.List, copyHeld(closed))
	case *ast.RangeStmt:
		w.stmts(t.Body.List, copyHeld(closed))
	case *ast.SwitchStmt:
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(closed))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(closed))
			}
		}
	case *ast.SelectStmt:
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeld(closed))
			}
		}
		// GoStmt/DeferStmt: deferred closes run at function end and spawned
		// goroutines interleave arbitrarily; neither extends the linear path.
	}
}

// closeCall matches a statement-level `close(ch)` on the builtin and returns
// the printed channel expression.
func closeCall(info *types.Info, e ast.Expr) (string, token.Pos, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", token.NoPos, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return "", token.NoPos, false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return "", token.NoPos, false
	}
	return types.ExprString(call.Args[0]), call.Pos(), true
}

// ---------------------------------------------------------------------------
// Rule 2: blocking channel operations reached through a call, under a lock.

func chanBlockedUnderLock(pass *Pass) {
	w := &lockHeldWalker{pass: pass}
	w.visit = func(call *ast.CallExpr, held map[string]token.Pos) {
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return
		}
		if pos, ok := pass.Facts.BlockingChan(fn); ok {
			lock, acquired := minHeld(held)
			pass.Reportf(call.Pos(), "call to %s, which blocks on a channel operation (%s), while %q is held (acquired at %s): the channel peer may need this lock to make progress",
				fn.Name(), pos, lock, pass.Fset.Position(acquired))
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.stmts(fn.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				w.stmts(fn.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// Rule 3: select loops without a cancellation arm (hot paths only).

func checkSelectLoops(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			switch t := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt:
				// Nested loops bound their own selects: conditional ones can
				// exit by condition, infinite ones get their own visit from
				// the outer inspection.
				return false
			case *ast.SelectStmt:
				if !selectHasDefault(t) && !selectHasCancelArm(pass, t) {
					pass.Reportf(t.Select, "select loop without a cancellation arm (no receive from ctx.Done or a stop channel): query cancellation cannot stop this loop")
				}
				return false
			}
			return true
		})
		return true
	})
}

// selectHasCancelArm reports whether any comm clause receives from a channel
// of empty struct — the shape of both ctx.Done() and the stop/done channels
// threaded through the drivers.
func selectHasCancelArm(pass *Pass, s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch t := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = t.X
		case *ast.AssignStmt:
			if len(t.Rhs) == 1 {
				recv = t.Rhs[0]
			}
		}
		un, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok || un.Op != token.ARROW {
			continue
		}
		t := pass.TypeOf(un.X)
		if t == nil {
			continue
		}
		if ch, ok := t.Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}
