package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ClockDet flags direct wall-clock access in packages threaded with
// fault.Clock. The chaos suites replay failures deterministically from a
// CHAOS_SEED; that only works if every time source in the replayed path goes
// through the injected clock. A single direct time.Now or time.Sleep is
// invisible to fault.ManualClock — the replay silently runs on real time and
// the failure stops reproducing, which is the worst possible failure mode
// for a debugging tool. The analyzer is scoped to the clock-threaded
// subsystems (cluster, ingest, druid, resource, gateway) plus any package
// that declares a fault.Clock-typed variable, field or parameter — declaring
// one is opting into injected time everywhere in the package.
var ClockDet = &Analyzer{
	Name: "clockdet",
	Doc:  "flags direct time.Now/Sleep/After/NewTimer/... calls in packages threaded with fault.Clock, where wall-clock access silently breaks CHAOS_SEED replay",
	Run:  runClockDet,
}

// clockFuncs are the time-package functions that read or schedule against
// the wall clock. Pure conversions (time.Unix, time.Parse, time.Duration
// arithmetic) are deterministic and allowed.
var clockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "Tick": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

// clockScopedPaths are the subsystems cluster.ClientConfig threads its clock
// through; fixtures impersonate subpackages of these to exercise the rule.
var clockScopedPaths = []string{
	"prestolite/internal/cluster",
	"prestolite/internal/ingest",
	"prestolite/internal/druid",
	"prestolite/internal/resource",
	"prestolite/internal/gateway",
	// The vector kernels carry no clock at all: any wall-clock read there
	// is per-batch overhead and a determinism leak (kernel results feed
	// CHAOS_SEED-replayed plans), so the whole package is scoped.
	"prestolite/internal/execution/vector",
	// The cache tiers make TTL-expiry decisions; a wall-clock read there
	// makes chaos replay see different hit/miss sequences run over run, so
	// every cache (chunk, result, footer) must use the injected clock.
	"prestolite/internal/cache",
}

func runClockDet(pass *Pass) {
	if !clockScoped(pass) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !clockFuncs[fn.Name()] || !isPkgFunc(fn, "time", fn.Name()) {
				return true
			}
			pass.Reportf(call.Pos(), "direct time.%s in a clock-threaded package: wall-clock access is invisible to fault.ManualClock and breaks CHAOS_SEED replay — use the injected fault.Clock", fn.Name())
			return true
		})
	}
}

func clockScoped(pass *Pass) bool {
	path := pass.Pkg.Path()
	// fault implements the real clock; its time calls are the injection point.
	if path == "prestolite/internal/fault" {
		return false
	}
	for _, p := range clockScopedPaths {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	for _, obj := range pass.Info.Defs {
		if v, ok := obj.(*types.Var); ok && isNamedType(v.Type(), "prestolite/internal/fault", "Clock") {
			return true
		}
	}
	return false
}
