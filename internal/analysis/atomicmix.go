package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix flags variables (struct fields or package-level vars) that are
// accessed both through sync/atomic functions and through plain loads and
// stores. Mixing the two silently downgrades every atomic guarantee: the
// plain access races with the atomic one, and the race detector only
// catches it when both sides actually collide under test. This guards the
// obs registry pattern — metric fields published to concurrent snapshot
// readers must be atomic on every access path. (Fields of type
// atomic.Int64 & co. are immune by construction; this catches the
// old-style `atomic.AddInt64(&s.n, 1)` fields.)
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags fields accessed both via sync/atomic and via plain loads/stores",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	// Pass 1: find every `atomic.Xxx(&v, ...)` and record v's object, plus
	// the selector/ident nodes consumed by those calls so pass 2 can skip
	// them.
	atomicUse := map[types.Object]token.Pos{}
	inAtomic := map[ast.Node]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || recvNamed(fn) != nil {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				target := ast.Unparen(unary.X)
				if obj := addressableObj(pass, target); obj != nil {
					if _, seen := atomicUse[obj]; !seen {
						atomicUse[obj] = call.Pos()
					}
					inAtomic[target] = true
				}
			}
			return true
		})
	}
	if len(atomicUse) == 0 {
		return
	}
	// Pass 2: any other load or store of those objects is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if inAtomic[n] {
				return false
			}
			var obj types.Object
			switch t := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[t]; ok {
					obj = sel.Obj()
				}
			case *ast.Ident:
				obj = pass.Info.Uses[t]
			default:
				return true
			}
			pos, ok := atomicUse[obj]
			if !ok {
				return true
			}
			pass.Reportf(n.Pos(), "%s is accessed with sync/atomic (e.g. at %s) but read/written directly here: every access must go through atomic or the guarantee is void",
				objLabel(obj), pass.Fset.Position(pos))
			return false
		})
	}
}

// addressableObj resolves the variable object behind `&expr` when expr is a
// field selection or a plain variable.
func addressableObj(pass *Pass, e ast.Expr) types.Object {
	switch t := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[t]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
		}
	case *ast.Ident:
		// Package-level variables only: a local accessed plainly after a
		// goroutine join is a legitimate (happens-before) pattern.
		if v, ok := pass.Info.Uses[t].(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
			return v
		}
	case *ast.IndexExpr:
		// &arr[i]: attribute the access to the array variable/field.
		return addressableObj(pass, ast.Unparen(t.X))
	}
	return nil
}

func objLabel(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return "field " + strings.TrimPrefix(v.Name(), "*")
	}
	return "variable " + obj.Name()
}
