package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenCases maps each fixture package under testdata to the analyzers run
// over it and the import path it is loaded as. The hotalloc, chanmisuse and
// clockdet fixtures impersonate packages inside the subsystems those
// analyzers are scoped to by import path. The suppress fixture runs the full
// suite to prove a directive silences exactly its target and nothing else.
var goldenCases = []struct {
	dir        string
	importPath string
	analyzers  []string // nil means all
}{
	{"lockheld", "prestolite/internal/analysis/testdata/lockheld", []string{"lockheld"}},
	{"ctxflow", "prestolite/internal/analysis/testdata/ctxflow", []string{"ctxflow"}},
	{"errdrop", "prestolite/internal/analysis/testdata/errdrop", []string{"errdrop"}},
	{"atomicmix", "prestolite/internal/analysis/testdata/atomicmix", []string{"atomicmix"}},
	{"hotalloc", "prestolite/internal/execution/testfixture", []string{"hotalloc"}},
	{"goleak", "prestolite/internal/analysis/testdata/goleak", []string{"goleak"}},
	{"chanmisuse", "prestolite/internal/execution/chanmisusefixture", []string{"chanmisuse"}},
	{"clockdet", "prestolite/internal/cluster/clockfixture", []string{"clockdet"}},
	// cachettl loads under the cache tier's import path, scoped by PR10:
	// TTL expiry read off the wall clock changes hit/miss sequences under
	// chaos replay, so the cache package is held to injected time.
	{"cachettl", "prestolite/internal/cache/ttlfixture", []string{"clockdet"}},
	{"closeleak", "prestolite/internal/analysis/testdata/closeleak", []string{"closeleak"}},
	{"obshygiene", "prestolite/internal/analysis/testdata/obshygiene", []string{"obshygiene"}},
	// vectorhot loads under the vector kernels' import path, where the
	// hot-loop, clock-determinism and metrics-hygiene rules all apply to
	// one package — the lint surface PR8's kernel code is held to.
	{"vectorhot", "prestolite/internal/execution/vector/vectorhotfixture", []string{"hotalloc", "clockdet", "obshygiene"}},
	// wal loads under the ingest tree's import path, where the durability
	// rules stack: leaked segment handles (closeleak), wall-clock reads in
	// recovery (clockdet) and dropped fsync/commit errors (errdrop) — the
	// lint surface the PR9 WAL code is held to.
	{"wal", "prestolite/internal/ingest/walfixture", []string{"closeleak", "clockdet", "errdrop"}},
	{"suppress", "prestolite/internal/analysis/testdata/suppress", nil},
}

// TestGolden type-checks each fixture package, runs its analyzers, and
// compares the rendered diagnostics against testdata/<dir>/expected.golden.
// Regenerate expectations with:
//
//	PRESTOLINT_UPDATE=1 go test ./internal/analysis -run TestGolden
func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", tc.dir))
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := LoadDir(dir, tc.importPath)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			analyzers := All()
			if tc.analyzers != nil {
				analyzers = analyzers[:0]
				for _, name := range tc.analyzers {
					a := ByName(name)
					if a == nil {
						t.Fatalf("unknown analyzer %q", name)
					}
					analyzers = append(analyzers, a)
				}
			}
			got := Format(Run([]*Package{pkg}, analyzers), true)
			// Positions embedded inside messages ("acquired at ...") carry
			// absolute paths; strip the fixture directory so expectations are
			// machine-independent.
			got = strings.ReplaceAll(got, dir+string(os.PathSeparator), "")

			goldenPath := filepath.Join("testdata", tc.dir, "expected.golden")
			if os.Getenv("PRESTOLINT_UPDATE") != "" {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", goldenPath)
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with PRESTOLINT_UPDATE=1 to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			// Every analyzer-specific fixture must demonstrate at least one
			// true positive, or the golden test proves nothing.
			for _, name := range tc.analyzers {
				if !strings.Contains(got, ": "+name+": ") {
					t.Errorf("fixture %s has no %s finding", tc.dir, name)
				}
			}
		})
	}
}

// TestSuppressGolden pins the two structural guarantees of the suppression
// fixture beyond the golden text: the reasoned directives silenced their
// findings, and the malformed directive surfaced as a "lint" finding.
func TestSuppressGolden(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "prestolite/internal/analysis/testdata/suppress")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, All())
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["lint"] != 1 {
		t.Errorf("want exactly 1 malformed-directive finding, got %d", byAnalyzer["lint"])
	}
	// errdrop fires in malformed() (directive void) and wrongName() (name
	// mismatch) but not in suppressed() or wildcard().
	if byAnalyzer["errdrop"] != 2 {
		t.Errorf("want exactly 2 surviving errdrop findings, got %d", byAnalyzer["errdrop"])
	}
}
