package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression invokes, or
// nil for calls through function-typed variables, built-ins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified package function: pkg.Fn.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && recvNamed(fn) == nil
}

// recvNamed returns the named type of fn's receiver (through one pointer),
// or nil for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// isMethod reports whether fn is method name on type pkgPath.typeName
// (value, pointer or interface receiver).
func isMethod(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	n := recvNamed(fn)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == typeName
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// isNamedType reports whether t (through one pointer) is pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool { return isNamedType(t, "context", "Context") }

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isEmptyInterface reports whether t is interface{} / any.
func isEmptyInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.Empty()
}

// isLockType reports whether t (through one pointer) is sync.Mutex or
// sync.RWMutex.
func isLockType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// funcHasCtxParam returns the name of ft's context.Context parameter, or
// the name of its *http.Request parameter suffixed with ".Context()", or
// "" when the function carries no request context. Used to phrase ctxflow
// diagnostics.
func requestCtxSource(info *types.Info, ft *ast.FuncType) string {
	if ft == nil || ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		t := info.TypeOf(field.Type)
		name := ""
		if len(field.Names) > 0 {
			name = field.Names[0].Name
		}
		if name == "_" || name == "" {
			continue
		}
		if isContext(t) {
			return name
		}
		if isNamedType(t, "net/http", "Request") {
			return name + ".Context()"
		}
	}
	return ""
}
