package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotPackagePaths marks the vectorized kernels: packages whose loop bodies
// are per-row or per-page hot paths. A fixture package can opt in by using
// an import path containing one of these fragments.
var hotPackagePaths = []string{"internal/execution", "internal/block"}

// HotAlloc flags per-row allocation creep inside the loops of the
// vectorized kernels (internal/execution, internal/block). The engine's
// whole performance story is "process a vector per call, allocate per
// batch"; one fmt.Sprintf or []any box inside a row loop turns a
// memory-bandwidth workload into a garbage-collection workload and
// regresses silently until a profile catches it. Inside any for/range body
// of a hot package the analyzer reports:
//
//   - fmt.Sprintf / fmt.Sprint / fmt.Sprintln / fmt.Fprint* — reflective
//     formatting allocates on every row; use strconv appends or typed
//     kernels;
//   - make([]any, ...) / []any{...} — building boxed row vectors per
//     iteration;
//   - boxing: assigning or appending a concrete value into an
//     interface{}-typed slot.
//
// Cold loops that legitimately format (EXPLAIN rendering, error paths) are
// expected to carry a `//lint:ignore hotalloc <reason>` with the reason
// naming why the loop is not per-row.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags fmt formatting, []any allocation and interface boxing inside row loops of the vectorized kernels",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	hot := false
	for _, frag := range hotPackagePaths {
		if strings.Contains(pass.Pkg.Path(), frag) {
			hot = true
		}
	}
	if !hot {
		return
	}
	for _, file := range pass.Files {
		// Collect loop body extents; anything positioned inside one is in a
		// row loop (nested closures included — sort comparators run per
		// comparison).
		var loops []*ast.BlockStmt
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, t.Body)
			case *ast.RangeStmt:
				loops = append(loops, t.Body)
			}
			return true
		})
		inLoop := func(n ast.Node) bool {
			for _, b := range loops {
				if b.Pos() <= n.Pos() && n.End() <= b.End() {
					return true
				}
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.CallExpr:
				if !inLoop(t) {
					return true
				}
				checkHotCall(pass, t)
			case *ast.CompositeLit:
				if !inLoop(t) {
					return true
				}
				if typ := pass.TypeOf(t); typ != nil {
					if sl, ok := typ.Underlying().(*types.Slice); ok && isEmptyInterface(sl.Elem()) {
						pass.Reportf(t.Pos(), "[]any literal in a row loop allocates a boxed vector per iteration; hoist or use typed columns")
					}
				}
			case *ast.AssignStmt:
				if !inLoop(t) {
					return true
				}
				checkBoxingAssign(pass, t)
			}
			return true
		})
	}
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && recvNamed(fn) == nil {
		switch fn.Name() {
		case "Sprintf", "Sprint", "Sprintln", "Fprintf", "Fprint", "Fprintln":
			pass.Reportf(call.Pos(), "fmt.%s in a row loop: reflective formatting allocates per row; use strconv appends or a typed kernel", fn.Name())
			return
		}
	}
	// make([]any, ...): a boxed row vector per iteration.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" && isBuiltin(pass, id) {
		if len(call.Args) > 0 {
			if typ := pass.TypeOf(call.Args[0]); typ != nil {
				if sl, ok := typ.Underlying().(*types.Slice); ok && isEmptyInterface(sl.Elem()) {
					pass.Reportf(call.Pos(), "make([]any, ...) in a row loop allocates a boxed vector per iteration; hoist the scratch slice out of the loop")
				}
			}
		}
		return
	}
	// append(ifaceSlice, concrete): boxes the value on every row.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass, id) && !call.Ellipsis.IsValid() {
		if len(call.Args) >= 2 {
			if sl, ok := typeAsSlice(pass.TypeOf(call.Args[0])); ok && isEmptyInterface(sl.Elem()) {
				for _, arg := range call.Args[1:] {
					at := pass.TypeOf(arg)
					if at != nil && !isEmptyInterfaceOrIface(at) {
						pass.Reportf(arg.Pos(), "appending a concrete %s into []any in a row loop boxes per row", at.String())
					}
				}
			}
		}
	}
}

// checkBoxingAssign flags `x = v` where x is interface{}-typed and v is a
// concrete value (an allocation per assignment once v escapes).
func checkBoxingAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := pass.TypeOf(as.Lhs[i])
		rt := pass.TypeOf(as.Rhs[i])
		if lt == nil || rt == nil || !isEmptyInterface(lt) || isEmptyInterfaceOrIface(rt) {
			continue
		}
		if isUntypedNil(pass, as.Rhs[i]) {
			continue
		}
		pass.Reportf(as.Rhs[i].Pos(), "assigning concrete %s into an interface{} slot in a row loop boxes per row", rt.String())
	}
}

func isBuiltin(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok
}

func typeAsSlice(t types.Type) (*types.Slice, bool) {
	if t == nil {
		return nil, false
	}
	sl, ok := t.Underlying().(*types.Slice)
	return sl, ok
}

func isEmptyInterfaceOrIface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}
