package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, "" for
// the current directory), type-checks each from source, and returns them
// ready for Run. Test files are not loaded: the invariants guard production
// code, and fixtures exercising the analyzers live under testdata instead.
//
// Dependencies are resolved from compiler export data: the loader shells
// out to `go list -export -deps`, which (re)builds whatever is stale and
// reports the export file of every package in the import graph. That keeps
// the loader stdlib-only — no golang.org/x/tools — while staying fully
// module- and build-cache-aware.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, p.Dir, absJoin(p.Dir, p.GoFiles))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks the .go files of one directory as a single
// package under the given import path, resolving its imports from export
// data. This is the golden-file test harness entry point: fixture packages
// live under testdata (invisible to the go tool) but still get full type
// information. importPath is what pass.Pkg.Path() will report, letting
// fixtures impersonate hot-path packages for path-scoped analyzers.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	parsed := make([]*ast.File, 0, len(files))
	var imports []string
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil {
				imports = append(imports, path)
			}
		}
	}
	exports, err := cachedExports(imports)
	if err != nil {
		return nil, err
	}
	return typeCheckParsed(fset, exportImporter(fset, exports), importPath, dir, parsed)
}

// goList runs `go list -export -deps -json` and decodes the package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a go/types importer that resolves every import
// from the export files in exports.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	parsed := make([]*ast.File, 0, len(files))
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return typeCheckParsed(fset, imp, path, dir, parsed)
}

func typeCheckParsed(fset *token.FileSet, imp types.Importer, path, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}

func absJoin(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// cachedExports resolves export files for the given import paths (plus
// transitive deps), memoizing across calls so a test binary shells out to
// `go list` at most once per new package.
var exportCache = struct {
	sync.Mutex
	m map[string]string
}{m: map[string]string{}}

func cachedExports(imports []string) (map[string]string, error) {
	var missing []string
	seen := map[string]bool{}
	exportCache.Lock()
	for _, p := range imports {
		if p == "C" || seen[p] {
			continue
		}
		seen[p] = true
		if _, ok := exportCache.m[p]; !ok {
			missing = append(missing, p)
		}
	}
	exportCache.Unlock()

	// Shell out with the lock released (lockheld's own invariant); a racing
	// goroutine at worst lists the same packages and stores the same paths.
	var listed []*listPackage
	if len(missing) > 0 {
		sort.Strings(missing)
		pkgs, err := goList("", missing)
		if err != nil {
			return nil, err
		}
		listed = pkgs
	}

	exportCache.Lock()
	defer exportCache.Unlock()
	for _, p := range listed {
		if p.Export != "" {
			exportCache.m[p.ImportPath] = p.Export
		}
	}
	out := make(map[string]string, len(exportCache.m))
	for k, v := range exportCache.m {
		out[k] = v
	}
	return out, nil
}
