package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop flags discarded error results. An error silently dropped in a
// server is an incident with the evidence deleted: the query fails, the
// stats endpoint lies, and nobody can say why. Two forms are reported:
//
//   - a call statement whose result set contains an error that nobody
//     reads, including `enc.Encode(v)` in HTTP handlers;
//   - an error explicitly discarded into `_` without a trailing comment on
//     the same line saying why that is safe.
//
// Deliberately exempt (documented, not configurable): `defer`/`go`
// statements (error handling there needs named results and is a different
// idiom), fmt.Print/Printf/Println to stdout, fmt.Fprint* into a
// *bytes.Buffer or *strings.Builder, writes into those two types and into
// hash.Hash implementations — all of which are specified never to fail.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error returns; `_ = err` needs a trailing reason comment",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Files {
		// Lines holding a trailing comment: the written-reason escape hatch
		// for `_ =` discards.
		commented := map[int]bool{}
		for _, cg := range file.Comments {
			commented[pass.Fset.Position(cg.Pos()).Line] = true
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// Exempt the deferred/spawned call itself, but keep walking
				// its arguments (evaluated immediately).
				var call *ast.CallExpr
				if d, ok := t.(*ast.DeferStmt); ok {
					call = d.Call
				} else {
					call = t.(*ast.GoStmt).Call
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(n ast.Node) bool { return inspectErrDrop(pass, commented, n) })
				}
				ast.Inspect(call.Fun, func(n ast.Node) bool { return inspectErrDrop(pass, commented, n) })
				return false
			}
			return inspectErrDrop(pass, commented, n)
		})
	}
}

func inspectErrDrop(pass *Pass, commented map[int]bool, n ast.Node) bool {
	switch t := n.(type) {
	case *ast.ExprStmt:
		call, ok := ast.Unparen(t.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		if pos, name := droppedErrCall(pass, call); pos.IsValid() {
			pass.Reportf(pos, "result of %s contains an error that is never checked", name)
		}
	case *ast.AssignStmt:
		checkBlankErrAssign(pass, commented, t)
	}
	return true
}

// droppedErrCall reports whether the statement-call's results include an
// error, returning the report position and a callee label.
func droppedErrCall(pass *Pass, call *ast.CallExpr) (token.Pos, string) {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return token.NoPos, ""
	}
	hasErr := false
	switch rt := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				hasErr = true
			}
		}
	default:
		hasErr = isErrorType(tv.Type)
	}
	if !hasErr {
		return token.NoPos, ""
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return call.Pos(), "call"
	}
	if errExemptFunc(pass, fn, call) {
		return token.NoPos, ""
	}
	label := fn.Name()
	if recv := recvNamed(fn); recv != nil {
		label = recv.Obj().Name() + "." + label
	} else if fn.Pkg() != nil {
		label = fn.Pkg().Name() + "." + label
	}
	return call.Pos(), label
}

// errExemptFunc lists callees whose errors are specified never to occur or
// have no sane handling (terminal prints).
func errExemptFunc(pass *Pass, fn *types.Func, call *ast.CallExpr) bool {
	if fn.Pkg() == nil {
		return false
	}
	if recvNamed(fn) == nil {
		switch {
		case fn.Pkg().Path() == "fmt":
			switch fn.Name() {
			case "Print", "Printf", "Println":
				return true // stdout; nothing sane to do on failure
			case "Fprint", "Fprintf", "Fprintln":
				// Terminal prints and in-memory buffers: the former have no
				// recovery, the latter cannot fail.
				return len(call.Args) > 0 &&
					(isMemWriter(pass.TypeOf(call.Args[0])) || isStdStream(pass, call.Args[0]))
			}
		}
		return false
	}
	// Resolve the receiver's *static expression* type, not the method's
	// declaring type: hash.Hash64's Write is declared on the embedded
	// io.Writer, but the receiver expression still has the hash type.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	rt := pass.TypeOf(sel.X)
	if isMemWriter(rt) {
		return true
	}
	// hash.Hash and friends: "Write ... never returns an error".
	if n := namedOf(rt); n != nil && n.Obj().Pkg() != nil {
		pkg := n.Obj().Pkg().Path()
		return pkg == "hash" || len(pkg) > 5 && pkg[:5] == "hash/"
	}
	return false
}

// isMemWriter reports whether t (through one pointer) is an in-memory
// writer whose methods never fail.
func isMemWriter(t types.Type) bool {
	return isNamedType(t, "bytes", "Buffer") || isNamedType(t, "strings", "Builder")
}

// isStdStream reports whether e denotes os.Stdout or os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	return ok && v.Pkg() != nil && v.Pkg().Path() == "os" &&
		(v.Name() == "Stdout" || v.Name() == "Stderr")
}

// checkBlankErrAssign flags `_ = f()` / `v, _ := g()` discards of error
// values that lack a trailing reason comment.
func checkBlankErrAssign(pass *Pass, commented map[int]bool, as *ast.AssignStmt) {
	resultTypes := func(i int) types.Type {
		if len(as.Rhs) == len(as.Lhs) {
			return pass.TypeOf(as.Rhs[i])
		}
		// Multi-value form: one call on the RHS.
		if len(as.Rhs) == 1 {
			if tuple, ok := pass.TypeOf(as.Rhs[0]).(*types.Tuple); ok && tuple.Len() > i {
				return tuple.At(i).Type()
			}
		}
		return nil
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if !isErrorType(resultTypes(i)) {
			continue
		}
		// Exempt single-call discards of exempt callees (`_, _ = buf.Write(p)`).
		if len(as.Rhs) == 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
				if fn := calleeFunc(pass.Info, call); fn != nil && errExemptFunc(pass, fn, call) {
					continue
				}
			}
		}
		if commented[pass.Fset.Position(as.Pos()).Line] {
			continue // discard carries a written reason
		}
		pass.Reportf(id.Pos(), "error discarded into _ without a reason comment on the same line")
	}
}
