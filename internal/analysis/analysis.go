// Package analysis is a from-scratch, stdlib-only static-analysis framework
// (prestolint) enforcing the engine's concurrency, context and hot-path
// invariants. The paper's central claim is that Presto stays correct and
// fast while coordinator, workers, gateway and caches mutate shared
// query/task state under heavy concurrent traffic; most production incidents
// in that regime come from lock contention, leaked request contexts and
// per-row allocation creep rather than planner bugs. Those invariants are
// machine-checked here instead of reviewed by hand:
//
//   - lockheld:  no blocking call (HTTP, channel ops, time.Sleep, file or
//     network I/O) while a sync.Mutex/RWMutex is held.
//   - ctxflow:   no context.Background()/TODO() inside request paths that
//     already carry a context, and no ctx parameter that is silently
//     dropped while calling context-aware callees.
//   - errdrop:   no discarded error results; `_ = err` needs a trailing
//     reason comment.
//   - atomicmix: no struct field accessed both via sync/atomic and via
//     plain loads/stores.
//   - hotalloc:  no fmt formatting or interface{} boxing allocations inside
//     the per-row loops of the vectorized kernels.
//
// and the concurrency/lifecycle suite added with the ingestion and driver
// machinery (goroutine-heavy code the intra-function analyzers above cannot
// see into):
//
//   - goleak:     no goroutines without a way to terminate (unstoppable
//     loops, wg.Add inside the spawned goroutine).
//   - chanmisuse: no sends/closes on already-closed channels, no calls that
//     block on channels while a mutex is held (interprocedural, via the
//     fact store), no select loops without a cancellation arm in driver
//     hot paths.
//   - clockdet:   no direct time.Now/Sleep/After/... in packages threaded
//     with fault.Clock — direct wall-time breaks CHAOS_SEED replay.
//   - closeleak:  no io.Closer obtained from an opener that neither escapes
//     nor gets closed.
//   - obshygiene: no obs metrics that are registered but never updated,
//     constructed outside a registry, or registered under colliding names.
//
// The framework is deliberately free of golang.org/x/tools: packages are
// loaded with `go list -export` plus go/types (see load.go), analyzers are
// plain functions over a Pass, cross-package reasoning goes through a fact
// store computed in a pre-pass (see facts.go), and diagnostics can be
// suppressed — with a written reason — via `//lint:ignore <analyzer>
// <reason>` comments (see suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:ignore <name> <reason>` suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// encodes (shown by `prestolint -list`).
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Facts is the cross-package fact store computed over every loaded
	// package before any analyzer ran (see facts.go).
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns every registered analyzer, sorted by name. The suite is the
// product surface of prestolint: new invariants are added here.
func All() []*Analyzer {
	all := []*Analyzer{
		AtomicMix, CtxFlow, ErrDrop, HotAlloc, LockHeld,
		ChanMisuse, ClockDet, CloseLeak, GoLeak, ObsHygiene,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies each analyzer to each package, drops diagnostics suppressed by
// a well-formed `//lint:ignore` comment, reports malformed suppression
// comments as diagnostics of the pseudo-analyzer "lint", and returns the
// remainder sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := ComputeFacts(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		diags = append(diags, sup.malformed...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    facts,
				diags:    &raw,
			}
			a.Run(pass)
		}
		for _, d := range raw {
			if !sup.suppresses(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Format renders diagnostics one per line. With baseNames set, file paths
// are reduced to their base name (used by the golden-file test harness so
// expectations are machine-independent).
func Format(diags []Diagnostic, baseNames bool) string {
	var out []byte
	for _, d := range diags {
		if baseNames {
			d.Pos.Filename = filepath.Base(d.Pos.Filename)
		}
		out = append(out, d.String()...)
		out = append(out, '\n')
	}
	return string(out)
}
