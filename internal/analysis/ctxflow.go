package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow guards context propagation through request paths. A query that
// reaches the coordinator carries the client's context; minting a fresh
// context.Background()/TODO() inside that path detaches downstream work
// from cancellation — the "leaked request context" incident class: a client
// disconnects but its tasks keep polling workers forever. Two checks:
//
//  1. context.Background()/context.TODO() is reported inside any function
//     (or closure nested in one) that has a context.Context or
//     *http.Request parameter: use the parameter / r.Context() instead.
//     Functions without one — main, tests, background daemons — are
//     legitimate context roots and are not flagged.
//  2. A function that accepts a named ctx parameter but never uses it,
//     while its body calls context-aware callees, silently drops the
//     caller's cancellation and is reported.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Background()/TODO() inside request paths and ctx parameters dropped on the floor",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Files {
		// Collect every function scope (declaration or literal) with its
		// source extent; closures count as part of their enclosing request
		// path, which position containment gives us for free.
		type funcScope struct {
			node ast.Node
			ft   *ast.FuncType
		}
		var scopes []funcScope
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.FuncDecl:
				if t.Body != nil {
					scopes = append(scopes, funcScope{t, t.Type})
					checkDroppedCtx(pass, t.Type, t.Body, t.Name.Name)
				}
			case *ast.FuncLit:
				scopes = append(scopes, funcScope{t, t.Type})
				checkDroppedCtx(pass, t.Type, t.Body, "function literal")
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if !isPkgFunc(fn, "context", "Background") && !isPkgFunc(fn, "context", "TODO") {
				return true
			}
			// Any enclosing function with a request context makes this a
			// request path.
			for _, sc := range scopes {
				if sc.node.Pos() <= call.Pos() && call.End() <= sc.node.End() {
					if src := requestCtxSource(pass.Info, sc.ft); src != "" {
						pass.Reportf(call.Pos(), "context.%s() inside a request path: use %s so cancellation propagates", fn.Name(), src)
						break
					}
				}
			}
			return true
		})
	}
}

// checkDroppedCtx implements check 2: ctx accepted, never used, while the
// body calls context-aware functions.
func checkDroppedCtx(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt, name string) {
	if ft.Params == nil || body == nil {
		return
	}
	var ctxObj types.Object
	var ctxName string
	for _, field := range ft.Params.List {
		if !isContext(pass.Info.TypeOf(field.Type)) {
			continue
		}
		for _, id := range field.Names {
			if id.Name != "_" {
				if obj := pass.Info.Defs[id]; obj != nil {
					ctxObj, ctxName = obj, id.Name
				}
			}
		}
	}
	if ctxObj == nil {
		return
	}
	used := false
	callsCtxAware := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.Ident:
			if pass.Info.Uses[t] == ctxObj {
				used = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, t); fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok {
					for i := 0; i < sig.Params().Len(); i++ {
						if isContext(sig.Params().At(i).Type()) {
							callsCtxAware = true
						}
					}
				}
			}
		}
		return true
	})
	if !used && callsCtxAware {
		pass.Reportf(ft.Pos(), "%s accepts %s but never uses it while calling context-aware functions: the caller's cancellation is dropped", name, ctxName)
	}
}
