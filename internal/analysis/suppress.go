package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix is the suppression directive. Usage:
//
//	//lint:ignore <analyzer> <reason>
//
// placed either on the same line as the offending code (trailing comment) or
// on the line immediately above it. <analyzer> is one analyzer name or "*".
// The reason is mandatory: a directive without one is itself reported, so
// every suppression in the tree carries a written justification.
const ignorePrefix = "lint:ignore"

type suppression struct {
	analyzer string // analyzer name or "*"
	file     string
	// line is the source line the directive covers: its own line and the
	// line immediately after the comment.
	line    int
	endLine int
}

type suppressionSet struct {
	byFile    map[string][]suppression
	malformed []Diagnostic
}

// collectSuppressions scans every comment in the package for lint:ignore
// directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	set := &suppressionSet{byFile: map[string][]suppression{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				pos := fset.Position(c.Pos())
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					set.malformed = append(set.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>, the reason is mandatory",
					})
					continue
				}
				if name != "*" && ByName(name) == nil {
					// A typoed analyzer name silences nothing; surface it
					// instead of letting the author believe they suppressed
					// a finding.
					set.malformed = append(set.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  fmt.Sprintf("suppression names unknown analyzer %q (see prestolint -list for valid names)", name),
					})
					continue
				}
				set.byFile[pos.Filename] = append(set.byFile[pos.Filename], suppression{
					analyzer: name,
					file:     pos.Filename,
					line:     pos.Line,
					endLine:  fset.Position(c.End()).Line,
				})
			}
		}
	}
	return set
}

// suppresses reports whether d is covered by a directive: same file, same
// analyzer (or "*"), and d sits on the directive's line or the line right
// after it.
func (s *suppressionSet) suppresses(d Diagnostic) bool {
	for _, sup := range s.byFile[d.Pos.Filename] {
		if sup.analyzer != "*" && sup.analyzer != d.Analyzer {
			continue
		}
		if d.Pos.Line == sup.line || d.Pos.Line == sup.endLine+1 {
			return true
		}
	}
	return false
}
