package geo

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePoint(t *testing.T) {
	// The paper's example point (§VI.A).
	g, err := ParseWKT("POINT (77.3548351 28.6973627)")
	if err != nil {
		t.Fatal(err)
	}
	if g.Point == nil || g.Point.Lng != 77.3548351 || g.Point.Lat != 28.6973627 {
		t.Fatalf("point = %+v", g.Point)
	}
}

func TestParsePolygon(t *testing.T) {
	// The paper's example polygon (§VI.A).
	wkt := `POLYGON ((36.814155579 -1.3174386070000002,
		36.814863682 -1.317545867,
		36.814863682 -1.318221605,
		36.813973188 -1.317910551,
		36.814155579 -1.3174386070000002))`
	g, err := ParseWKT(wkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Polygons) != 1 || len(g.Polygons[0].Outer) != 5 {
		t.Fatalf("polygons = %+v", g.Polygons)
	}
	if g.VertexCount() != 5 {
		t.Errorf("vertex count = %d", g.VertexCount())
	}
}

func TestParseMultiPolygonAndHoles(t *testing.T) {
	wkt := "MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1)), ((10 10, 12 10, 12 12, 10 12, 10 10)))"
	g, err := ParseWKT(wkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Polygons) != 2 || len(g.Polygons[0].Holes) != 1 {
		t.Fatalf("parsed = %+v", g.Polygons)
	}
	// Inside outer, outside hole.
	if !Contains(g, Point{0.5, 0.5}) {
		t.Error("0.5,0.5 should be inside")
	}
	// Inside the hole.
	if Contains(g, Point{1.5, 1.5}) {
		t.Error("1.5,1.5 is in the hole")
	}
	// In the second polygon.
	if !Contains(g, Point{11, 11}) {
		t.Error("11,11 should be inside")
	}
	if Contains(g, Point{6, 6}) {
		t.Error("6,6 is outside both")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"CIRCLE (1 2)",
		"POINT (1)",
		"POINT (1 2",
		"POLYGON ((0 0, 1 0, 0 0))",      // too few points
		"POLYGON ((0 0, 1 0, 1 1, 2 2))", // not closed
		"POINT (1 2) trailing",
		"POLYGON 0 0",
	}
	for _, s := range bad {
		if _, err := ParseWKT(s); err == nil {
			t.Errorf("ParseWKT(%q) unexpectedly succeeded", s)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	cases := []string{
		"POINT (1.5 -2.25)",
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))",
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))",
	}
	for _, s := range cases {
		g, err := ParseWKT(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		var out string
		if g.Point != nil {
			out = FormatPoint(*g.Point)
		} else if len(g.Polygons) == 1 && !strings.HasPrefix(s, "MULTI") {
			out = FormatPolygon(g.Polygons[0])
		} else {
			out = FormatMultiPolygon(g.Polygons)
		}
		if out != s {
			t.Errorf("round trip: %q -> %q", s, out)
		}
	}
}

// regularPolygon builds an n-gon centered at (cx, cy).
func regularPolygon(cx, cy, r float64, n int) Polygon {
	ring := make(Ring, 0, n+1)
	for i := 0; i < n; i++ {
		theta := 2 * 3.141592653589793 * float64(i) / float64(n)
		ring = append(ring, Point{cx + r*cos(theta), cy + r*sin(theta)})
	}
	ring = append(ring, ring[0])
	return Polygon{Outer: ring}
}

func cos(x float64) float64 { return sin(x + 3.141592653589793/2) }

func sin(x float64) float64 {
	// Use the stdlib via a tiny indirection to keep imports tidy.
	return mathSin(x)
}

func TestQuadTreeCandidates(t *testing.T) {
	tree := NewQuadTree(BBox{0, 0, 100, 100}, QuadTreeOptions{MaxEntries: 2})
	boxes := []BBox{
		{0, 0, 10, 10},
		{20, 20, 30, 30},
		{25, 25, 35, 35},
		{80, 80, 90, 90},
		{0, 0, 100, 100}, // straddles everything: stays at the root
	}
	for i, b := range boxes {
		tree.Insert(int32(i), b)
	}
	if tree.Len() != 5 {
		t.Errorf("len = %d", tree.Len())
	}
	cands := tree.Candidates(Point{5, 5}, nil)
	if !containsAll(cands, 0, 4) || containsAny(cands, 1, 2, 3) {
		t.Errorf("candidates(5,5) = %v", cands)
	}
	cands = tree.Candidates(Point{27, 27}, nil)
	if !containsAll(cands, 1, 2, 4) || containsAny(cands, 0, 3) {
		t.Errorf("candidates(27,27) = %v", cands)
	}
	cands = tree.Candidates(Point{50, 95}, nil)
	if !containsAll(cands, 4) || containsAny(cands, 0, 1, 2, 3) {
		t.Errorf("candidates(50,95) = %v", cands)
	}
}

func containsAll(got []int32, want ...int32) bool {
	set := map[int32]bool{}
	for _, g := range got {
		set[g] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}

func containsAny(got []int32, vals ...int32) bool {
	set := map[int32]bool{}
	for _, g := range got {
		set[g] = true
	}
	for _, v := range vals {
		if set[v] {
			return true
		}
	}
	return false
}

func TestGeoIndexLookup(t *testing.T) {
	// A grid of city geofences.
	var wkts []string
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			poly := regularPolygon(float64(i*10+5), float64(j*10+5), 4, 16)
			wkts = append(wkts, FormatPolygon(poly))
		}
	}
	idx, err := BuildIndex(wkts)
	if err != nil {
		t.Fatal(err)
	}
	// A point at a cell center hits exactly that cell.
	got := idx.Lookup(Point{15, 25})
	if len(got) != 1 || got[0] != 1*10+2 {
		t.Errorf("lookup = %v", got)
	}
	// A point between cells hits nothing.
	if got := idx.Lookup(Point{10, 10}); len(got) != 0 {
		t.Errorf("gap lookup = %v", got)
	}
	// Brute force agrees.
	for _, p := range []Point{{15, 25}, {10, 10}, {95, 95}, {0.1, 0.1}} {
		if !reflect.DeepEqual(idx.Lookup(p), idx.LookupBrute(p)) {
			t.Errorf("quadtree and brute force disagree at %v: %v vs %v", p, idx.Lookup(p), idx.LookupBrute(p))
		}
	}
}

// Property: QuadTree lookup == brute force for random polygons and points
// (the correctness invariant behind the 50X speedup claim — the index must
// not change results).
func TestQuickQuadTreeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40) + 1
		var wkts []string
		for i := 0; i < n; i++ {
			cx, cy := r.Float64()*100, r.Float64()*100
			radius := r.Float64()*8 + 0.5
			verts := r.Intn(20) + 3
			wkts = append(wkts, FormatPolygon(regularPolygon(cx, cy, radius, verts)))
		}
		idx, err := BuildIndex(wkts)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		for k := 0; k < 50; k++ {
			p := Point{r.Float64()*110 - 5, r.Float64()*110 - 5}
			if !reflect.DeepEqual(idx.Lookup(p), idx.LookupBrute(p)) {
				t.Logf("mismatch at %v", p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStContainsFunction(t *testing.T) {
	shape := "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"
	ok, err := StContains(shape, FormatPoint(Point{5, 5}))
	if err != nil || !ok {
		t.Errorf("st_contains inside = %v, %v", ok, err)
	}
	ok, err = StContains(shape, FormatPoint(Point{15, 5}))
	if err != nil || ok {
		t.Errorf("st_contains outside = %v, %v", ok, err)
	}
	if _, err := StContains("garbage", "POINT (1 1)"); err == nil {
		t.Error("bad shape accepted")
	}
	if _, err := StContains(shape, shape); err == nil {
		t.Error("non-point second arg accepted")
	}
}

func TestSerializeIndexRoundTrip(t *testing.T) {
	wkts := []string{
		"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
		"MULTIPOLYGON (((20 20, 30 20, 30 30, 20 30, 20 20)))",
		FormatPoint(Point{50, 50}),
	}
	idx, err := BuildIndex(wkts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SerializeIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DeserializeIndex(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{5, 5}, {25, 25}, {50, 50}, {99, 99}} {
		if !reflect.DeepEqual(idx.Lookup(p), back.Lookup(p)) {
			t.Errorf("deserialized index disagrees at %v", p)
		}
	}
	if _, err := DeserializeIndex("!!!not base64!!!"); err == nil {
		t.Error("bad serialized index accepted")
	}
}

func TestBBox(t *testing.T) {
	b := EmptyBBox()
	b = b.Union(BBox{0, 0, 1, 1})
	b = b.Union(BBox{5, 5, 6, 6})
	if b.MinLng != 0 || b.MaxLat != 6 {
		t.Errorf("union = %+v", b)
	}
	if !b.ContainsPoint(Point{3, 3}) || b.ContainsPoint(Point{7, 3}) {
		t.Error("ContainsPoint wrong")
	}
	if !b.Intersects(BBox{0.5, 0.5, 2, 2}) || b.Intersects(BBox{10, 10, 11, 11}) {
		t.Error("Intersects wrong")
	}
	g, _ := ParseWKT("POLYGON ((1 2, 5 2, 5 8, 1 8, 1 2))")
	bb := BoundsOf(g)
	if bb != (BBox{1, 2, 5, 8}) {
		t.Errorf("BoundsOf = %+v", bb)
	}
}

func TestBoundaryPoints(t *testing.T) {
	g, _ := ParseWKT("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")
	for _, p := range []Point{{0, 0}, {5, 0}, {10, 10}, {0, 5}} {
		if !Contains(g, p) {
			t.Errorf("boundary point %v should be contained", p)
		}
	}
}

func BenchmarkStContains(b *testing.B) {
	poly := regularPolygon(50, 50, 20, 500) // a realistic geofence: 500 vertices
	shape := FormatPolygon(poly)
	pt := FormatPoint(Point{50, 50})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, err := StContains(shape, pt); err != nil || !ok {
			b.Fatal("wrong answer")
		}
	}
}

func ExampleFormatPoint() {
	fmt.Println(FormatPoint(Point{Lng: 77.3548351, Lat: 28.6973627}))
	// Output: POINT (77.3548351 28.6973627)
}
