package geo

import (
	"math"
	"sort"
)

// BBox is an axis-aligned bounding box.
type BBox struct {
	MinLng, MinLat, MaxLng, MaxLat float64
}

// EmptyBBox is the identity for Union.
func EmptyBBox() BBox {
	return BBox{MinLng: math.Inf(1), MinLat: math.Inf(1), MaxLng: math.Inf(-1), MaxLat: math.Inf(-1)}
}

// Union expands b to include o.
func (b BBox) Union(o BBox) BBox {
	return BBox{
		MinLng: math.Min(b.MinLng, o.MinLng),
		MinLat: math.Min(b.MinLat, o.MinLat),
		MaxLng: math.Max(b.MaxLng, o.MaxLng),
		MaxLat: math.Max(b.MaxLat, o.MaxLat),
	}
}

// ContainsPoint reports whether p lies inside (or on) the box.
func (b BBox) ContainsPoint(p Point) bool {
	return p.Lng >= b.MinLng && p.Lng <= b.MaxLng && p.Lat >= b.MinLat && p.Lat <= b.MaxLat
}

// Intersects reports whether the boxes overlap.
func (b BBox) Intersects(o BBox) bool {
	return b.MinLng <= o.MaxLng && o.MinLng <= b.MaxLng && b.MinLat <= o.MaxLat && o.MinLat <= b.MaxLat
}

// BoundsOf computes the bounding box of a geometry.
func BoundsOf(g *Geometry) BBox {
	out := EmptyBBox()
	add := func(p Point) {
		out = out.Union(BBox{MinLng: p.Lng, MinLat: p.Lat, MaxLng: p.Lng, MaxLat: p.Lat})
	}
	if g.Point != nil {
		add(*g.Point)
	}
	for _, poly := range g.Polygons {
		for _, p := range poly.Outer {
			add(p)
		}
	}
	return out
}

// QuadTree indexes bounding boxes by recursively decomposing 2-D space into
// four quadrants (§VI.D, [Finkel & Bentley 1974]). Rectangles are stored at
// the deepest node that fully contains them; probes descend to the quadrant
// containing the point, collecting candidates whose boxes contain it.
type QuadTree struct {
	root       *quadNode
	maxDepth   int
	maxEntries int
	size       int
}

type quadEntry struct {
	id   int32
	bbox BBox
}

type quadNode struct {
	bounds   BBox
	entries  []quadEntry
	children *[4]*quadNode
	depth    int
}

// QuadTreeOptions tunes tree shape (ablated in benchmarks).
type QuadTreeOptions struct {
	// MaxDepth bounds recursion (default 12).
	MaxDepth int
	// MaxEntries is the split threshold per leaf (default 8).
	MaxEntries int
}

// NewQuadTree builds an index over the given space.
func NewQuadTree(bounds BBox, opts QuadTreeOptions) *QuadTree {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 12
	}
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 8
	}
	return &QuadTree{
		root:       &quadNode{bounds: bounds},
		maxDepth:   opts.MaxDepth,
		maxEntries: opts.MaxEntries,
	}
}

// Len returns the number of indexed entries.
func (t *QuadTree) Len() int { return t.size }

// Insert adds a rectangle with an identifier.
func (t *QuadTree) Insert(id int32, bbox BBox) {
	t.insert(t.root, quadEntry{id: id, bbox: bbox})
	t.size++
}

func (t *QuadTree) insert(n *quadNode, e quadEntry) {
	if n.children == nil {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries && n.depth < t.maxDepth {
			t.split(n)
		}
		return
	}
	if child := t.childFor(n, e.bbox); child != nil {
		t.insert(child, e)
		return
	}
	n.entries = append(n.entries, e) // straddles quadrants: keep here
}

func (t *QuadTree) split(n *quadNode) {
	midLng := (n.bounds.MinLng + n.bounds.MaxLng) / 2
	midLat := (n.bounds.MinLat + n.bounds.MaxLat) / 2
	n.children = &[4]*quadNode{
		{bounds: BBox{n.bounds.MinLng, n.bounds.MinLat, midLng, midLat}, depth: n.depth + 1},
		{bounds: BBox{midLng, n.bounds.MinLat, n.bounds.MaxLng, midLat}, depth: n.depth + 1},
		{bounds: BBox{n.bounds.MinLng, midLat, midLng, n.bounds.MaxLat}, depth: n.depth + 1},
		{bounds: BBox{midLng, midLat, n.bounds.MaxLng, n.bounds.MaxLat}, depth: n.depth + 1},
	}
	old := n.entries
	n.entries = nil
	for _, e := range old {
		if child := t.childFor(n, e.bbox); child != nil {
			t.insert(child, e)
		} else {
			n.entries = append(n.entries, e)
		}
	}
}

// childFor returns the single child quadrant fully containing bbox, or nil.
func (t *QuadTree) childFor(n *quadNode, b BBox) *quadNode {
	for _, c := range n.children {
		if b.MinLng >= c.bounds.MinLng && b.MaxLng <= c.bounds.MaxLng &&
			b.MinLat >= c.bounds.MinLat && b.MaxLat <= c.bounds.MaxLat {
			return c
		}
	}
	return nil
}

// Candidates returns ids of entries whose rectangle contains p, appended to
// out. "The majority of bounded rectangles that do not contain target point
// could be filtered out" (§VI.D). Points exactly on a quadrant boundary
// belong to multiple children, so every containing child is descended.
func (t *QuadTree) Candidates(p Point, out []int32) []int32 {
	var walk func(n *quadNode)
	walk = func(n *quadNode) {
		for _, e := range n.entries {
			if e.bbox.ContainsPoint(p) {
				out = append(out, e.id)
			}
		}
		if n.children == nil {
			return
		}
		for _, c := range n.children {
			if c.bounds.ContainsPoint(p) {
				walk(c)
			}
		}
	}
	walk(t.root)
	return out
}

// ---------------------------------------------------------------------------
// GeoIndex: the build_geo_index aggregation result — shapes plus a QuadTree
// over their bounding boxes (§VI.E).

// GeoIndex is a serialized/deserializable spatial index over geofences.
type GeoIndex struct {
	Shapes []*Geometry
	tree   *QuadTree
}

// BuildIndex constructs a GeoIndex from WKT geofences (invalid WKT returns
// an error: geofence tables are trusted inputs).
func BuildIndex(wkts []string) (*GeoIndex, error) {
	idx := &GeoIndex{}
	bounds := EmptyBBox()
	boxes := make([]BBox, 0, len(wkts))
	for _, w := range wkts {
		g, err := ParseWKT(w)
		if err != nil {
			return nil, err
		}
		idx.Shapes = append(idx.Shapes, g)
		b := BoundsOf(g)
		boxes = append(boxes, b)
		bounds = bounds.Union(b)
	}
	idx.tree = NewQuadTree(bounds, QuadTreeOptions{})
	for i, b := range boxes {
		idx.tree.Insert(int32(i), b)
	}
	return idx, nil
}

// Lookup returns the indexes of shapes containing p: QuadTree filters to
// candidate rectangles, st_contains verifies only those.
func (idx *GeoIndex) Lookup(p Point) []int {
	if len(idx.Shapes) == 0 {
		return nil
	}
	cands := idx.tree.Candidates(p, nil)
	var out []int
	for _, id := range cands {
		if Contains(idx.Shapes[id], p) {
			out = append(out, int(id))
		}
	}
	sort.Ints(out)
	return out
}

// LookupBrute is the baseline: test every shape (what the un-rewritten
// st_contains join does per row).
func (idx *GeoIndex) LookupBrute(p Point) []int {
	var out []int
	for i, g := range idx.Shapes {
		if Contains(g, p) {
			out = append(out, i)
		}
	}
	return out
}
