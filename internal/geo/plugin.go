package geo

import (
	"bytes"
	"encoding/base64"
	"encoding/gob"
	"fmt"
	"sync"

	"prestolite/internal/expr"
	"prestolite/internal/types"
)

// This file is the "Presto Geospatial plugin" (§VI.E): scalar functions
// st_point / st_contains, the build_geo_index aggregation that
// serializes geofences into a QuadTree, and geo_contains which probes a
// serialized index. Registration happens in init, the plugin-framework
// equivalent of loading the plugin at server start.

// geometryCache memoizes WKT parsing: geofence strings repeat across rows,
// and parsing should not dominate the st_contains cost model (which the
// paper attributes to vertex count).
var geometryCache sync.Map // wkt string -> *Geometry

// ParseCached parses WKT with memoization.
func ParseCached(wkt string) (*Geometry, error) {
	if g, ok := geometryCache.Load(wkt); ok {
		return g.(*Geometry), nil
	}
	g, err := ParseWKT(wkt)
	if err != nil {
		return nil, err
	}
	geometryCache.Store(wkt, g)
	return g, nil
}

// StContains implements st_contains(shape_wkt, point_wkt).
func StContains(shapeWKT, pointWKT string) (bool, error) {
	shape, err := ParseCached(shapeWKT)
	if err != nil {
		return false, fmt.Errorf("geo: st_contains shape: %w", err)
	}
	pt, err := ParseCached(pointWKT)
	if err != nil {
		return false, fmt.Errorf("geo: st_contains point: %w", err)
	}
	if pt.Point == nil {
		return false, fmt.Errorf("geo: st_contains second argument must be a point")
	}
	return Contains(shape, *pt.Point), nil
}

// SerializeIndex encodes a GeoIndex for transport as a varchar.
func SerializeIndex(idx *GeoIndex) (string, error) {
	var buf bytes.Buffer
	wkts := make([]string, len(idx.Shapes))
	for i, g := range idx.Shapes {
		if g.Point != nil {
			wkts[i] = FormatPoint(*g.Point)
		} else {
			wkts[i] = FormatMultiPolygon(g.Polygons)
		}
	}
	if err := gob.NewEncoder(&buf).Encode(wkts); err != nil {
		return "", fmt.Errorf("geo: serialize index: %w", err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), nil
}

// DeserializeIndex rebuilds a GeoIndex (including its QuadTree) from the
// serialized form.
func DeserializeIndex(s string) (*GeoIndex, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("geo: deserialize index: %w", err)
	}
	var wkts []string
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&wkts); err != nil {
		return nil, fmt.Errorf("geo: deserialize index: %w", err)
	}
	return BuildIndex(wkts)
}

var indexCache sync.Map // serialized string -> *GeoIndex

func cachedIndex(s string) (*GeoIndex, error) {
	if idx, ok := indexCache.Load(s); ok {
		return idx.(*GeoIndex), nil
	}
	idx, err := DeserializeIndex(s)
	if err != nil {
		return nil, err
	}
	indexCache.Store(s, idx)
	return idx, nil
}

// buildGeoIndexState aggregates WKT geofences into a serialized GeoIndex.
type buildGeoIndexState struct {
	wkts []string
}

func (s *buildGeoIndexState) Add(vals []any) {
	if vals[0] == nil {
		return
	}
	s.wkts = append(s.wkts, vals[0].(string))
}

func (s *buildGeoIndexState) AddIntermediate(v any) {
	if v == nil {
		return
	}
	for _, w := range v.([]any) {
		s.wkts = append(s.wkts, w.(string))
	}
}

func (s *buildGeoIndexState) Intermediate() any {
	out := make([]any, len(s.wkts))
	for i, w := range s.wkts {
		out[i] = w
	}
	return out
}

func (s *buildGeoIndexState) Final() any {
	idx, err := BuildIndex(s.wkts)
	if err != nil {
		// Aggregates cannot fail mid-stream in this engine; surface the
		// problem as NULL (queries over malformed geofences see it
		// immediately in results).
		return nil
	}
	serialized, err := SerializeIndex(idx)
	if err != nil {
		return nil
	}
	return serialized
}

func fixedType(t *types.Type) func([]*types.Type) *types.Type {
	return func([]*types.Type) *types.Type { return t }
}

func init() {
	expr.RegisterScalar(&expr.ScalarFunction{
		Name: "st_point", Params: []*types.Type{types.Double, types.Double},
		ReturnType: fixedType(types.Varchar),
		EvalRow: func(args []any) (any, error) {
			return FormatPoint(Point{Lng: args[0].(float64), Lat: args[1].(float64)}), nil
		},
	})
	expr.RegisterScalar(&expr.ScalarFunction{
		Name: "st_contains", Params: []*types.Type{types.Varchar, types.Varchar},
		ReturnType: fixedType(types.Boolean),
		EvalRow: func(args []any) (any, error) {
			return StContains(args[0].(string), args[1].(string))
		},
	})
	expr.RegisterScalar(&expr.ScalarFunction{
		Name: "geo_contains", Params: []*types.Type{types.Varchar, types.Varchar},
		ReturnType: fixedType(types.Boolean),
		EvalRow: func(args []any) (any, error) {
			idx, err := cachedIndex(args[0].(string))
			if err != nil {
				return nil, err
			}
			pt, err := ParseCached(args[1].(string))
			if err != nil || pt.Point == nil {
				return nil, fmt.Errorf("geo: geo_contains second argument must be a point")
			}
			return len(idx.Lookup(*pt.Point)) > 0, nil
		},
	})
	expr.RegisterAggregate(&expr.AggregateFunction{
		Name: "build_geo_index", Params: []*types.Type{types.Varchar},
		IntermediateType: fixedType(types.NewArray(types.Varchar)),
		FinalType:        fixedType(types.Varchar),
		NewState:         func([]*types.Type) expr.AggState { return &buildGeoIndexState{} },
	})
}
