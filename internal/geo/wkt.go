// Package geo implements the geospatial support of §VI: a Well-Known Text
// (WKT) geometry model (points, polygons, multi-polygons), point-in-polygon
// testing, a QuadTree spatial index built on the fly, and the Presto
// geospatial plugin functions (st_point, st_contains, build_geo_index,
// geo_contains).
package geo

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Point is a location as (longitude, latitude).
type Point struct {
	Lng float64
	Lat float64
}

// Ring is a closed linear ring: first and last points match.
type Ring []Point

// Polygon is an outer ring with optional holes.
type Polygon struct {
	Outer Ring
	Holes []Ring
}

// MultiPolygon is a collection of polygons; a geofence is "either a polygon
// or a multi-polygon" (§VI.B).
type MultiPolygon []Polygon

// Geometry is any parsed WKT value.
type Geometry struct {
	// Point is set for POINT geometries.
	Point *Point
	// Polygons is set for POLYGON and MULTIPOLYGON geometries.
	Polygons MultiPolygon
}

// VertexCount returns the total number of vertices (cost driver for
// st_contains, §VI.C).
func (g *Geometry) VertexCount() int {
	n := 0
	if g.Point != nil {
		n++
	}
	for _, p := range g.Polygons {
		n += len(p.Outer)
		for _, h := range p.Holes {
			n += len(h)
		}
	}
	return n
}

// ParseWKT parses POINT, POLYGON and MULTIPOLYGON text.
func ParseWKT(s string) (*Geometry, error) {
	p := &wktParser{input: s}
	p.skipSpace()
	keyword := strings.ToUpper(p.ident())
	switch keyword {
	case "POINT":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		pt, err := p.point()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if err := p.end(); err != nil {
			return nil, err
		}
		return &Geometry{Point: &pt}, nil
	case "POLYGON":
		poly, err := p.polygon()
		if err != nil {
			return nil, err
		}
		if err := p.end(); err != nil {
			return nil, err
		}
		return &Geometry{Polygons: MultiPolygon{poly}}, nil
	case "MULTIPOLYGON":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var mp MultiPolygon
		for {
			poly, err := p.polygon()
			if err != nil {
				return nil, err
			}
			mp = append(mp, poly)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if err := p.end(); err != nil {
			return nil, err
		}
		return &Geometry{Polygons: mp}, nil
	default:
		return nil, fmt.Errorf("geo: unsupported WKT geometry %q", keyword)
	}
}

// FormatPoint renders a point as WKT.
func FormatPoint(p Point) string {
	return "POINT (" + formatFloat(p.Lng) + " " + formatFloat(p.Lat) + ")"
}

// FormatPolygon renders a polygon as WKT.
func FormatPolygon(poly Polygon) string {
	var sb strings.Builder
	sb.WriteString("POLYGON (")
	writeRing(&sb, poly.Outer)
	for _, h := range poly.Holes {
		sb.WriteString(", ")
		writeRing(&sb, h)
	}
	sb.WriteString(")")
	return sb.String()
}

// FormatMultiPolygon renders a multi-polygon as WKT.
func FormatMultiPolygon(mp MultiPolygon) string {
	var sb strings.Builder
	sb.WriteString("MULTIPOLYGON (")
	for i, poly := range mp {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		writeRing(&sb, poly.Outer)
		for _, h := range poly.Holes {
			sb.WriteString(", ")
			writeRing(&sb, h)
		}
		sb.WriteString(")")
	}
	sb.WriteString(")")
	return sb.String()
}

func writeRing(sb *strings.Builder, r Ring) {
	sb.WriteString("(")
	for i, pt := range r {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(formatFloat(pt.Lng))
		sb.WriteString(" ")
		sb.WriteString(formatFloat(pt.Lat))
	}
	sb.WriteString(")")
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'f', -1, 64) }

type wktParser struct {
	input string
	pos   int
}

func (p *wktParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
}

func (p *wktParser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

func (p *wktParser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("geo: expected %q at %d in %q", string(c), p.pos, truncateWKT(p.input))
	}
	p.pos++
	return nil
}

func (p *wktParser) end() error {
	p.skipSpace()
	if p.pos != len(p.input) {
		return fmt.Errorf("geo: trailing input at %d in %q", p.pos, truncateWKT(p.input))
	}
	return nil
}

func truncateWKT(s string) string {
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}

func (p *wktParser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			p.pos++
			continue
		}
		break
	}
	return p.input[start:p.pos]
}

func (p *wktParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c >= '0' && c <= '9' || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if start == p.pos {
		return 0, fmt.Errorf("geo: expected number at %d in %q", p.pos, truncateWKT(p.input))
	}
	f, err := strconv.ParseFloat(p.input[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("geo: bad number %q: %w", p.input[start:p.pos], err)
	}
	return f, nil
}

func (p *wktParser) point() (Point, error) {
	lng, err := p.number()
	if err != nil {
		return Point{}, err
	}
	lat, err := p.number()
	if err != nil {
		return Point{}, err
	}
	return Point{Lng: lng, Lat: lat}, nil
}

func (p *wktParser) ring() (Ring, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var r Ring
	for {
		pt, err := p.point()
		if err != nil {
			return nil, err
		}
		r = append(r, pt)
		p.skipSpace()
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if len(r) < 4 {
		return nil, fmt.Errorf("geo: ring needs at least 4 points, got %d", len(r))
	}
	if r[0] != r[len(r)-1] {
		return nil, fmt.Errorf("geo: ring is not closed (start %v != end %v)", r[0], r[len(r)-1])
	}
	return r, nil
}

func (p *wktParser) polygon() (Polygon, error) {
	if err := p.expect('('); err != nil {
		return Polygon{}, err
	}
	outer, err := p.ring()
	if err != nil {
		return Polygon{}, err
	}
	poly := Polygon{Outer: outer}
	for {
		p.skipSpace()
		if p.peek() != ',' {
			break
		}
		p.pos++
		hole, err := p.ring()
		if err != nil {
			return Polygon{}, err
		}
		poly.Holes = append(poly.Holes, hole)
	}
	if err := p.expect(')'); err != nil {
		return Polygon{}, err
	}
	return poly, nil
}

// ---------------------------------------------------------------------------
// Point-in-polygon (the st_contains kernel; cost proportional to the number
// of geofence vertices, §VI.C).

// ringContains uses ray casting; boundary points count as inside.
func ringContains(r Ring, p Point) bool {
	inside := false
	n := len(r) - 1 // last point repeats the first
	j := n - 1
	for i := 0; i < n; i++ {
		pi, pj := r[i], r[j]
		// Boundary check on the segment (pi, pj).
		if onSegment(pi, pj, p) {
			return true
		}
		if (pi.Lat > p.Lat) != (pj.Lat > p.Lat) {
			x := (pj.Lng-pi.Lng)*(p.Lat-pi.Lat)/(pj.Lat-pi.Lat) + pi.Lng
			if p.Lng < x {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

func onSegment(a, b, p Point) bool {
	cross := (b.Lng-a.Lng)*(p.Lat-a.Lat) - (b.Lat-a.Lat)*(p.Lng-a.Lng)
	if math.Abs(cross) > 1e-12 {
		return false
	}
	return p.Lng >= math.Min(a.Lng, b.Lng)-1e-12 && p.Lng <= math.Max(a.Lng, b.Lng)+1e-12 &&
		p.Lat >= math.Min(a.Lat, b.Lat)-1e-12 && p.Lat <= math.Max(a.Lat, b.Lat)+1e-12
}

// PolygonContains reports whether p lies inside poly (outer ring minus holes).
func PolygonContains(poly Polygon, p Point) bool {
	if !ringContains(poly.Outer, p) {
		return false
	}
	for _, h := range poly.Holes {
		if ringContains(h, p) {
			return false
		}
	}
	return true
}

// Contains reports whether the geometry contains the point.
func Contains(g *Geometry, p Point) bool {
	if g.Point != nil {
		return g.Point.Lng == p.Lng && g.Point.Lat == p.Lat
	}
	for _, poly := range g.Polygons {
		if PolygonContains(poly, p) {
			return true
		}
	}
	return false
}
