package geo

import "math"

func mathSin(x float64) float64 { return math.Sin(x) }
