package prestolite_test

// Dashboard QPS benchmark (BENCH_PR10.json via `make bench-qps-json`): a
// fixed dashboard of aggregate queries refreshes in a closed loop against an
// embedded multi-worker cluster, with a few concurrent clients — the §VII
// "same queries every few seconds" traffic shape. cache=off runs every
// refresh cold (chunk, footer, file-list, fragment and result caches all
// disabled, round-robin scheduling); cache=on is the PR10 hierarchy:
// affinity split scheduling keeps each split's repeats on one worker whose
// chunk cache stays hot, workers serve repeated fragments from their
// fragment-result cache, and the coordinator answers byte-identical repeats
// from the tier-2 result cache without scheduling a task at all. Each op is
// one full dashboard refresh; the qps metric is queries per wall second, and
// the cache=on run also reports the result/chunk hit rates the acceptance
// criterion reads.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/cluster"
	"prestolite/internal/connector"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/planner"
	"prestolite/internal/tpch"
)

const (
	dashFiles       = 12
	dashRowsPerFile = 2000
	dashDataSeed    = int64(7)
	dashClients     = 4
	dashWorkers     = 3
)

// dashboardQueries is one dashboard page: a handful of aggregate tiles that
// all refresh together.
var dashboardQueries = []string{
	`SELECT l_returnflag, l_linestatus, count(*) AS n, sum(l_quantity) AS q
		FROM lineitem GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
	`SELECT count(*) AS n FROM lineitem WHERE l_quantity < 25.0`,
	`SELECT l_shipmode, count(*) AS n FROM lineitem GROUP BY l_shipmode ORDER BY l_shipmode`,
	`SELECT l_returnflag, sum(l_extendedprice) AS revenue FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`,
	`SELECT l_linestatus, avg(l_discount) AS d, max(l_tax) AS t FROM lineitem GROUP BY l_linestatus ORDER BY l_linestatus`,
	`SELECT count(*) AS n FROM lineitem WHERE l_shipmode = 'AIR'`,
}

// dashCluster builds a lineitem warehouse and a coordinator + workers on top,
// with every cache tier either on (the PR10 hierarchy) or off (the cold
// baseline).
func dashCluster(b *testing.B, cached bool) (*cluster.Coordinator, *hive.Connector, func()) {
	b.Helper()
	fs := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := make([]metastore.Column, len(tpch.LineItemColumns))
	for i, c := range tpch.LineItemColumns {
		cols[i] = metastore.Column{Name: c.Name, Type: c.Type}
	}
	var pages []*block.Page
	for f := 0; f < dashFiles; f++ {
		pages = append(pages, tpch.GeneratePage(dashDataSeed+int64(f), dashRowsPerFile))
	}
	if err := loader.CreateTable("tpch", "lineitem", cols, pages); err != nil {
		b.Fatal(err)
	}
	opts := hive.Options{}
	if !cached {
		opts.DisableChunkCache = true
		opts.DisableFileListCache = true
		opts.DisableFooterCache = true
	}
	hc := hive.New("hive", ms, fs, opts)
	reg := connector.NewRegistry()
	reg.Register("hive", hc)

	coord := cluster.NewCoordinator(reg)
	if cached {
		coord.EnableResultCache(256, 64<<20, time.Hour)
	}
	var workers []*cluster.Worker
	for i := 0; i < dashWorkers; i++ {
		w := cluster.NewWorker(reg)
		w.GracePeriod = 20 * time.Millisecond
		w.EnableFragmentResultCache = cached
		if err := w.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		coord.AddWorker(w.Addr())
		workers = append(workers, w)
	}
	cleanup := func() {
		for _, w := range workers {
			w.Close()
		}
	}
	return coord, hc, cleanup
}

// dashSession returns one client's session; the cold baseline also reverts
// to the legacy round-robin split scheduling.
func dashSession(cached bool) *planner.Session {
	s := &planner.Session{Catalog: "hive", Schema: "tpch", User: "dash", Properties: map[string]string{}}
	if !cached {
		s.Properties["affinity_scheduling"] = "false"
	}
	return s
}

// runDashboard drives b.N dashboard refreshes through dashClients concurrent
// closed-loop clients and reports queries per wall second.
func runDashboard(b *testing.B, coord *cluster.Coordinator, cached bool) {
	total := int64(b.N * len(dashboardQueries))
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < dashClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := dashSession(cached)
			for {
				i := next.Add(1) - 1
				if i >= total {
					return
				}
				if _, err := coord.Query(s, dashboardQueries[i%int64(len(dashboardQueries))]); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.ReportMetric(float64(total)/time.Since(start).Seconds(), "qps")
}

func BenchmarkDashboardQPS(b *testing.B) {
	b.Run("cache=off", func(b *testing.B) {
		coord, _, cleanup := dashCluster(b, false)
		defer cleanup()
		b.ResetTimer()
		runDashboard(b, coord, false)
	})
	b.Run("cache=on", func(b *testing.B) {
		coord, hc, cleanup := dashCluster(b, true)
		defer cleanup()
		// One warm refresh first: the dashboard scenario is steady-state
		// repeats, not a cold start.
		s := dashSession(true)
		for _, q := range dashboardQueries {
			if _, err := coord.Query(s, q); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		runDashboard(b, coord, true)
		b.StopTimer()

		// Hit rates for the acceptance criterion: the tier-2 result cache
		// should be serving nearly every steady-state refresh, with the
		// tier-1 chunk cache absorbing whatever still reads Parquet.
		snap := coord.Obs().Snapshot()
		hits, misses := snap.Gauges["coordinator.cache.result.hits"], snap.Gauges["coordinator.cache.result.misses"]
		if hits+misses > 0 {
			b.ReportMetric(100*hits/(hits+misses), "result-hit-%")
		}
		cm := hc.ChunkCacheMetrics()
		ch, cmiss := float64(cm.Hits.Load()), float64(cm.Misses.Load())
		if ch+cmiss > 0 {
			b.ReportMetric(100*ch/(ch+cmiss), "chunk-hit-%")
		}
	})
}
