// Package prestolite is a from-scratch Go reproduction of "From Batch
// Processing to Real Time Analytics: Running Presto® at Scale" (ICDE 2022):
// a vectorized distributed SQL engine with a connector SPI (predicate /
// projection / limit / aggregation pushdown), a nested columnar file format
// with old and new readers and writers, QuadTree geospatial queries, file
// list and footer caches, a cluster-federation gateway, and an S3 file
// system with lazy seek, exponential backoff, S3 Select and multipart
// upload.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The public surface lives under internal/ packages and
// the cmd/ binaries; bench_test.go regenerates every figure as Go
// benchmarks, and cmd/prestobench prints them as tables.
package prestolite
