# Convenience targets; everything is plain `go` underneath.

.PHONY: build test test-race lint check bench experiments examples fmt vet

build:
	go build ./...

test:
	go test ./...

# Race-check the whole module: shared query/task state is mutated from
# handler goroutines in cluster/gateway, and the obs metric primitives are
# written against concurrent snapshot readers.
test-race:
	go test -race ./...

# Static analysis: go vet plus the project's own invariant suite
# (internal/analysis, run by cmd/prestolint). prestolint enforces lockheld,
# ctxflow, errdrop, atomicmix and hotalloc; suppress individual findings
# only with `//lint:ignore <analyzer> <reason>`.
lint:
	go vet ./...
	go run ./cmd/prestolint ./...

# The pre-commit gate: everything a PR must pass.
check: build vet lint test test-race

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/prestobench -experiment all

examples:
	go run ./examples/quickstart
	go run ./examples/federation
	go run ./examples/geospatial
	go run ./examples/nested
	go run ./examples/cloud
	go run ./examples/federation_gateway

fmt:
	gofmt -w .

vet:
	go vet ./...
