# Convenience targets; everything is plain `go` underneath.

.PHONY: build test test-race bench experiments examples fmt vet

build:
	go build ./...

test:
	go test ./...

# Race-check the concurrency-heavy packages: the obs metric primitives are
# written against concurrent snapshot readers, and the cluster coordinator
# mutates query/task state from handler goroutines.
test-race:
	go test -race ./internal/obs/... ./internal/cluster/...

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/prestobench -experiment all

examples:
	go run ./examples/quickstart
	go run ./examples/federation
	go run ./examples/geospatial
	go run ./examples/nested
	go run ./examples/cloud
	go run ./examples/federation_gateway

fmt:
	gofmt -w .

vet:
	go vet ./...
