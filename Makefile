# Convenience targets; everything is plain `go` underneath.

.PHONY: build test bench experiments examples fmt vet

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/prestobench -experiment all

examples:
	go run ./examples/quickstart
	go run ./examples/federation
	go run ./examples/geospatial
	go run ./examples/nested
	go run ./examples/cloud
	go run ./examples/federation_gateway

fmt:
	gofmt -w .

vet:
	go vet ./...
