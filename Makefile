# Convenience targets; everything is plain `go` underneath.

.PHONY: build test test-race lint check chaos chaos-ingest chaos-lifecycle fuzz-smoke bench bench-json bench-qps-json bench-ingest-json experiments examples fmt vet

build:
	go build ./...

# -shuffle=on randomizes test order so accidental inter-test state
# dependencies fail loudly instead of silently passing in source order.
test:
	go test -shuffle=on ./...

# Race-check the whole module: shared query/task state is mutated from
# handler goroutines in cluster/gateway, and the obs metric primitives are
# written against concurrent snapshot readers.
test-race:
	go test -race ./...

# The seeded chaos suite: TPC-H queries through an embedded cluster while the
# fault injector kills workers, drops RPCs and stalls reads. Always race-
# enabled. Each test logs its seed; replay one failure deterministically with
# `CHAOS_SEED=<seed> make chaos`.
chaos:
	go test -race -count=1 -v -run TestChaos ./internal/cluster

# The real-time slice of the chaos suite: a continuous producer streams events
# through the partitioned log into druid segments while hybrid queries run on
# a faulted cluster. Asserts the 5s event-to-queryable SLA and row-exact
# results after quiesce. Replay with `CHAOS_SEED=<seed> make chaos-ingest`.
chaos-ingest:
	go test -race -count=1 -v -run TestChaosIngest ./internal/cluster

# The process-death slice of the chaos suite: rolling restarts of the ingest
# process (SIGKILL + WAL recovery) and of both coordinators (graceful drain +
# replacement) while an acked producer streams and hybrid queries run through
# the gateway's resubmitting /v1/execute. Asserts zero acked-event loss,
# monotonic duplicate-free counts, 5s freshness recovery after every restart,
# and row-exact results post quiesce. Also picks up the WAL torn-tail
# crash-recovery property tests in internal/ingest. Replay one seed with
# `CHAOS_SEED=<seed> make chaos-lifecycle`.
chaos-lifecycle:
	go test -race -count=1 -v -run TestChaosLifecycle ./internal/cluster ./internal/ingest

# Brief randomized runs of the vector-kernel fuzz targets (open-addressing
# hash tables, selection kernels) on top of their checked-in corpus under
# internal/execution/vector/testdata/fuzz. CI runs this as a smoke; crank
# -fuzztime locally to dig deeper. New crashers land in testdata/fuzz —
# check them in.
FUZZTIME ?= 30s
fuzz-smoke:
	go test -fuzz '^FuzzGroupTable$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/execution/vector/
	go test -fuzz '^FuzzJoinTable$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/execution/vector/
	go test -fuzz '^FuzzSelectTrue$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/execution/vector/
	go test -fuzz '^FuzzSelectConst$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/execution/vector/

# Static analysis: go vet plus the project's own invariant suite
# (internal/analysis, run by cmd/prestolint). prestolint enforces ten
# analyzers — lockheld, ctxflow, errdrop, atomicmix, hotalloc, goleak,
# chanmisuse, clockdet, closeleak, obshygiene — and exits non-zero on any
# unsuppressed finding. Suppress individual findings only with
# `//lint:ignore <analyzer> <reason>`; a directive missing its reason (or
# naming an unknown analyzer) is itself a finding. CI runs this as its own
# cached job; locally it is part of `make check`.
lint:
	go vet ./...
	go run ./cmd/prestolint ./...

# The pre-commit gate: everything a PR must pass (lint includes go vet).
# test covers the chaos suite too (TestChaos* are ordinary go tests);
# `make chaos` re-runs just that slice verbosely with seeds logged.
check: build lint test test-race

bench:
	go test -bench=. -benchmem ./...

# Machine-readable results for the intra-task parallelism benchmark: runs
# scan/aggregation/join workloads (vectorized and _rowwise baselines) at
# 1/2/4/8 drivers and writes ns/op, per-workload speedups (relative to
# drivers=1) and vector_speedups (vectorized vs rowwise-at-1-driver) to
# BENCH_PR8.json. The -compare gate fails on any benchmark >20% slower than
# the previous checked-in trajectory point (override with BENCH_BASE=).
BENCH_BASE ?= BENCH_PR5.json
bench-json:
	go test -bench BenchmarkIntraTaskParallelism -benchmem -benchtime=50x -run '^$$' . | go run ./cmd/benchjson -o BENCH_PR8.json -compare $(BENCH_BASE)
	@cat BENCH_PR8.json

# Machine-readable results for the dashboard-QPS benchmark: a fixed dashboard
# of aggregate queries refreshes in a closed loop against an embedded cluster
# with the §VII cache hierarchy off and on, and writes qps, result/chunk-cache
# hit rates and the cache_speedups ratio (cache=on vs cache=off — the >= 10x
# acceptance number) to BENCH_PR10.json. The -compare gate fails on any shared
# benchmark >20% slower than the checked-in trajectory point.
bench-qps-json:
	go test -bench BenchmarkDashboardQPS -benchmem -benchtime=20x -run '^$$' . | go run ./cmd/benchjson -o BENCH_PR10.json -compare $(BENCH_BASE)
	@cat BENCH_PR10.json

# Machine-readable results for the real-time ingestion benchmark: streams a
# fixed event load under 0/4/16 concurrent hybrid queries and writes freshness
# p50/p95/p99 (ms) plus sustained rows/s to BENCH_PR6.json.
bench-ingest-json:
	go test -bench BenchmarkIngestFreshness -benchtime=1x -run '^$$' . | go run ./cmd/benchjson -o BENCH_PR6.json
	@cat BENCH_PR6.json

experiments:
	go run ./cmd/prestobench -experiment all

examples:
	go run ./examples/quickstart
	go run ./examples/federation
	go run ./examples/geospatial
	go run ./examples/nested
	go run ./examples/cloud
	go run ./examples/federation_gateway
	go run ./examples/realtime

fmt:
	gofmt -w .

vet:
	go vet ./...
